"""Configuration objects shared across the library.

The defaults mirror the GenAgent / SmallVille setup the paper evaluates:
10-second simulation steps, a perception radius of 4 grid units and a
movement/information-propagation speed of 1 grid unit per step.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Literal

from .errors import ConfigError

#: Simulated seconds represented by one simulation step (GenAgent uses 10s).
SECONDS_PER_STEP = 10
#: Steps in one simulated day.
STEPS_PER_DAY = 24 * 3600 // SECONDS_PER_STEP  # 8640
#: Steps in one simulated hour.
STEPS_PER_HOUR = 3600 // SECONDS_PER_STEP  # 360


@dataclass(frozen=True)
class DependencyConfig:
    """Parameters of the §3.2 dependency rules.

    Attributes
    ----------
    radius_p:
        Perception radius — how far an agent can read the world.
    max_vel:
        Maximum movement / information-propagation speed per step — how far
        an agent's writes can reach in one step.
    metric:
        Distance metric used by the rules. ``euclidean`` matches the paper;
        ``chebyshev``/``manhattan`` suit grid worlds; ``graph`` enables the
        §6 non-Euclidean (social network) extension via a custom Space.
    """

    radius_p: float = 4.0
    max_vel: float = 1.0
    metric: Literal["euclidean", "chebyshev", "manhattan", "graph"] = "euclidean"

    def __post_init__(self) -> None:
        if self.radius_p < 0:
            raise ConfigError(f"radius_p must be >= 0, got {self.radius_p}")
        if self.max_vel <= 0:
            raise ConfigError(f"max_vel must be > 0, got {self.max_vel}")

    @property
    def couple_threshold(self) -> float:
        """Distance at or below which two same-step agents are coupled."""
        return self.radius_p + self.max_vel

    def block_threshold(self, step_gap: int) -> float:
        """Distance at or below which a leader is blocked by a laggard.

        ``step_gap`` is ``step_leader - step_laggard`` and must be >= 0.
        """
        if step_gap < 0:
            raise ConfigError(f"step_gap must be >= 0, got {step_gap}")
        return (step_gap + 1) * self.max_vel + self.radius_p


@dataclass(frozen=True)
class OverheadConfig:
    """Non-LLM costs charged in virtual time.

    The paper measures ~95% of execution in LLM inference for the original
    implementation; these constants model the remaining engine work.
    """

    #: Seconds of world/agent bookkeeping per agent-step (perceive, move...).
    agent_step: float = 0.015
    #: Seconds for a cluster commit (conflict resolution + DB transaction).
    cluster_commit: float = 0.002
    #: Seconds of controller work per scheduling decision (clustering etc.).
    controller_dispatch: float = 0.0005
    #: Extra per-step serialization cost for the single-thread baseline
    #: (the original GenAgent implementation does everything inline).
    single_thread_step: float = 0.05


@dataclass(frozen=True)
class FaultPolicy:
    """Fault-tolerance knobs for the live execution layers.

    Consumed by :class:`repro.faults.ResilientClient` (per-call retry,
    backoff, circuit breaker), by the live engine's redispatch loop and
    no-progress watchdog, and by the chaos bench. All randomness (backoff
    jitter) is seeded so failure handling is reproducible.
    """

    #: Per-LLM-call wall-clock budget in seconds; a call that comes back
    #: slower counts as a (retryable) timeout failure.
    call_timeout: float = 30.0
    #: Retries per LLM call after the first attempt (transient failures
    #: and timeouts only; hard failures are never retried in-place).
    max_call_retries: int = 3
    #: Seeded exponential backoff between call retries:
    #: ``min(backoff_max, backoff_base * backoff_factor**attempt)``
    #: scaled by ``1 + U(0, backoff_jitter)``.
    backoff_base: float = 0.005
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5
    backoff_max: float = 0.25
    #: Consecutive primary-client failures that open the circuit breaker.
    breaker_threshold: int = 5
    #: Seconds the breaker stays open before one half-open trial call.
    breaker_cooldown: float = 1.0
    #: Redispatches per failed cluster before it degrades to the
    #: fallback plan (one final dispatch on the fallback client).
    max_redispatches: int = 3
    #: Seconds without any worker ack (while work is in flight) before
    #: the watchdog raises a diagnostic ``SchedulingError``.
    watchdog_timeout: float = 60.0
    #: Seconds to wait for each worker thread at shutdown before
    #: abandoning it (daemon threads; counted in the fault stats).
    worker_join_grace: float = 5.0
    #: Seed for the backoff-jitter stream.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.call_timeout <= 0:
            raise ConfigError(
                f"call_timeout must be > 0, got {self.call_timeout}")
        if self.max_call_retries < 0:
            raise ConfigError(
                f"max_call_retries must be >= 0, got "
                f"{self.max_call_retries}")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigError("backoff_base/backoff_max must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.backoff_jitter < 0:
            raise ConfigError(
                f"backoff_jitter must be >= 0, got {self.backoff_jitter}")
        if self.breaker_threshold < 1:
            raise ConfigError(
                f"breaker_threshold must be >= 1, got "
                f"{self.breaker_threshold}")
        if self.breaker_cooldown < 0:
            raise ConfigError(
                f"breaker_cooldown must be >= 0, got "
                f"{self.breaker_cooldown}")
        if self.max_redispatches < 0:
            raise ConfigError(
                f"max_redispatches must be >= 0, got "
                f"{self.max_redispatches}")
        if self.watchdog_timeout <= 0:
            raise ConfigError(
                f"watchdog_timeout must be > 0, got "
                f"{self.watchdog_timeout}")
        if self.worker_join_grace < 0:
            raise ConfigError(
                f"worker_join_grace must be >= 0, got "
                f"{self.worker_join_grace}")


@dataclass(frozen=True)
class SchedulerConfig:
    """Scheduler selection and options for a replay run."""

    policy: Literal[
        "single-thread", "parallel-sync", "metropolis", "metropolis-spec",
        "oracle", "no-dependency",
    ] = "metropolis"
    #: Registered scenario (see :mod:`repro.scenarios`) this run's
    #: workload comes from; reported as ``SimulationResult.scenario``.
    #: Empty means "take it from the trace metadata" — set it explicitly
    #: when the workload label should override the trace's (e.g. a
    #: synthetic trace standing in for a scenario).
    scenario: str = ""
    #: Step-priority scheduling (§3.5). Applies to metropolis and oracle.
    priority: bool = True
    #: Number of logical worker slots. ``0`` means unbounded (the DES does
    #: not need CPU limits; live mode uses real threads).
    num_workers: int = 0
    #: Validate the §3.2 condition at every state change (slow; for tests).
    validate_causality: bool = False
    #: §6 hybrid/interactive deployment: agents whose tasks (and clusters)
    #: are latency-critical — e.g. the ones a player interacts with. Their
    #: LLM requests and dispatches preempt step-priority ordering, and
    #: their per-step latency is reported in the driver stats.
    interactive_agents: tuple[int, ...] = ()
    #: Set False to *measure* interactive agents' step latency without
    #: giving them preemptive priority (the ablation baseline).
    interactive_boost: bool = True
    #: How many steps ahead the interactive agents' dependency cone is
    #: boosted: any cluster within ``block_threshold(horizon)`` of an
    #: interactive agent could block it within ``horizon`` steps, so it is
    #: served latency-first too. The far background stays throughput-first.
    interactive_horizon: int = 30
    #: Maximum blocked clusters executing speculatively at once (§6
    #: speculative execution; used by the ``metropolis-spec`` policy).
    #: ``0`` disables speculation (exact plain-metropolis behavior).
    speculation_budget: int = 8
    #: Rank speculation candidates by critical-path contribution
    #: (wake-step distance x cluster size — Table 1's interaction
    #: priority inverted into a scheduling signal) instead of launching
    #: in agent-id order. Set False for the ablation baseline.
    speculation_priority: bool = True
    #: Adaptive speculation depth: the live concurrent-speculation limit
    #: starts at ``speculation_budget`` and halves whenever the recent
    #: misspeculation+squash rate climbs past 1/2, growing back one slot
    #: per clean window. Set False to pin the limit at the budget.
    speculation_adaptive: bool = True
    #: Feed the speculation ledger back into candidate *priority*:
    #: agents whose past speculations misspeculated accumulate a decayed
    #: penalty that demotes their clusters in the wake-distance x size
    #: ranking, so the budget drains toward provably-safe candidates.
    #: Set False for the ablation baseline (ranking ignores outcomes).
    speculation_feedback: bool = True
    #: Region-sharded controller state (million-agent scaling): split the
    #: map into at most this many provably-independent regions, each with
    #: its own dependency-graph shard. ``0``/``1`` keeps the single
    #: graph; sharding also falls back to it when the workload cannot be
    #: split. Results are bit-identical either way (see
    #: :mod:`repro.core.sharding`).
    shards: int = 0
    #: Multiprocess controller (replay mode): run the region shards in
    #: this many persistent worker processes over a shared-memory copy
    #: of the trace position store. ``0``/``1`` keeps the in-process
    #: controller; with ``>= 2`` the driver plans regions (honoring
    #: ``shards`` when set, else one shard per worker), assigns whole
    #: shards to workers, and merges the workers' ledgers into one
    #: :class:`~repro.core.baselines.DriverStats`. Falls back cleanly
    #: to in-process sharding when the workload cannot be split or the
    #: platform lacks POSIX shared memory. Results are state-identical
    #: either way (see :mod:`repro.core.parallel`).
    parallel_workers: int = 0
    #: Fault-tolerance policy for the live engine. ``None`` runs under
    #: the default :class:`FaultPolicy` (hardening is always on; set an
    #: explicit policy to tune budgets or tighten the watchdog).
    faults: "FaultPolicy | None" = None
    dependency: DependencyConfig = field(default_factory=DependencyConfig)
    overhead: OverheadConfig = field(default_factory=OverheadConfig)

    def with_policy(self, policy: str, **kw) -> "SchedulerConfig":
        return replace(self, policy=policy, **kw)  # type: ignore[arg-type]


@dataclass(frozen=True)
class ServingConfig:
    """Simulated serving engine deployment shape."""

    model: str = "llama3-8b"
    gpu: str = "l4"
    #: Number of data-parallel replicas.
    dp: int = 1
    #: Tensor-parallel degree within each replica.
    tp: int = 1
    #: ``iteration`` simulates each decode iteration; ``fluid`` advances an
    #: equivalent token clock between batch-composition changes (fast).
    fidelity: Literal["fluid", "iteration"] = "fluid"
    #: Order the waiting queue by request priority (simulation step).
    priority_scheduling: bool = True
    #: Fraction of post-weights GPU memory usable for KV cache.
    kv_memory_fraction: float = 0.9
    #: Cap on requests decoded concurrently per replica (engine limit).
    max_running_requests: int = 256
    #: Fraction of prompt tokens served from the common-prefix cache
    #: (SGLang's RadixAttention). The paper benchmarks with the cache
    #: *off* for stability and notes ~20% throughput gain when on; set
    #: e.g. 0.5 to model it (GenAgent prompts share persona/world
    #: preambles). Only prefill compute is discounted; KV reservations
    #: stay conservative.
    prefix_cache_hit_rate: float = 0.0
    #: Idle-KV retention policy between an agent's calls. ``none``
    #: frees KV at finish (seed behaviour); ``lru`` keeps per-agent
    #: segments and evicts the longest-idle; ``distance`` evicts the
    #: agent whose next LLM call is furthest in virtual time, using the
    #: scheduler's invocation-distance signal (ScaleSim-style, driven
    #: by the dependency graph's wake steps).
    kv_policy: Literal["none", "lru", "distance"] = "none"

    def __post_init__(self) -> None:
        if self.kv_policy not in ("none", "lru", "distance"):
            raise ConfigError(
                f"kv_policy must be none|lru|distance, got "
                f"{self.kv_policy!r}")
        if self.dp < 1:
            raise ConfigError(f"dp must be >= 1, got {self.dp}")
        if self.tp < 1:
            raise ConfigError(f"tp must be >= 1, got {self.tp}")
        if not 0.0 < self.kv_memory_fraction <= 1.0:
            raise ConfigError(
                f"kv_memory_fraction must be in (0, 1], got "
                f"{self.kv_memory_fraction}")
        if self.max_running_requests < 1:
            raise ConfigError("max_running_requests must be >= 1")
        if not 0.0 <= self.prefix_cache_hit_rate < 1.0:
            raise ConfigError(
                f"prefix_cache_hit_rate must be in [0, 1), got "
                f"{self.prefix_cache_hit_rate}")

    @property
    def num_gpus(self) -> int:
        return self.dp * self.tp
