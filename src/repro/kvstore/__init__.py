"""In-process transactional key-value store (Redis substitute).

The paper (§3.6) keeps all inter-process simulation state — including the
spatiotemporal dependency graph — in Redis and wraps graph examinations and
updates in transactions. This package provides the same primitives
in-process: typed keys (strings, hashes, sets, sorted sets), per-key
versioning, and optimistic WATCH/MULTI/EXEC transactions, safe for use
from many threads (the live engine's workers).
"""

from .store import KVStore, Transaction

__all__ = ["KVStore", "Transaction"]
