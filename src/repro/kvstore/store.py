"""Thread-safe KV store with optimistic transactions.

Semantics follow Redis closely enough for the engine's needs:

* every key holds one typed value (string/any, hash, set, zset);
* every write bumps the key's version counter;
* a :class:`Transaction` records versions of the keys it reads (WATCH),
  buffers writes (MULTI), and at EXEC atomically verifies that no watched
  key changed before applying the buffer — otherwise it retries the whole
  body, like a standard ``redis-py`` ``transaction(fn, *keys)`` helper.

Like Redis (which is single-threaded), atomicity is provided by a single
lock around command execution; the optimistic-retry machinery exists so
that read-compute-write cycles spanning multiple commands stay consistent
without holding the lock during compute.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Callable, Optional

from ..errors import TransactionError, WatchError

_MISSING = object()

#: Backoff shape for contended optimistic retries: tiny and bounded so
#: the happy path is unaffected, but colliding writers desynchronize
#: instead of livelocking in immediate-retry lockstep.
_BACKOFF_BASE = 0.0002
_BACKOFF_FACTOR = 2.0
_BACKOFF_MAX = 0.02


class KVStore:
    """A typed, versioned, thread-safe key-value store.

    ``seed`` feeds the jittered retry backoff of :meth:`transaction`, so
    contention handling is reproducible run-to-run.
    """

    def __init__(self, seed: int = 0) -> None:
        self._data: dict[str, Any] = {}
        self._versions: dict[str, int] = {}
        self._lock = threading.RLock()
        self._rng = random.Random(seed)
        #: Optimistic-transaction retries served so far (WatchError
        #: conflicts that re-ran a body, forced bursts included).
        self.tx_retries = 0
        #: Chaos hook: pending commits forced to fail with WatchError.
        self._forced_conflicts = 0
        self.injected_conflicts = 0

    # -- internal helpers (callers hold the lock) ----------------------

    def _bump(self, key: str) -> None:
        self._versions[key] = self._versions.get(key, 0) + 1

    def _get_typed(self, key: str, factory: Callable[[], Any]) -> Any:
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            value = factory()
            self._data[key] = value
        expected = type(factory())
        if not isinstance(value, expected):
            raise TypeError(
                f"key {key!r} holds {type(value).__name__}, "
                f"expected {expected.__name__}")
        return value

    # -- plain values ---------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        with self._lock:
            value = self._data.get(key, _MISSING)
            return default if value is _MISSING else value

    def set(self, key: str, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self._bump(key)

    def setnx(self, key: str, value: Any) -> bool:
        """Set only if the key does not exist. Returns True if set."""
        with self._lock:
            if key in self._data:
                return False
            self._data[key] = value
            self._bump(key)
            return True

    def delete(self, *keys: str) -> int:
        with self._lock:
            removed = 0
            for key in keys:
                if key in self._data:
                    del self._data[key]
                    self._bump(key)
                    removed += 1
            return removed

    def exists(self, key: str) -> bool:
        with self._lock:
            return key in self._data

    def incr(self, key: str, amount: int = 1) -> int:
        with self._lock:
            value = self._data.get(key, 0)
            if not isinstance(value, int):
                raise TypeError(f"key {key!r} is not an integer")
            value += amount
            self._data[key] = value
            self._bump(key)
            return value

    def keys(self, prefix: str = "") -> list[str]:
        with self._lock:
            return [k for k in self._data if k.startswith(prefix)]

    def version(self, key: str) -> int:
        """Monotonic write counter for ``key`` (0 if never written)."""
        with self._lock:
            return self._versions.get(key, 0)

    # -- hashes -----------------------------------------------------------

    def hset(self, key: str, field: str, value: Any) -> None:
        with self._lock:
            self._get_typed(key, dict)[field] = value
            self._bump(key)

    def hget(self, key: str, field: str, default: Any = None) -> Any:
        with self._lock:
            value = self._data.get(key)
            if value is None:
                return default
            return value.get(field, default)

    def hdel(self, key: str, *fields: str) -> int:
        with self._lock:
            value = self._data.get(key)
            if not isinstance(value, dict):
                return 0
            removed = 0
            for f in fields:
                if f in value:
                    del value[f]
                    removed += 1
            if removed:
                self._bump(key)
            return removed

    def hgetall(self, key: str) -> dict:
        with self._lock:
            value = self._data.get(key)
            return dict(value) if isinstance(value, dict) else {}

    def hlen(self, key: str) -> int:
        with self._lock:
            value = self._data.get(key)
            return len(value) if isinstance(value, dict) else 0

    # -- sets ---------------------------------------------------------------

    def sadd(self, key: str, *members: Any) -> int:
        with self._lock:
            s = self._get_typed(key, set)
            before = len(s)
            s.update(members)
            added = len(s) - before
            if added:
                self._bump(key)
            return added

    def srem(self, key: str, *members: Any) -> int:
        with self._lock:
            s = self._data.get(key)
            if not isinstance(s, set):
                return 0
            removed = 0
            for m in members:
                if m in s:
                    s.discard(m)
                    removed += 1
            if removed:
                self._bump(key)
            return removed

    def smembers(self, key: str) -> set:
        with self._lock:
            s = self._data.get(key)
            return set(s) if isinstance(s, set) else set()

    def scard(self, key: str) -> int:
        with self._lock:
            s = self._data.get(key)
            return len(s) if isinstance(s, set) else 0

    def sismember(self, key: str, member: Any) -> bool:
        with self._lock:
            s = self._data.get(key)
            return isinstance(s, set) and member in s

    # -- sorted sets -----------------------------------------------------

    def zadd(self, key: str, member: Any, score: float) -> None:
        with self._lock:
            z = self._get_typed(key, dict)
            z[member] = score
            self._bump(key)

    def zscore(self, key: str, member: Any) -> Optional[float]:
        with self._lock:
            z = self._data.get(key)
            if not isinstance(z, dict):
                return None
            return z.get(member)

    def zrange(self, key: str, start: int = 0, stop: int = -1) -> list:
        """Members ordered by (score, member) — like Redis ZRANGE."""
        with self._lock:
            z = self._data.get(key)
            if not isinstance(z, dict):
                return []
            ordered = sorted(z, key=lambda m: (z[m], repr(m)))
            if stop == -1:
                return ordered[start:]
            return ordered[start:stop + 1]

    def zpopmin(self, key: str) -> Optional[tuple[Any, float]]:
        with self._lock:
            z = self._data.get(key)
            if not isinstance(z, dict) or not z:
                return None
            member = min(z, key=lambda m: (z[m], repr(m)))
            score = z.pop(member)
            self._bump(key)
            return member, score

    # -- chaos hooks ------------------------------------------------------

    def force_conflicts(self, count: int) -> None:
        """Inject a transaction storm: fail the next ``count`` commits.

        Each forced failure raises :class:`WatchError` exactly as a real
        conflicting write would, so the optimistic-retry loop (backoff,
        ``tx_retries`` accounting, the bounded attempt budget) is
        exercised end-to-end by the chaos bench.
        """
        with self._lock:
            self._forced_conflicts += count

    # -- transactions -------------------------------------------------------

    def _retry_sleep(self, attempt: int) -> None:
        """Seeded jittered exponential backoff between retry attempts.

        Immediate retry livelocks under contention: every colliding
        writer re-reads, re-computes, and re-collides in lockstep. The
        jitter desynchronizes them; the cap keeps worst-case added
        latency bounded.
        """
        delay = min(_BACKOFF_MAX, _BACKOFF_BASE * _BACKOFF_FACTOR ** attempt)
        with self._lock:
            jitter = 0.5 + self._rng.random()
        time.sleep(delay * jitter)

    def transaction(self, fn: Callable[["Transaction"], Any],
                    max_retries: int = 64) -> Any:
        """Run ``fn(txn)`` optimistically until it commits.

        ``fn`` reads through the transaction handle (auto-WATCHing each key
        it touches) and queues writes; after ``fn`` returns, the buffered
        writes are applied atomically iff no watched key changed since it
        was read. On conflict the body is re-run from scratch after a
        seeded jittered backoff (counted in :attr:`tx_retries`), up to
        ``max_retries`` attempts.
        """
        for attempt in range(max_retries):
            txn = Transaction(self)
            result = fn(txn)
            try:
                txn.commit()
            except WatchError:
                with self._lock:
                    self.tx_retries += 1
                self._retry_sleep(attempt)
                continue
            return result
        raise TransactionError(
            f"transaction aborted after {max_retries} retries")

    def pipeline(self) -> "Transaction":
        """A bare transaction handle (manual ``commit()``)."""
        return Transaction(self)


class Transaction:
    """Optimistic read-buffer-commit handle. See :meth:`KVStore.transaction`."""

    def __init__(self, store: KVStore) -> None:
        self._store = store
        self._watched: dict[str, int] = {}
        self._writes: list[tuple[Callable, tuple]] = []
        self.committed = False

    # -- reads (auto-watch) ----------------------------------------------

    def _watch(self, key: str) -> None:
        if key not in self._watched:
            self._watched[key] = self._store.version(key)

    def watch(self, *keys: str) -> None:
        with self._store._lock:
            for key in keys:
                self._watch(key)

    def get(self, key: str, default: Any = None) -> Any:
        with self._store._lock:
            self._watch(key)
            return self._store.get(key, default)

    def hgetall(self, key: str) -> dict:
        with self._store._lock:
            self._watch(key)
            return self._store.hgetall(key)

    def hget(self, key: str, field: str, default: Any = None) -> Any:
        with self._store._lock:
            self._watch(key)
            return self._store.hget(key, field, default)

    def smembers(self, key: str) -> set:
        with self._store._lock:
            self._watch(key)
            return self._store.smembers(key)

    # -- buffered writes -------------------------------------------------

    def set(self, key: str, value: Any) -> None:
        self._writes.append((self._store.set, (key, value)))

    def delete(self, *keys: str) -> None:
        self._writes.append((self._store.delete, keys))

    def hset(self, key: str, field: str, value: Any) -> None:
        self._writes.append((self._store.hset, (key, field, value)))

    def hdel(self, key: str, *fields: str) -> None:
        self._writes.append((self._store.hdel, (key, *fields)))

    def sadd(self, key: str, *members: Any) -> None:
        self._writes.append((self._store.sadd, (key, *members)))

    def srem(self, key: str, *members: Any) -> None:
        self._writes.append((self._store.srem, (key, *members)))

    def zadd(self, key: str, member: Any, score: float) -> None:
        self._writes.append((self._store.zadd, (key, member, score)))

    def incr(self, key: str, amount: int = 1) -> None:
        self._writes.append((self._store.incr, (key, amount)))

    # -- commit --------------------------------------------------------------

    def commit(self) -> None:
        """Apply buffered writes iff no watched key changed (else WatchError)."""
        if self.committed:
            raise TransactionError("transaction already committed")
        store = self._store
        with store._lock:
            if store._forced_conflicts > 0:
                store._forced_conflicts -= 1
                store.injected_conflicts += 1
                raise WatchError("chaos: injected transaction conflict")
            for key, version in self._watched.items():
                if store.version(key) != version:
                    raise WatchError(f"watched key {key!r} changed")
            for op, args in self._writes:
                op(*args)
            self.committed = True
