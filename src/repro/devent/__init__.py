"""Discrete-event simulation kernel.

All benchmark experiments run in *virtual time* on this kernel: the
schedulers under test and the simulated LLM serving engine are event-driven
state machines whose callbacks are ordered by a single event heap. This
substitutes for the paper's wall-clock measurements on real GPUs while
keeping completion-time *ratios* between schedulers meaningful and exactly
reproducible.
"""

from .kernel import Event, Kernel, Process, Timeout, Gate
from .queues import VirtualPriorityQueue

__all__ = [
    "Event",
    "Kernel",
    "Process",
    "Timeout",
    "Gate",
    "VirtualPriorityQueue",
]
