"""Virtual-time queues used by scheduler drivers.

:class:`VirtualPriorityQueue` mirrors the ``ready_queue`` / ``ack_queue``
of Algorithm 3: producers ``put`` items with a priority (the simulation
step), and consumers register callbacks that fire — in priority order —
when items are available.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from .kernel import Kernel


class VirtualPriorityQueue:
    """Priority queue whose consumers are event callbacks.

    When ``priority=False`` the queue degrades to FIFO (used for the
    "w/o priority" ablation in Table 1).
    """

    def __init__(self, kernel: Kernel, priority: bool = True) -> None:
        self.kernel = kernel
        self.priority = priority
        self._heap: list[tuple[float, int, Any]] = []
        self._seq = 0
        self._getters: list[Callable[[Any], None]] = []

    def __len__(self) -> int:
        return len(self._heap)

    def put(self, item: Any, priority: float = 0.0) -> None:
        """Insert ``item``; delivers immediately if a consumer is waiting."""
        self._seq += 1
        key = priority if self.priority else 0.0
        heapq.heappush(self._heap, (key, self._seq, item))
        self._drain()

    def get(self, callback: Callable[[Any], None]) -> None:
        """Register ``callback`` to receive the next item (one-shot)."""
        self._getters.append(callback)
        self._drain()

    def get_nowait(self) -> Optional[Any]:
        """Pop the best item if one exists, else None."""
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def peek_priority(self) -> Optional[float]:
        if not self._heap:
            return None
        return self._heap[0][0]

    def _drain(self) -> None:
        while self._heap and self._getters:
            _, _, item = heapq.heappop(self._heap)
            callback = self._getters.pop(0)
            # Deliver through the kernel so delivery order is a proper
            # event (keeps callback stacks shallow and deterministic).
            self.kernel.call_at(self.kernel.now, callback, item)
