"""Event heap, virtual clock, and lightweight processes.

The kernel is deliberately small: a binary heap of ``(time, seq, Event)``
entries with a monotonically increasing sequence number so that events
scheduled earlier run first at equal timestamps (deterministic tie-break).

Two programming styles are supported:

* **Callbacks** — ``kernel.call_at(t, fn, *args)`` / ``call_in(dt, ...)``.
  This is the style used by the performance-critical serving engine and
  scheduler drivers.
* **Processes** — generator functions that ``yield Timeout(dt)`` or
  ``yield gate`` (a :class:`Gate`). Convenient for tests and examples.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Optional

from ..errors import KernelError


class Event:
    """A scheduled callback. Cancel with :meth:`cancel`."""

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: float, fn: Callable[..., Any], args: tuple) -> None:
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (lazy removal from the heap)."""
        self.cancelled = True


class Kernel:
    """The virtual-time event loop."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- scheduling ---------------------------------------------------

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise KernelError(
                f"cannot schedule at {time} (now is {self._now})")
        ev = Event(time, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, ev))
        return ev

    def call_in(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise KernelError(f"negative delay {delay}")
        return self.call_at(self._now + delay, fn, *args)

    # -- execution ----------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the heap empties or ``until`` is reached.

        Returns the virtual time at which execution stopped.
        """
        if self._running:
            raise KernelError("kernel is already running (re-entrant run)")
        self._running = True
        heap = self._heap
        try:
            while heap:
                time, _, ev = heap[0]
                if until is not None and time > until:
                    self._now = until
                    break
                heapq.heappop(heap)
                if ev.cancelled:
                    continue
                self._now = time
                ev.fn(*ev.args)
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Run a single (non-cancelled) event. Returns False when empty."""
        while self._heap:
            time, _, ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._now = time
            ev.fn(*ev.args)
            return True
        return False

    def empty(self) -> bool:
        return not any(not ev.cancelled for _, _, ev in self._heap)

    # -- processes ------------------------------------------------------

    def process(self, gen: Generator) -> "Process":
        """Start a generator-based process immediately (at current time)."""
        proc = Process(self, gen)
        self.call_at(self._now, proc._advance, None)
        return proc


class Timeout:
    """Yielded by a process to sleep ``delay`` virtual seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise KernelError(f"negative timeout {delay}")
        self.delay = delay


class Gate:
    """A one-shot broadcast event processes can wait on.

    ``fire(value)`` wakes every waiter with ``value`` as the yield result;
    waiting on an already-fired gate resumes immediately.
    """

    __slots__ = ("kernel", "fired", "value", "_waiters")

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.fired = False
        self.value: Any = None
        self._waiters: list[Callable[[Any], None]] = []

    def fire(self, value: Any = None) -> None:
        if self.fired:
            raise KernelError("gate already fired")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            self.kernel.call_at(self.kernel.now, resume, value)

    def add_waiter(self, resume: Callable[[Any], None]) -> None:
        if self.fired:
            self.kernel.call_at(self.kernel.now, resume, self.value)
        else:
            self._waiters.append(resume)


class Process:
    """A running generator-based process.

    The generator may yield :class:`Timeout` or :class:`Gate` instances and
    receives the gate's fire value (or None) back from the yield. When the
    generator returns, :attr:`done` gate fires with its return value.
    """

    __slots__ = ("kernel", "gen", "done")

    def __init__(self, kernel: Kernel, gen: Generator) -> None:
        self.kernel = kernel
        self.gen = gen
        self.done = Gate(kernel)

    def _advance(self, send_value: Any) -> None:
        try:
            yielded = self.gen.send(send_value)
        except StopIteration as stop:
            self.done.fire(stop.value)
            return
        if isinstance(yielded, Timeout):
            self.kernel.call_in(yielded.delay, self._advance, None)
        elif isinstance(yielded, Gate):
            yielded.add_waiter(self._advance)
        elif isinstance(yielded, Process):
            yielded.done.add_waiter(self._advance)
        else:
            raise KernelError(
                f"process yielded unsupported value {yielded!r}")
