"""§4.1 reference settings: ``oracle``, ``no-dependency`` and ``critical``.

* **oracle** mines the *actual* dependencies from the full trace: agents
  that appear in each other's observation space (within ``radius_p``) at
  a step synchronize before and after that step; otherwise only each
  agent's own step chain serializes. This is unattainable online (it
  requires future knowledge) and upper-bounds what any dependency manager
  can achieve.
* **no-dependency** issues every LLM call at time zero — the pure
  hardware-throughput bound used for the §4.3 scaling studies.
* **critical** is the token-weighted longest path through the oracle
  dependency DAG, executed at batch size 1 with no queueing — the §4.2
  lower bound "regardless of available resources".
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from ..config import SchedulerConfig
from ..devent import Kernel
from ..errors import SchedulingError
from ..serving import PerfModel, ServingEngine
from ..trace import Trace
from .baselines import DriverStats
from .clustering import geo_clustering
from .rules import rules_for
from .tasks import ChainExecutor


def mine_interaction_groups(trace: Trace) -> list[list[list[int]]]:
    """Per-step connected components of mutual observation.

    Returns ``groups[step] = [sorted member lists]`` using start-of-step
    positions and the trace's perception radius, measured in the trace
    scenario's space (hop distance for graph-metric worlds).
    """
    space = rules_for(None, trace.meta).space
    groups: list[list[list[int]]] = []
    n = trace.meta.n_agents
    ids = list(range(n))
    pos_sa = trace.positions_by_step
    for step in range(trace.meta.n_steps):
        # One contiguous step slice instead of n per-agent reads.
        positions = [(r[0], r[1]) for r in pos_sa[step].tolist()]
        groups.append(geo_clustering(ids, positions, space,
                                     trace.meta.radius_p))
    return groups


def mean_dependency_count(trace: Trace) -> float:
    """Average group size over agent-steps (the paper's 1.85 statistic)."""
    groups = mine_interaction_groups(trace)
    total = 0
    count = 0
    for per_step in groups:
        for group in per_step:
            total += len(group) * len(group)  # each member sees the group
            count += len(group)
    return total / max(count, 1)


class OracleDriver:
    """Replay under mined (exact) dependencies."""

    def __init__(self, kernel: Kernel, engine: ServingEngine, trace: Trace,
                 config: SchedulerConfig, executor: ChainExecutor) -> None:
        self.kernel = kernel
        self.trace = trace
        self.config = config
        self.executor = executor
        self.stats = DriverStats()
        self.n_steps = trace.meta.n_steps
        self.n_agents = trace.meta.n_agents
        self.groups = mine_interaction_groups(trace)
        #: group index of each agent per step.
        self.group_of = []
        for step, per_step in enumerate(self.groups):
            lookup = np.empty(self.n_agents, dtype=np.int32)
            for gidx, group in enumerate(per_step):
                for aid in group:
                    lookup[aid] = gidx
            self.group_of.append(lookup)
        #: next step each agent will execute.
        self.next_step = np.zeros(self.n_agents, dtype=np.int64)
        self._dispatched: set[tuple[int, int]] = set()
        self._remaining: dict[tuple[int, int], int] = {}
        self._tasks_left = self.n_agents * self.n_steps
        #: Ready groups awaiting a worker slot (§3.1 worker pool).
        self._pending: list[tuple[float, int, tuple[int, int]]] = []
        self._pending_seq = 0
        self._busy_workers = 0

    def start(self) -> None:
        for gidx in range(len(self.groups[0])):
            self._try_dispatch(0, gidx)

    def _try_dispatch(self, step: int, gidx: int) -> None:
        key = (step, gidx)
        if key in self._dispatched:
            return
        group = self.groups[step][gidx]
        if any(self.next_step[aid] != step for aid in group):
            return
        self._dispatched.add(key)
        self._pending_seq += 1
        prio = float(step) if self.config.priority else float(self._pending_seq)
        heapq.heappush(self._pending, (prio, self._pending_seq, key))
        self._fill_workers()

    def _fill_workers(self) -> None:
        cap = self.config.num_workers
        while self._pending and (cap == 0 or self._busy_workers < cap):
            _, _, key = heapq.heappop(self._pending)
            self._busy_workers += 1
            self._dispatch(key)

    def _dispatch(self, key: tuple[int, int]) -> None:
        step, gidx = key
        group = self.groups[step][gidx]
        self._remaining[key] = len(group)
        self.stats.clusters_dispatched += 1
        self.stats.cluster_size_sum += len(group)
        self.kernel.call_in(
            self.config.overhead.controller_dispatch,
            self.executor.run_cluster, group, step, float(step),
            lambda a, s, key=key: self._task_done(key, a, s))

    def _task_done(self, key: tuple[int, int], aid: int, step: int) -> None:
        self.stats.tasks_completed += 1
        self._remaining[key] -= 1
        if self._remaining[key] == 0:
            self.kernel.call_in(self.config.overhead.cluster_commit,
                                self._commit_group, key)

    def _commit_group(self, key: tuple[int, int]) -> None:
        step, gidx = key
        del self._remaining[key]
        self._busy_workers -= 1
        group = self.groups[step][gidx]
        for aid in group:
            if self.next_step[aid] != step:
                raise SchedulingError("oracle committed out of order")
            self.next_step[aid] = step + 1
            self._tasks_left -= 1
        if step + 1 < self.n_steps:
            for aid in group:
                self._try_dispatch(step + 1,
                                   int(self.group_of[step + 1][aid]))
        self._fill_workers()

    def finished(self) -> bool:
        return self._tasks_left == 0


class NoDependencyDriver:
    """Every call submitted at t=0 (hardware throughput bound)."""

    def __init__(self, kernel: Kernel, engine: ServingEngine, trace: Trace,
                 config: SchedulerConfig, executor: ChainExecutor) -> None:
        self.kernel = kernel
        self.engine = engine
        self.trace = trace
        self.config = config
        self.stats = DriverStats()
        self._remaining = trace.n_calls

    def start(self) -> None:
        trace = self.trace
        for i in range(trace.n_calls):
            self.engine.generate(
                prompt_tokens=int(trace.call_in[i]),
                output_tokens=int(trace.call_out[i]),
                priority=float(trace.call_step[i]),
                on_complete=self._done,
                context=(int(trace.call_agent[i]), int(trace.call_step[i]),
                         int(trace.call_func[i])),
                agent_id=int(trace.call_agent[i]))
        self.stats.clusters_dispatched = 1
        self.stats.cluster_size_sum = trace.meta.n_agents

    def _done(self, request) -> None:
        self._remaining -= 1
        self.stats.tasks_completed += 1

    def finished(self) -> bool:
        return self._remaining == 0


def critical_path_time(trace: Trace, perf: PerfModel,
                       config: SchedulerConfig | None = None,
                       groups: Sequence[Sequence[Sequence[int]]] | None = None,
                       ) -> float:
    """Longest dependency path executed alone at batch size 1.

    Dynamic program over the oracle DAG: an agent's step starts when it
    and every member of its step interaction group finished the previous
    step; it then runs its chain at ideal single-request latency.
    """
    config = config or SchedulerConfig()
    if groups is None:
        groups = mine_interaction_groups(trace)
    n = trace.meta.n_agents
    n_steps = trace.meta.n_steps

    # Per-call ideal (batch-1) service time, vectorized: both prefill and
    # decode-iteration latency are affine in their token arguments.
    prompt = trace.call_in.astype(np.float64)
    output = trace.call_out.astype(np.float64)
    context = prompt + output / 2.0
    prefill0 = perf.prefill_time(0)
    prefill_slope = perf.prefill_time(1_000_000) / 1e6 - prefill0 / 1e6
    iter0 = perf.decode_iteration_time(1, 0.0)
    kv_slope = perf.kv_read_time_per_token()
    service = (prefill0 + prefill_slope * prompt
               + output * (iter0 + kv_slope * context))
    rows = (trace.call_agent.astype(np.int64) * n_steps
            + trace.call_step.astype(np.int64))
    chain_time = np.bincount(rows, weights=service,
                             minlength=n * n_steps).reshape(n, n_steps)
    chain_time += config.overhead.agent_step

    finish = np.zeros(n, dtype=np.float64)
    for step in range(n_steps):
        starts = finish  # same array: group sync rewrites entries in place
        for group in groups[step]:
            if len(group) > 1:
                group_start = max(finish[aid] for aid in group)
                for aid in group:
                    starts[aid] = group_start
        finish = starts + chain_time[:, step]
    return float(finish.max())
