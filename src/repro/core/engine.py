"""One-call replay entry point.

``run_replay(trace, scheduler, serving)`` wires together the virtual-time
kernel, the simulated serving engine, the chain executor and the selected
scheduling driver, runs to completion, and returns a
:class:`SimulationResult` with the numbers the paper reports: completion
time, achieved parallelism, and scheduler-side statistics.
"""

from __future__ import annotations

import gc

from dataclasses import dataclass, field
from typing import Optional

from ..config import SchedulerConfig, ServingConfig
from ..devent import Kernel
from ..errors import ConfigError, SchedulingError
from ..instrument import TimelineRecorder
from ..serving import EngineMetrics, PerfModel, ServingEngine, get_gpu, get_model
from ..trace import Trace
from .baselines import DriverStats, ParallelSyncDriver, SingleThreadDriver
from .metropolis import MetropolisDriver
from .oracle import NoDependencyDriver, OracleDriver, critical_path_time
from .speculative import SpeculativeMetropolisDriver
from .tasks import ChainExecutor

_DRIVERS = {
    "single-thread": SingleThreadDriver,
    "parallel-sync": ParallelSyncDriver,
    "metropolis": MetropolisDriver,
    "metropolis-spec": SpeculativeMetropolisDriver,
    "oracle": OracleDriver,
    "no-dependency": NoDependencyDriver,
}


@dataclass
class SimulationResult:
    """Outcome of one replay run."""

    policy: str
    #: Workload label: the scheduler config's scenario, falling back to
    #: the scenario recorded in the trace metadata.
    scenario: str
    #: Virtual seconds from start to the last completed event.
    completion_time: float
    #: Time-average outstanding LLM requests (§4.2 metric).
    achieved_parallelism: float
    n_calls_completed: int
    n_tasks_completed: int
    driver_stats: DriverStats
    engine_metrics: EngineMetrics
    #: Mean replica busy fraction over the run (GPU utilization proxy).
    gpu_busy_fraction: float
    timeline: Optional[TimelineRecorder] = None
    #: Step-barrier completion times (parallel-sync only; Fig. 1 lines).
    step_completion_times: list[float] = field(default_factory=list)
    #: KV retention counters summed over replicas (all zero when the
    #: run's ``kv_policy`` is ``none``).
    kv_stats: dict = field(default_factory=dict)

    def speedup_over(self, other: "SimulationResult") -> float:
        """How much faster this run is than ``other`` (>1 = faster)."""
        return other.completion_time / self.completion_time


def run_replay(trace: Trace,
               scheduler: SchedulerConfig | None = None,
               serving: ServingConfig | None = None,
               collect_timeline: bool = False,
               fault_hook=None) -> SimulationResult:
    """Replay ``trace`` under one scheduling policy; return its result.

    ``fault_hook(kernel, engine)``, when given, runs after the engine is
    built and before the driver starts — the chaos bench uses it to
    schedule mid-run fault injections (e.g. a replica blackout) in
    virtual time.
    """
    scheduler = scheduler or SchedulerConfig()
    serving = serving or ServingConfig()
    if scheduler.policy not in _DRIVERS:
        raise ConfigError(
            f"unknown policy {scheduler.policy!r}; "
            f"available: {sorted(_DRIVERS)}")
    if scheduler.parallel_workers >= 2 and fault_hook is None:
        # Multiprocess controller (state-identical to the in-process
        # path; see repro.core.parallel). Returns None when the
        # workload cannot be split, which falls through to the
        # in-process drivers below. fault_hook closures cannot cross a
        # process boundary, so chaos runs always stay in-process.
        from .parallel import run_parallel_replay
        result = run_parallel_replay(trace, scheduler, serving,
                                     collect_timeline=collect_timeline)
        if result is not None:
            return result
    # §3.5: request priority at the serving engine follows the scheduler's
    # priority switch (the Table 1 ablation flips both together).
    serving_cfg = serving if serving.priority_scheduling == scheduler.priority \
        else ServingConfig(**{**serving.__dict__,
                              "priority_scheduling": scheduler.priority})
    kernel = Kernel()
    engine = ServingEngine(kernel, serving_cfg)
    if fault_hook is not None:
        fault_hook(kernel, engine)
    timeline = TimelineRecorder() if collect_timeline else None
    executor = ChainExecutor(
        kernel, engine, trace, scheduler.overhead,
        call_observer=timeline.record if timeline else None)
    driver = _DRIVERS[scheduler.policy](kernel, engine, trace, scheduler,
                                        executor)
    # The driver's structures hold O(agents) container objects, and every
    # controller round churns O(agents) more; the cyclic collector the
    # allocator triggers inside the hot loop re-traverses the survivors
    # each time, which grows into the dominant cost at large populations
    # (it roughly doubled wall time at 20k agents). The run itself builds
    # no reference cycles, so plain refcounting reclaims everything;
    # collection is paused for the loop and any stray cycles are swept
    # once at the end.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        driver.start()
        kernel.run()
    finally:
        if gc_was_enabled:
            gc.enable()
        gc.collect()
    if not driver.finished():
        raise SchedulingError(
            f"{scheduler.policy}: kernel drained before completion "
            f"({driver.stats.tasks_completed} tasks done)")
    if not engine.idle():
        raise SchedulingError(
            f"{scheduler.policy}: serving engine still busy at drain")
    completion = kernel.now
    return SimulationResult(
        policy=scheduler.policy,
        scenario=scheduler.scenario or trace.meta.scenario,
        completion_time=completion,
        achieved_parallelism=engine.metrics.achieved_parallelism(completion),
        n_calls_completed=engine.metrics.completed,
        n_tasks_completed=driver.stats.tasks_completed,
        driver_stats=driver.stats,
        engine_metrics=engine.metrics,
        gpu_busy_fraction=engine.busy_fraction(completion),
        timeline=timeline,
        step_completion_times=getattr(driver, "step_completion_times", []),
        kv_stats=engine.kv_stats(),
    )


def critical_time_for(trace: Trace, serving: ServingConfig | None = None,
                      scheduler: SchedulerConfig | None = None) -> float:
    """Convenience wrapper computing the ``critical`` bound for a config."""
    serving = serving or ServingConfig()
    perf = PerfModel(model=get_model(serving.model), gpu=get_gpu(serving.gpu),
                     tp=serving.tp,
                     kv_memory_fraction=serving.kv_memory_fraction)
    return critical_path_time(trace, perf, scheduler)
