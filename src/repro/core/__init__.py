"""AI Metropolis core: out-of-order multi-agent simulation scheduling.

This package is the paper's contribution:

* :mod:`rules` — the §3.2 / Appendix A dependency rules (coupled, blocked,
  and the temporal-causality validity condition they conservatively
  enforce);
* :mod:`space` — pluggable distance metrics, including the §6 non-
  Euclidean (social graph) extension;
* :mod:`dependency_graph` — the §3.3 spatiotemporal dependency graph with
  incremental blocked-edge maintenance (the OOO "scoreboard");
* :mod:`clustering` — §3.4 geo-clustering of coupled agents;
* :mod:`metropolis` — the Algorithm 3 controller/worker scheduling
  workflow, as a virtual-time driver;
* :mod:`sharding` — region-sharded controller state: provably
  independent map regions each own a dependency-graph shard behind a
  single-graph facade (bit-identical results, million-agent scaling);
* :mod:`parallel` — the multiprocess controller: region shards run
  their full controller loops in persistent worker processes over a
  shared-memory position store, ledgers merged into one result;
* :mod:`baselines` — Algorithm 1 baselines (``single-thread`` and
  ``parallel-sync``);
* :mod:`oracle` — the §4.1 ``oracle`` (trace-mined dependencies),
  ``no-dependency`` and ``critical`` reference settings;
* :mod:`engine` — one-call replay entry point used by benches and tests.
"""

from .engine import SimulationResult, run_replay, critical_path_time
from .parallel import ShardWorkerPool, run_parallel_replay
from .rules import DependencyRules, rules_for
from .sharding import ShardedGraph, plan_regions
from .space import (ChebyshevSpace, EuclideanSpace, GraphSpace,
                    ManhattanSpace, Space, space_for)

__all__ = [
    "run_replay",
    "SimulationResult",
    "critical_path_time",
    "DependencyRules",
    "rules_for",
    "ShardedGraph",
    "plan_regions",
    "ShardWorkerPool",
    "run_parallel_replay",
    "Space",
    "EuclideanSpace",
    "ChebyshevSpace",
    "ManhattanSpace",
    "GraphSpace",
    "space_for",
]
