"""Agent-step task execution.

A *task* is one agent's work for one simulation step: a fixed per-step
overhead (perceive / move / world bookkeeping — the non-LLM ~5% the paper
measures) followed by the agent's LLM call chain, executed sequentially
because each call's prompt depends on the previous call's response
(Algorithm 2: perceive -> retrieve -> plan).

All scheduler drivers share this executor; they differ only in *when*
they start tasks.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..config import OverheadConfig
from ..devent import Kernel
from ..serving import LLMRequest, ServingEngine
from ..trace import Trace

#: Completion callback signature: (agent_id, step).
TaskDone = Callable[[int, int], None]
#: Per-call observer: (agent_id, step, func_id, submit_t, finish_t).
CallObserver = Callable[[int, int, int, float, float], None]


class ChainExecutor:
    """Runs agent-step call chains against the serving engine."""

    def __init__(self, kernel: Kernel, engine: ServingEngine, trace: Trace,
                 overhead: OverheadConfig,
                 call_observer: Optional[CallObserver] = None) -> None:
        self.kernel = kernel
        self.engine = engine
        self.trace = trace
        self.overhead = overhead
        self.call_observer = call_observer
        #: Total LLM calls issued (for completeness accounting).
        self.calls_issued = 0

    def run_task(self, aid: int, step: int, priority: float,
                 on_done: TaskDone) -> None:
        """Start the (aid, step) task; ``on_done`` fires at completion."""
        chain = self.trace.chain(aid, step)
        self.kernel.call_in(self.overhead.agent_step,
                            self._issue_next, aid, step, chain, 0,
                            priority, on_done)

    def _issue_next(self, aid: int, step: int, chain, idx: int,
                    priority: float, on_done: TaskDone) -> None:
        if idx >= len(chain):
            on_done(aid, step)
            return
        func_id, prompt_tokens, output_tokens = chain[idx]
        self.calls_issued += 1
        submit_time = self.kernel.now

        def _completed(request: LLMRequest) -> None:
            if self.call_observer is not None:
                self.call_observer(aid, step, func_id, submit_time,
                                   self.kernel.now)
            self._issue_next(aid, step, chain, idx + 1, priority, on_done)

        self.engine.generate(
            prompt_tokens=int(prompt_tokens),
            output_tokens=int(output_tokens),
            priority=priority,
            on_complete=_completed,
            context=(aid, step, func_id))
