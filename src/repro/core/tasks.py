"""Agent-step task execution.

A *task* is one agent's work for one simulation step: a fixed per-step
overhead (perceive / move / world bookkeeping — the non-LLM ~5% the paper
measures) followed by the agent's LLM call chain, executed sequentially
because each call's prompt depends on the previous call's response
(Algorithm 2: perceive -> retrieve -> plan).

All scheduler drivers share this executor; they differ only in *when*
they start tasks. Dispatch is cluster-granular: a driver hands a whole
coupled cluster to :meth:`ChainExecutor.run_cluster`, which resolves
every member's chain with one vectorized CSR lookup
(:meth:`repro.trace.Trace.chain_bounds`), schedules a single kernel
event for the round, and submits the members' first calls to the
serving engine in one batch — no per-task chain materialization, no
per-call closures.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..config import OverheadConfig
from ..devent import Kernel
from ..serving import LLMRequest, ServingEngine
from ..trace import Trace

#: Completion callback signature: (agent_id, step).
TaskDone = Callable[[int, int], None]
#: Per-call observer: (agent_id, step, func_id, submit_t, finish_t).
CallObserver = Callable[[int, int, int, float, float], None]


class _ClusterRun:
    """In-flight state of one dispatched cluster (one step's round).

    Holds flat cursor/end arrays into the trace's call columns; every
    request's completion re-enters through the single bound method
    :meth:`_call_done`, so running a cluster allocates O(members) —
    not O(calls) — bookkeeping objects.
    """

    __slots__ = ("ex", "members", "step", "priority", "on_done",
                 "cur", "end", "index_of")

    def __init__(self, ex: "ChainExecutor", members: Sequence[int],
                 step: int, priority: float, on_done: TaskDone) -> None:
        self.ex = ex
        self.members = members
        self.step = step
        self.priority = priority
        self.on_done = on_done
        starts, ends = ex.trace.chain_bounds(members, step)
        self.cur = starts.tolist()
        self.end = ends.tolist()
        self.index_of = {aid: i for i, aid in enumerate(members)}

    def start(self) -> None:
        """Fires once per cluster after the per-step overhead."""
        ex = self.ex
        trace = ex.trace
        specs = []
        finished = []
        for i, aid in enumerate(self.members):
            idx = self.cur[i]
            if idx >= self.end[i]:
                finished.append(aid)
                continue
            specs.append((aid, int(trace.call_in[idx]),
                          int(trace.call_out[idx]), self.priority,
                          self._call_done,
                          (aid, self.step, int(trace.call_func[idx]))))
        if specs:
            ex.calls_issued += len(specs)
            ex.engine.generate_batch(specs)
        for aid in finished:
            self.on_done(aid, self.step)

    def _call_done(self, request: LLMRequest) -> None:
        """One member's call finished: observe, then advance its chain."""
        ex = self.ex
        aid = request.agent_id
        i = self.index_of[aid]
        idx = self.cur[i]
        if ex.call_observer is not None:
            ex.call_observer(aid, self.step, int(ex.trace.call_func[idx]),
                             request.submit_time, ex.kernel.now)
        idx += 1
        self.cur[i] = idx
        if idx >= self.end[i]:
            self.on_done(aid, self.step)
            return
        trace = ex.trace
        ex.calls_issued += 1
        ex.engine.generate(
            prompt_tokens=int(trace.call_in[idx]),
            output_tokens=int(trace.call_out[idx]),
            priority=self.priority,
            on_complete=self._call_done,
            context=(aid, self.step, int(trace.call_func[idx])),
            agent_id=aid)


class ChainExecutor:
    """Runs agent-step call chains against the serving engine."""

    def __init__(self, kernel: Kernel, engine: ServingEngine, trace: Trace,
                 overhead: OverheadConfig,
                 call_observer: Optional[CallObserver] = None) -> None:
        self.kernel = kernel
        self.engine = engine
        self.trace = trace
        self.overhead = overhead
        self.call_observer = call_observer
        #: Total LLM calls issued (for completeness accounting).
        self.calls_issued = 0

    def run_cluster(self, members: Sequence[int], step: int, priority: float,
                    on_done: TaskDone) -> None:
        """Start every ``(aid, step)`` task of a dispatched cluster.

        ``on_done`` fires once per member as its chain completes. The
        members' retained KV (if any) is pinned immediately — their
        calls are now imminent, the serving engine must not evict them
        on behalf of further-away agents.
        """
        run = _ClusterRun(self, members, step, priority, on_done)
        self.engine.prefetch(members)
        self.kernel.call_in(self.overhead.agent_step, run.start)

    def run_task(self, aid: int, step: int, priority: float,
                 on_done: TaskDone) -> None:
        """Start the (aid, step) task; ``on_done`` fires at completion."""
        self.run_cluster((aid,), step, priority, on_done)
