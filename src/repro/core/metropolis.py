"""Algorithm 3: the AI Metropolis out-of-order scheduling workflow.

The driver plays both roles of the paper's architecture in virtual time:

* the **controller** — forms clusters of coupled ready agents
  (geo-clustering, §3.4), dispatches every cluster whose members are
  unblocked (priority-ordered by step when a worker cap is set, §3.5),
  and reacts to completion acks;
* the **workers** — run each cluster's member chains concurrently against
  the serving engine, then commit: advance the members one step, update
  the dependency graph (§3.3), and hand newly unblocked agents back to
  the controller.

The controller's critical path is kept light (§3.6) three ways:

* **incremental clustering** — connected coupling components are cached
  between commits (:class:`~repro.core.clustering.ClusterCache`); only
  agents that moved, stepped, or gained a new coupling-range neighbor
  are re-BFS'd, everything else re-uses its memoized component;
* **ack coalescing with batched commits** — clusters finishing at the
  same virtual instant accumulate and the flush retires the whole batch
  through *one* vectorized :meth:`SpatioTemporalGraph.commit` (one
  broadcasted blocker-scan pass, one neighborhood pass) followed by one
  controller round, instead of a commit + round per ack;
* **single-pass commits** — the dependency graph returns the batch's
  coupling neighborhood and newly unblocked agents from the same pass
  that recomputes blockers, so the controller never re-queries.
"""

from __future__ import annotations

import heapq
from time import perf_counter

from ..config import SchedulerConfig
from ..devent import Kernel
from ..errors import SchedulingError
from ..serving import ServingEngine
from ..trace import Trace
from .baselines import DriverStats
from .clustering import ClusterCache
from .dependency_graph import SpatioTemporalGraph
from .rules import rules_for
from .tasks import ChainExecutor


class MetropolisDriver:
    """Out-of-order replay of a trace under the §3.2 rules."""

    def __init__(self, kernel: Kernel, engine: ServingEngine, trace: Trace,
                 config: SchedulerConfig, executor: ChainExecutor) -> None:
        self.kernel = kernel
        self.trace = trace
        self.config = config
        self.executor = executor
        self.rules = rules_for(config, trace.meta)
        self.stats = DriverStats()
        self.n_steps = trace.meta.n_steps
        n = trace.meta.n_agents
        #: Per-agent position rows as plain tuples: the commit path
        #: reads one position per member per step, and indexing a
        #: prebuilt list beats unpacking the trace's numpy row each
        #: time.
        self._pos_rows = [
            [(int(x), int(y)) for x, y in row]
            for row in trace.positions.tolist()]
        self.graph = SpatioTemporalGraph(
            self.rules, {aid: self._pos_rows[aid][0] for aid in range(n)})
        #: Agents finished with their previous step and not yet dispatched.
        self.ready: set[int] = set(range(n))
        self.done: set[int] = set()
        #: §3.6 incremental clustering: memoized coupling components.
        self._clusters = ClusterCache()
        self._running_clusters = 0
        #: Remaining-task counters per running cluster id.
        self._cluster_remaining: dict[int, int] = {}
        self._cluster_members: dict[int, list[int]] = {}
        self._cluster_step: dict[int, int] = {}
        self._cluster_seq = 0
        #: Dispatchable clusters awaiting a worker slot (when capped).
        self._pending: list[tuple[float, int, list[int], int]] = []
        self._pending_seq = 0
        self._busy_workers = 0
        #: Ack coalescing: clusters finished at the same virtual instant
        #: accumulate here and retire through one batched graph commit
        #: plus one controller round at the flush.
        self._commit_buf: list[tuple[int, list[int]]] = []
        self._dirty_accum: set[int] = set()
        self._flush_scheduled = False
        #: Per-member coupling candidates from the latest batch commit:
        #: exact until the next commit, so the very next round's cluster
        #: BFS seeds from them instead of re-querying the index.
        self._fresh_neighbors: dict[int, list[int]] = {}
        #: §6 hybrid deployment: latency-critical agents (see
        #: SchedulerConfig.interactive_agents).
        self._interactive = frozenset(config.interactive_agents)
        #: Agents inside any interactive agent's dependency cone,
        #: refreshed at most once per controller round via the spatial
        #: index (None = recompute on next use).
        self._cone_cache: set[int] | None = None
        self._last_commit_time: dict[int, float] = {
            aid: 0.0 for aid in self._interactive}
        #: Per-step latencies observed for interactive agents (seconds).
        self.interactive_latencies: list[float] = []
        self.stats.extra["interactive_latencies"] = self.interactive_latencies

    # -- controller ------------------------------------------------------

    def start(self) -> None:
        self._controller_round(set(self.ready))

    def _controller_round(self, dirty: set[int]) -> None:
        """Re-cluster around ``dirty`` agents and dispatch what is ready."""
        t0 = perf_counter()
        self._cone_cache = None
        graph = self.graph
        visited: set[int] = set()
        clusters: list[tuple[int, list[int]]] = []
        cached = self._clusters.get
        is_blocked = graph.blocked_by
        for aid in dirty:
            if aid in visited or aid not in self.ready:
                continue
            cluster = cached(aid)
            if cluster is None:
                cluster = self._collect_cluster(aid, visited)
                if len(cluster) > 1:
                    # Singletons are one spatial query to rebuild and
                    # are invalidated on dispatch anyway: memoizing them
                    # costs more than it saves.
                    self._clusters.store(cluster)
            else:
                visited.update(cluster)
            if not any(is_blocked[m] for m in cluster):
                clusters.append((graph.step[aid], cluster))
        t1 = perf_counter()
        # Step-priority dispatch order (§3.5); irrelevant when uncapped.
        clusters.sort(key=lambda pair: pair[0] if self.config.priority else 0)
        for step, cluster in clusters:
            self._enqueue_cluster(step, cluster)
        self._fill_workers()
        t2 = perf_counter()
        stats = self.stats
        stats.time_clustering += t1 - t0
        stats.time_dispatch += t2 - t1
        stats.controller_rounds += 1
        stats.extra["cluster_cache_hits"] = self._clusters.hits
        stats.extra["cluster_cache_misses"] = self._clusters.misses
        self._check_progress()

    def _clustering_exclude(self, aid: int) -> bool:
        """Hook: agents the BFS must not absorb (speculation override)."""
        return False

    def _collect_cluster(self, seed_aid: int, visited: set[int]) -> list[int]:
        """Connected coupling component of ready agents around ``seed_aid``."""
        graph = self.graph
        step = graph.step[seed_aid]
        threshold = self.rules.couple_threshold
        stack = [seed_aid]
        members = []
        visited.add(seed_aid)
        qbuf: list[int] = []
        fresh = self._fresh_neighbors
        while stack:
            aid = stack.pop()
            members.append(aid)
            candidates = fresh.get(aid)
            if candidates is None:
                candidates = graph.index.query_into(graph.pos[aid],
                                                    threshold, qbuf)
            for other in candidates:
                if other == aid or other in visited:
                    continue
                if graph.step[other] != step:
                    continue
                if other in self.done or self._clustering_exclude(other):
                    continue
                if graph.running[other]:
                    # The rules guarantee a running same-step agent can
                    # never sit inside a newly-ready agent's coupling
                    # radius; reaching this line means the invariant broke.
                    raise SchedulingError(
                        f"coupling invariant violated: agent {other} is "
                        f"running at step {step} within coupling range of "
                        f"ready agent {aid}")
                visited.add(other)
                stack.append(other)
        return sorted(members)

    def _cluster_priority(self, step: int, cluster: list[int]) -> float:
        """Dispatch/serving priority for a cluster (lower = sooner).

        Interactive clusters — and any cluster inside an interactive
        agent's dependency cone, which could block it within the
        configured horizon — preempt everything (§6 hybrid deployment);
        otherwise step order under priority scheduling, arrival order
        without.
        """
        if self._interactive and self.config.interactive_boost \
                and self._in_interactive_cone(cluster):
            return -1e9 + step
        if self.config.priority:
            return float(step)
        return float(self._pending_seq)

    def _cone_agents(self) -> set[int]:
        """Agents within the interactive dependency cone, via the index.

        One spatial query per interactive agent per controller round
        replaces the O(|interactive| x |cluster|) pairwise scan that
        every enqueue/dispatch used to pay.
        """
        cone = self._cone_cache
        if cone is None:
            radius = self.rules.block_threshold(
                self.config.interactive_horizon)
            cone = set(self._interactive)
            graph = self.graph
            for iid in self._interactive:
                cone.update(graph.index.query(graph.pos[iid], radius))
            self._cone_cache = cone
        return cone

    def _in_interactive_cone(self, cluster: list[int]) -> bool:
        return not self._cone_agents().isdisjoint(cluster)

    def _enqueue_cluster(self, step: int, cluster: list[int]) -> None:
        self._clusters.invalidate(cluster)
        for m in cluster:
            self.ready.discard(m)
        self.graph.mark_running(cluster)
        key = self._cluster_priority(step, cluster)
        self._pending_seq += 1
        heapq.heappush(self._pending,
                       (key, self._pending_seq, cluster, step))

    def _fill_workers(self) -> None:
        cap = self.config.num_workers
        while self._pending and (cap == 0 or self._busy_workers < cap):
            _, _, cluster, step = heapq.heappop(self._pending)
            self._busy_workers += 1
            self._dispatch(step, cluster)

    def _check_progress(self) -> None:
        if (not self._running_clusters and not self._pending
                and not self._flush_scheduled
                and len(self.done) < self.graph.n_agents):
            blocked = {aid: sorted(self.graph.blockers_of(aid))
                       for aid in sorted(self.ready)}
            raise SchedulingError(
                f"scheduler stalled with {len(self.done)} of "
                f"{self.graph.n_agents} agents done; ready/blocked: "
                f"{blocked}")

    # -- workers -----------------------------------------------------------

    def _dispatch(self, step: int, cluster: list[int]) -> None:
        self._running_clusters += 1
        self.stats.clusters_dispatched += 1
        self.stats.cluster_size_sum += len(cluster)
        cid = self._cluster_seq = self._cluster_seq + 1
        self._cluster_remaining[cid] = len(cluster)
        self._cluster_members[cid] = cluster
        self._cluster_step[cid] = step
        request_priority = self._cluster_priority(step, cluster) \
            if (self._interactive and self.config.interactive_boost) \
            else float(step)
        # One kernel event launches the whole cluster's chains (they all
        # share the dispatch overhead instant and the completion hook).
        self.kernel.call_in(
            self.config.overhead.controller_dispatch,
            self._launch_cluster, cid, cluster, step, request_priority)

    def _launch_cluster(self, cid: int, cluster: list[int], step: int,
                        priority: float) -> None:
        run_task = self.executor.run_task

        def done(a: int, s: int) -> None:
            self._task_done(cid, a, s)

        for aid in cluster:
            run_task(aid, step, priority, done)

    def _task_done(self, cid: int, aid: int, step: int) -> None:
        self.stats.tasks_completed += 1
        self._cluster_remaining[cid] -= 1
        if self._cluster_remaining[cid] == 0:
            self.kernel.call_in(self.config.overhead.cluster_commit,
                                self._commit_cluster, cid)

    def _commit_cluster(self, cid: int) -> None:
        members = self._cluster_members.pop(cid)
        step = self._cluster_step.pop(cid)
        del self._cluster_remaining[cid]
        self._running_clusters -= 1
        self._busy_workers -= 1
        # Ack coalescing: clusters finishing at the same virtual instant
        # accumulate and retire as one batched graph commit at the flush
        # (scheduled at the same timestamp, after the commits).
        self._commit_buf.append((step, members))
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.kernel.call_in(0.0, self._flush_controller_round)

    def _retire_commits(self) -> None:
        """Apply every accumulated cluster in one vectorized graph commit."""
        batch, self._commit_buf = self._commit_buf, []
        if not batch:
            return
        t0 = perf_counter()
        pos_rows = self._pos_rows
        members_all: list[int] = []
        new_positions: dict[int, tuple] = {}
        for step, members in batch:
            members_all += members
            nxt = step + 1
            for aid in members:
                new_positions[aid] = pos_rows[aid][nxt]
        graph = self.graph
        result = graph.commit(members_all, new_positions)
        spread = graph.max_step - graph.min_step
        if spread > self.stats.max_step_spread:
            self.stats.max_step_spread = spread
        if self.config.validate_causality:
            graph.validate()
        # A mover's coupling neighborhood may merge with its component;
        # drop those memoized components before the next round.
        self._clusters.invalidate(result.neighbors)
        # Until the next commit these are each member's exact coupling
        # candidates — the flush round's BFS seeds from them for free.
        self._fresh_neighbors = result.member_neighbors
        dirty = self._dirty_accum
        n_steps = self.n_steps
        for aid in members_all:
            if aid in self._interactive:
                now = self.kernel.now
                self.interactive_latencies.append(
                    now - self._last_commit_time[aid])
                self._last_commit_time[aid] = now
            if graph.step[aid] >= n_steps:
                self.done.add(aid)
            else:
                self.ready.add(aid)
                dirty.add(aid)
        # Newly unblocked waiters plus ready agents near the movers.
        ready = self.ready
        for aid in result.unblocked:
            if aid in ready:
                dirty.add(aid)
        for aid in result.neighbors:
            if aid in ready:
                dirty.add(aid)
        stats = self.stats
        stats.blocked_events = graph.blocked_events
        stats.unblock_events = graph.unblock_events
        stats.extra["graph_scans"] = graph.scans
        stats.extra["graph_scan_skips"] = graph.scan_skips
        stats.extra["graph_near_checks"] = graph.near_checks
        stats.extra["graph_wake_skips"] = graph.wake_skips
        stats.extra["graph_fallback_scans"] = graph.fallback_scans
        stats.time_graph += perf_counter() - t0

    def _flush_controller_round(self) -> None:
        self._flush_scheduled = False
        self._retire_commits()
        dirty, self._dirty_accum = self._dirty_accum, set()
        self._controller_round(dirty)

    def finished(self) -> bool:
        return len(self.done) == self.graph.n_agents
