"""Algorithm 3: the AI Metropolis out-of-order scheduling workflow.

The driver plays both roles of the paper's architecture in virtual time:

* the **controller** — forms clusters of coupled ready agents
  (geo-clustering, §3.4), dispatches every cluster whose members are
  unblocked (priority-ordered by step when a worker cap is set, §3.5),
  and reacts to completion acks;
* the **workers** — run each cluster's member chains concurrently against
  the serving engine, then commit: advance the members one step, update
  the dependency graph (§3.3), and hand newly unblocked agents back to
  the controller.

Dispatch work is incremental: after an ack only the committed members,
their released waiters, and ready agents within coupling range of them
("dirty" agents) are re-examined — the spirit of §3.6's light critical
path, expressed algorithmically instead of in C++.
"""

from __future__ import annotations

import heapq

from ..config import SchedulerConfig
from ..devent import Kernel
from ..errors import SchedulingError
from ..serving import ServingEngine
from ..trace import Trace
from .baselines import DriverStats
from .dependency_graph import SpatioTemporalGraph
from .rules import DependencyRules
from .tasks import ChainExecutor


class MetropolisDriver:
    """Out-of-order replay of a trace under the §3.2 rules."""

    def __init__(self, kernel: Kernel, engine: ServingEngine, trace: Trace,
                 config: SchedulerConfig, executor: ChainExecutor) -> None:
        self.kernel = kernel
        self.trace = trace
        self.config = config
        self.executor = executor
        self.rules = DependencyRules(config.dependency)
        self.stats = DriverStats()
        self.n_steps = trace.meta.n_steps
        n = trace.meta.n_agents
        self.graph = SpatioTemporalGraph(
            self.rules, {aid: trace.pos(aid, 0) for aid in range(n)})
        #: Agents finished with their previous step and not yet dispatched.
        self.ready: set[int] = set(range(n))
        self.done: set[int] = set()
        self._running_clusters = 0
        #: Remaining-task counters per running cluster id.
        self._cluster_remaining: dict[int, int] = {}
        self._cluster_members: dict[int, list[int]] = {}
        self._cluster_step: dict[int, int] = {}
        self._cluster_seq = 0
        #: Dispatchable clusters awaiting a worker slot (when capped).
        self._pending: list[tuple[float, int, list[int], int]] = []
        self._pending_seq = 0
        self._busy_workers = 0
        #: §6 hybrid deployment: latency-critical agents (see
        #: SchedulerConfig.interactive_agents).
        self._interactive = frozenset(config.interactive_agents)
        self._last_commit_time: dict[int, float] = {
            aid: 0.0 for aid in self._interactive}
        #: Per-step latencies observed for interactive agents (seconds).
        self.interactive_latencies: list[float] = []
        self.stats.extra["interactive_latencies"] = self.interactive_latencies

    # -- controller ------------------------------------------------------

    def start(self) -> None:
        self._controller_round(set(self.ready))

    def _controller_round(self, dirty: set[int]) -> None:
        """Re-cluster around ``dirty`` agents and dispatch what is ready."""
        visited: set[int] = set()
        clusters: list[tuple[int, list[int]]] = []
        for aid in dirty:
            if aid in visited or aid not in self.ready:
                continue
            cluster = self._collect_cluster(aid, visited)
            if all(not self.graph.is_blocked(m) for m in cluster):
                clusters.append((self.graph.step[aid], cluster))
        # Step-priority dispatch order (§3.5); irrelevant when uncapped.
        clusters.sort(key=lambda pair: pair[0] if self.config.priority else 0)
        for step, cluster in clusters:
            self._enqueue_cluster(step, cluster)
        self._fill_workers()
        self._check_progress()

    def _clustering_exclude(self, aid: int) -> bool:
        """Hook: agents the BFS must not absorb (speculation override)."""
        return False

    def _collect_cluster(self, seed_aid: int, visited: set[int]) -> list[int]:
        """Connected coupling component of ready agents around ``seed_aid``."""
        step = self.graph.step[seed_aid]
        threshold = self.rules.couple_threshold
        stack = [seed_aid]
        members = []
        visited.add(seed_aid)
        while stack:
            aid = stack.pop()
            members.append(aid)
            for other in self.graph.index.query(self.graph.pos[aid],
                                                threshold):
                if other == aid or other in visited:
                    continue
                if self.graph.step[other] != step:
                    continue
                if other in self.done or self._clustering_exclude(other):
                    continue
                if self.graph.running[other]:
                    # The rules guarantee a running same-step agent can
                    # never sit inside a newly-ready agent's coupling
                    # radius; reaching this line means the invariant broke.
                    raise SchedulingError(
                        f"coupling invariant violated: agent {other} is "
                        f"running at step {step} within coupling range of "
                        f"ready agent {aid}")
                visited.add(other)
                stack.append(other)
        return sorted(members)

    def _cluster_priority(self, step: int, cluster: list[int]) -> float:
        """Dispatch/serving priority for a cluster (lower = sooner).

        Interactive clusters — and any cluster inside an interactive
        agent's dependency cone, which could block it within the
        configured horizon — preempt everything (§6 hybrid deployment);
        otherwise step order under priority scheduling, arrival order
        without.
        """
        if self._interactive and self.config.interactive_boost \
                and self._in_interactive_cone(cluster):
            return -1e9 + step
        if self.config.priority:
            return float(step)
        return float(self._pending_seq)

    def _in_interactive_cone(self, cluster: list[int]) -> bool:
        if not self._interactive.isdisjoint(cluster):
            return True
        radius = self.rules.block_threshold(self.config.interactive_horizon)
        dist = self.rules.space.dist
        for iid in self._interactive:
            pos = self.graph.pos[iid]
            for m in cluster:
                if dist(pos, self.graph.pos[m]) <= radius:
                    return True
        return False

    def _enqueue_cluster(self, step: int, cluster: list[int]) -> None:
        for m in cluster:
            self.ready.discard(m)
        self.graph.mark_running(cluster)
        key = self._cluster_priority(step, cluster)
        self._pending_seq += 1
        heapq.heappush(self._pending,
                       (key, self._pending_seq, cluster, step))

    def _fill_workers(self) -> None:
        cap = self.config.num_workers
        while self._pending and (cap == 0 or self._busy_workers < cap):
            _, _, cluster, step = heapq.heappop(self._pending)
            self._busy_workers += 1
            self._dispatch(step, cluster)

    def _check_progress(self) -> None:
        if (not self._running_clusters and not self._pending
                and len(self.done) < self.graph.n_agents):
            blocked = {aid: sorted(self.graph.blockers_of(aid))
                       for aid in sorted(self.ready)}
            raise SchedulingError(
                f"scheduler stalled with {len(self.done)} of "
                f"{self.graph.n_agents} agents done; ready/blocked: "
                f"{blocked}")

    # -- workers -----------------------------------------------------------

    def _dispatch(self, step: int, cluster: list[int]) -> None:
        self._running_clusters += 1
        self.stats.clusters_dispatched += 1
        self.stats.cluster_size_sum += len(cluster)
        cid = self._cluster_seq = self._cluster_seq + 1
        self._cluster_remaining[cid] = len(cluster)
        self._cluster_members[cid] = cluster
        self._cluster_step[cid] = step
        request_priority = self._cluster_priority(step, cluster) \
            if (self._interactive and self.config.interactive_boost) \
            else float(step)
        for aid in cluster:
            self.kernel.call_in(
                self.config.overhead.controller_dispatch,
                self.executor.run_task, aid, step, request_priority,
                lambda a, s, cid=cid: self._task_done(cid, a, s))

    def _task_done(self, cid: int, aid: int, step: int) -> None:
        self.stats.tasks_completed += 1
        self._cluster_remaining[cid] -= 1
        if self._cluster_remaining[cid] == 0:
            self.kernel.call_in(self.config.overhead.cluster_commit,
                                self._commit_cluster, cid)

    def _commit_cluster(self, cid: int) -> None:
        members = self._cluster_members.pop(cid)
        step = self._cluster_step.pop(cid)
        del self._cluster_remaining[cid]
        self._running_clusters -= 1
        self._busy_workers -= 1
        new_positions = {aid: self.trace.pos(aid, step + 1)
                         for aid in members}
        candidates = self.graph.commit(members, new_positions)
        spread = self.graph.max_step - self.graph.min_step
        self.stats.max_step_spread = max(self.stats.max_step_spread, spread)
        if self.config.validate_causality:
            self.graph.validate()
        dirty: set[int] = set()
        for aid in members:
            if aid in self._interactive:
                now = self.kernel.now
                self.interactive_latencies.append(
                    now - self._last_commit_time[aid])
                self._last_commit_time[aid] = now
            if self.graph.step[aid] >= self.n_steps:
                self.done.add(aid)
            else:
                self.ready.add(aid)
                dirty.add(aid)
        # Newly unblocked waiters plus ready agents near the movers.
        for aid in candidates:
            if aid in self.ready:
                dirty.add(aid)
        for aid in members:
            for other in self.graph.index.query(
                    self.graph.pos[aid], self.rules.couple_threshold):
                if other in self.ready:
                    dirty.add(other)
        self.stats.blocked_events = self.graph.blocked_events
        self.stats.unblock_events = self.graph.unblock_events
        self._controller_round(dirty)

    def finished(self) -> bool:
        return len(self.done) == self.graph.n_agents
