"""Algorithm 3: the AI Metropolis out-of-order scheduling workflow.

The driver plays both roles of the paper's architecture in virtual time:

* the **controller** — forms clusters of coupled ready agents
  (geo-clustering, §3.4), dispatches every cluster whose members are
  unblocked (priority-ordered by step when a worker cap is set, §3.5),
  and reacts to completion acks;
* the **workers** — run each cluster's member chains concurrently against
  the serving engine, then commit: advance the members one step, update
  the dependency graph (§3.3), and hand newly unblocked agents back to
  the controller.

The controller's critical path is kept light (§3.6) by a flat,
array-backed round loop:

* **graph-native incremental clustering** — coupling components are
  memoized *inside* :class:`SpatioTemporalGraph` (``component_for``),
  invalidated by the graph's own ``mark_running``/``commit``
  transitions and re-BFS'd from the neighbor lists each commit already
  returns — the driver runs no cache-invalidation protocol;
* **single-event rounds** — one kernel event per virtual instant does
  everything: all clusters finishing at that instant retire through one
  batched graph commit, then one dispatch round runs, and every cluster
  it dispatches launches through one shared dispatch event. The old
  per-cluster event churn (a dispatch, a commit, and a flush event per
  cluster) is gone; ``DriverStats.extra["kernel_events"]`` counts the
  events the driver schedules, amortized well below one per cluster;
* **step-keyed dispatch buckets** — pending clusters queue in numpy-
  backed buckets keyed by integer step priority instead of a heap of
  python tuples;
* **numpy trace position store** — commit batches gather their members'
  next positions from the trace's step-major array in one fancy index
  and hand the row array straight to the graph, which returns the
  batch's coupling neighborhood and newly unblocked agents from the
  same pass that recomputes blockers.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from time import perf_counter

import numpy as np

from ..config import SchedulerConfig
from ..devent import Kernel
from ..errors import SchedulingError
from ..serving import ServingEngine
from ..trace import Trace
from .baselines import DriverStats
from .dependency_graph import SpatioTemporalGraph
from .sharding import ShardedGraph, plan_regions
from .rules import rules_for
from .tasks import ChainExecutor

#: Interactive clusters sort before every regular step key (§6 hybrid
#: deployment) while keeping step order among themselves.
_INTERACTIVE_BOOST = 1 << 40


class _DispatchBuckets:
    """Step-keyed dispatch queue (§3.5 priority order without a heap).

    Pending clusters bucket by an integer priority key — the step under
    priority scheduling, a constant in FIFO mode, ``step -
    _INTERACTIVE_BOOST`` for interactive clusters — FIFO within a
    bucket. Active keys sit densely packed in a numpy vector, so pop is
    one vectorized argmin over the live prefix (the live key count
    tracks the step spread: a handful) instead of log-n python tuple
    comparisons per push/pop.
    """

    __slots__ = ("_buckets", "_keys", "_count", "_n")

    def __init__(self) -> None:
        self._buckets: dict[int, deque] = {}
        self._keys = np.empty(8, dtype=np.int64)
        self._count = 0
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def push(self, key: int, item) -> None:
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = bucket = deque()
            count = self._count
            if count == len(self._keys):
                self._keys = np.resize(self._keys, count * 2)
            self._keys[count] = key
            self._count = count + 1
        bucket.append(item)
        self._n += 1

    def pop(self):
        """Remove and return the item with the smallest key (FIFO ties)."""
        count = self._count
        idx = int(np.argmin(self._keys[:count])) if count > 1 else 0
        key = int(self._keys[idx])
        bucket = self._buckets[key]
        item = bucket.popleft()
        self._n -= 1
        if not bucket:
            del self._buckets[key]
            count -= 1
            self._count = count
            if idx != count:
                self._keys[idx] = self._keys[count]
        return item


class MetropolisDriver:
    """Out-of-order replay of a trace under the §3.2 rules."""

    def __init__(self, kernel: Kernel, engine: ServingEngine, trace: Trace,
                 config: SchedulerConfig, executor: ChainExecutor,
                 shard_plan: list[list[int]] | None = None) -> None:
        self.kernel = kernel
        self.engine = engine
        self.trace = trace
        self.config = config
        self.executor = executor
        self.rules = rules_for(config, trace.meta)
        self.stats = DriverStats()
        self.n_steps = trace.meta.n_steps
        n = trace.meta.n_agents
        #: Controller time source for the §3.6 critical-path accounting.
        #: Wall clock by default; the multiprocess workers swap in
        #: ``time.process_time`` so a worker's controller seconds measure
        #: its own CPU work even when workers timeshare cores — the max
        #: over workers is then the parallel critical path, which is what
        #: wall time converges to on dedicated cores.
        self._clock = perf_counter
        #: Step-major trace position store: commit batches gather their
        #: (step + 1, agent) rows in one flat fancy index — no per-agent
        #: tuple lists are ever materialized.
        self._pos_sa = trace.positions_by_step
        self._pos_flat = trace.positions_flat
        #: ``shard_plan`` overrides region planning outright — the
        #: multiprocess workers pass their slice of the parent's global
        #: plan so per-shard graph state matches the in-process
        #: ``ShardedGraph`` bit-for-bit instead of being re-planned.
        if shard_plan is None and config.shards >= 2:
            shard_plan = plan_regions(trace, self.rules, config.shards)
        if shard_plan is not None and len(shard_plan) >= 2:
            self.graph = ShardedGraph(self.rules, self._pos_sa[0],
                                      shard_plan)
        else:
            self.graph = SpatioTemporalGraph(self.rules, self._pos_sa[0])
        #: Per agent, the sorted steps whose chains contain LLM calls —
        #: the replay-mode half of the invocation-distance signal (the
        #: trace is known, as with ``ignore_eos`` output lengths).
        self._call_steps = [np.flatnonzero(row).tolist()
                            for row in trace.chain_lengths()]
        #: Scheduler-aware serving: the engine's KV eviction key is the
        #: live invocation-distance prediction per agent.
        engine.set_distance_provider(self.invocation_distance)
        #: Agents finished with their previous step and not yet dispatched.
        self.ready: set[int] = set(range(n))
        self.done: set[int] = set()
        self._running_clusters = 0
        #: Per running cluster: [tasks remaining, members, step].
        self._running_info: dict[int, list] = {}
        self._cluster_seq = 0
        #: Dispatchable clusters awaiting a worker slot (when capped).
        self._pending = _DispatchBuckets()
        self._pending_seq = 0
        self._busy_workers = 0
        #: Single-event rounds: clusters finishing at the same virtual
        #: instant buffer under their shared commit due-time; one kernel
        #: event retires the whole batch through one graph commit and
        #: runs one dispatch round.
        self._round_pending: dict[float, list[tuple[int, list[int]]]] = {}
        self._dirty_accum: set[int] = set()
        #: Kernel events scheduled by the driver (the §3.6 churn gauge;
        #: amortized well below one per cluster with batched rounds).
        self._kernel_events = 0
        #: Component-BFS exclusion hook (speculation overrides).
        self._exclude_hook = None
        #: §6 hybrid deployment: latency-critical agents (see
        #: SchedulerConfig.interactive_agents).
        self._interactive = frozenset(config.interactive_agents)
        #: Agents inside any interactive agent's dependency cone,
        #: refreshed at most once per controller round via the spatial
        #: index (None = recompute on next use).
        self._cone_cache: set[int] | None = None
        self._last_commit_time: dict[int, float] = {
            aid: 0.0 for aid in self._interactive}
        #: Per-step latencies observed for interactive agents (seconds).
        self.interactive_latencies: list[float] = []
        self.stats.extra["interactive_latencies"] = self.interactive_latencies

    # -- scheduler-aware serving -----------------------------------------

    def invocation_distance(self, aid: int) -> float:
        """Predicted steps until ``aid``'s next LLM call (KV eviction key).

        Two ingredients, take the max:

        * the dependency graph's wake-step bound — how many steps the
          slowest blocker must commit before ``aid`` can even be
          dispatched (:meth:`SpatioTemporalGraph.invocation_distance`);
        * the trace lookahead — how many steps ahead ``aid``'s next
          *call-bearing* chain sits (replay mode knows the trace, the
          same way it knows output lengths). An agent walking a long
          call-free route was used recently but won't need its KV for
          many steps — precisely the segment LRU keeps and this evicts.

        Agents with no calls left in the window return ``inf`` (ideal
        victims).
        """
        wake = self.graph.invocation_distance(aid)
        steps = self._call_steps[aid]
        s = self.graph.step[aid]
        i = bisect_left(steps, s)
        if i >= len(steps):
            return float("inf")
        gap = float(steps[i] - s)
        return gap if gap > wake else wake

    # -- controller ------------------------------------------------------

    def start(self) -> None:
        self._controller_round(set(self.ready))

    def _controller_round(self, dirty: set[int]) -> None:
        """Re-cluster around ``dirty`` agents and dispatch what is ready."""
        clock = self._clock
        t0 = clock()
        self._cone_cache = None
        graph = self.graph
        visited: set[int] = set()
        clusters: list[tuple[int, list[int]]] = []
        component = graph.component_for
        exclude = self._exclude_hook
        is_blocked = graph.blocked_by
        ready = self.ready
        step = graph.step
        # Sorted iteration pins cluster discovery (and so dispatch and
        # virtual timing) to a deterministic order: sharded and single
        # controllers replay identically, set-hash layout never matters.
        for aid in sorted(dirty):
            if aid in visited or aid not in ready:
                continue
            cluster = component(aid, visited, exclude, True)
            for m in cluster:
                if is_blocked[m]:
                    break
            else:
                clusters.append((step[aid], cluster))
        t1 = clock()
        if self.config.num_workers == 0 and clusters:
            # Uncapped workers: every unblocked cluster dispatches this
            # instant, so the pending buckets are bypassed outright and
            # the whole round launches through one kernel event.
            launches: list[tuple[int, list[int], int, float]] = []
            batch: list[int] = []
            for s, cluster in clusters:
                for m in cluster:
                    ready.discard(m)
                batch += cluster
            # One batched transition for the whole round: clusters are
            # disjoint and the per-agent checks are independent, so
            # this is equivalent to per-cluster calls — minus the per-
            # cluster facade/validation overhead at million-agent scale.
            graph.mark_running(batch)
            for s, cluster in clusters:
                self._pending_seq += 1
                self._admit(s, cluster, launches)
            self._kernel_events += 1
            self.kernel.call_in(self.config.overhead.controller_dispatch,
                                self._launch_batch, launches)
        else:
            for s, cluster in clusters:
                self._enqueue_cluster(s, cluster)
            self._fill_workers()
        t2 = clock()
        stats = self.stats
        stats.time_clustering += t1 - t0
        stats.time_dispatch += t2 - t1
        stats.controller_rounds += 1
        self._check_progress()

    def _collect_cluster(self, seed_aid: int, visited: set[int]) -> list[int]:
        """Fresh (uncached) coupling component around ``seed_aid``."""
        return self.graph.build_component(seed_aid, visited,
                                          self._exclude_hook, True)

    def _cluster_priority(self, step: int, cluster: list[int]) -> float:
        """Serving-side request priority for a cluster (lower = sooner).

        Interactive clusters — and any cluster inside an interactive
        agent's dependency cone, which could block it within the
        configured horizon — preempt everything (§6 hybrid deployment);
        otherwise step order under priority scheduling, arrival order
        without.
        """
        if self._interactive and self.config.interactive_boost \
                and self._in_interactive_cone(cluster):
            return -1e9 + step
        if self.config.priority:
            return float(step)
        return float(self._pending_seq)

    def _dispatch_key(self, step: int, cluster: list[int]) -> int:
        """Integer dispatch-bucket key mirroring ``_cluster_priority``."""
        if self._interactive and self.config.interactive_boost \
                and self._in_interactive_cone(cluster):
            return step - _INTERACTIVE_BOOST
        if self.config.priority:
            return step
        return 0  # FIFO: one bucket, arrival order

    def _cone_agents(self) -> set[int]:
        """Agents within the interactive dependency cone, via the index.

        One spatial query per interactive agent per controller round
        replaces the O(|interactive| x |cluster|) pairwise scan that
        every enqueue/dispatch used to pay.
        """
        cone = self._cone_cache
        if cone is None:
            radius = self.rules.block_threshold(
                self.config.interactive_horizon)
            cone = set(self._interactive)
            graph = self.graph
            for iid in self._interactive:
                cone.update(graph.index.query(graph.pos[iid], radius))
            self._cone_cache = cone
        return cone

    def _in_interactive_cone(self, cluster: list[int]) -> bool:
        return not self._cone_agents().isdisjoint(cluster)

    def _enqueue_cluster(self, step: int, cluster: list[int]) -> None:
        for m in cluster:
            self.ready.discard(m)
        self.graph.mark_running(cluster)
        self._pending_seq += 1
        self._pending.push(self._dispatch_key(step, cluster),
                           (cluster, step))

    def _admit(self, step: int, cluster: list[int],
               launches: list[tuple[int, list[int], int, float]]) -> None:
        """Claim a worker slot for ``cluster`` and stage its launch."""
        self._busy_workers += 1
        self._running_clusters += 1
        stats = self.stats
        stats.clusters_dispatched += 1
        stats.cluster_size_sum += len(cluster)
        cid = self._cluster_seq = self._cluster_seq + 1
        self._running_info[cid] = [len(cluster), cluster, step]
        priority = self._cluster_priority(step, cluster) \
            if (self._interactive and self.config.interactive_boost) \
            else float(step)
        launches.append((cid, cluster, step, priority))

    def _fill_workers(self) -> None:
        """Dispatch pending clusters into free worker slots.

        Every cluster dispatched here shares the round's virtual
        instant, so the whole batch launches through a single kernel
        event instead of one per cluster.
        """
        cap = self.config.num_workers
        pending = self._pending
        launches: list[tuple[int, list[int], int, float]] = []
        while pending and (cap == 0 or self._busy_workers < cap):
            cluster, step = pending.pop()
            self._admit(step, cluster, launches)
        if launches:
            self._kernel_events += 1
            self.kernel.call_in(self.config.overhead.controller_dispatch,
                                self._launch_batch, launches)

    def _check_progress(self) -> None:
        if (not self._running_clusters and not self._pending
                and not self._round_pending
                and len(self.done) < self.graph.n_agents):
            from ..faults import scheduler_diagnostics
            blocked = {aid: sorted(self.graph.blockers_of(aid))
                       for aid in sorted(self.ready)}
            running = sorted(
                aid for info in self._running_info.values()
                for aid in info[1])
            raise SchedulingError(
                "scheduler stalled\n  " + scheduler_diagnostics(
                    done=len(self.done), total=self.graph.n_agents,
                    blocked=blocked, running=running,
                    ready_depth=len(self._pending),
                    ack_depth=len(self._round_pending)))

    # -- workers -----------------------------------------------------------

    def _launch_batch(self,
                      launches: list[tuple[int, list[int], int, float]]
                      ) -> None:
        run_cluster = self.executor.run_cluster
        task_done = self._task_done
        for cid, cluster, step, priority in launches:
            def done(a: int, s: int, cid: int = cid) -> None:
                task_done(cid, a, s)

            run_cluster(cluster, step, priority, done)

    def _task_done(self, cid: int, aid: int, step: int) -> None:
        self.stats.tasks_completed += 1
        info = self._running_info[cid]
        info[0] -= 1
        if info[0] == 0:
            del self._running_info[cid]
            self._queue_commit(info[2], info[1])

    def _queue_commit(self, step: int, members: list[int],
                      rows: np.ndarray | None = None) -> None:
        """Buffer a finished cluster for its instant's controller round.

        Clusters finishing at the same virtual instant share one round
        event at ``now + cluster_commit``: the round retires the whole
        batch through one graph commit, then dispatches. ``rows`` is an
        optional pre-gathered ``(len(members), 2)`` next-position array
        (the speculative driver hands over its per-record row snapshot
        so retirement never re-reads the trace store).
        """
        due = self.kernel.now + self.config.overhead.cluster_commit
        batch = self._round_pending.get(due)
        if batch is None:
            self._round_pending[due] = batch = []
            self._kernel_events += 1
            self.kernel.call_in(self.config.overhead.cluster_commit,
                                self._controller_round_event, due)
        batch.append((step, members, rows))

    def _controller_round_event(self, due: float) -> None:
        batch = self._round_pending.pop(due)
        self._running_clusters -= len(batch)
        self._busy_workers -= len(batch)
        self._retire_commits(batch)
        self._flush_controller_round()

    def _retire_commits(self,
                        batch: list[tuple[int, list[int], np.ndarray | None]]
                        ) -> None:
        """Apply every cluster of the batch in one vectorized graph commit."""
        t0 = self._clock()
        n = self.graph.n_agents
        members_all: list[int] = []
        for _, members, _ in batch:
            members_all += members
        graph = self.graph
        if all(snap is None for _, _, snap in batch):
            # One flat fancy-index gather from the step-major store
            # replaces the per-member position dict of the tuple-list era.
            rows: list[int] = []
            for step, members, _ in batch:
                base = (step + 1) * n
                for aid in members:
                    rows.append(base + aid)
            pos_rows = self._pos_flat[rows]
        else:
            # Speculative retirements carry their launch-time row
            # snapshots; stitch per-cluster arrays in batch order.
            parts = [snap if snap is not None else
                     self._pos_flat[[(step + 1) * n + aid
                                     for aid in members]]
                     for step, members, snap in batch]
            pos_rows = parts[0] if len(parts) == 1 else np.concatenate(parts)
        result = graph.commit(members_all, pos_rows)
        spread = graph.max_step - graph.min_step
        if spread > self.stats.max_step_spread:
            self.stats.max_step_spread = spread
        if self.config.validate_causality:
            graph.validate()
        dirty = self._dirty_accum
        n_steps = self.n_steps
        if self._interactive:
            now = self.kernel.now
            for aid in members_all:
                if aid in self._interactive:
                    self.interactive_latencies.append(
                        now - self._last_commit_time[aid])
                    self._last_commit_time[aid] = now
        done = self.done
        ready = self.ready
        step = graph.step
        for aid in members_all:
            if step[aid] >= n_steps:
                done.add(aid)
            else:
                ready.add(aid)
                dirty.add(aid)
        # Newly unblocked waiters plus ready agents near the movers.
        for aid in result.unblocked:
            if aid in ready:
                dirty.add(aid)
        for aid in result.neighbors:
            if aid in ready:
                dirty.add(aid)
        self.stats.time_graph += self._clock() - t0

    def _flush_controller_round(self) -> None:
        dirty, self._dirty_accum = self._dirty_accum, set()
        self._controller_round(dirty)

    def _sync_stats(self) -> None:
        """Fold the graph's counters into the stats record.

        Called at end-of-run instead of every round: the counters live
        on the graph, so per-round mirroring was pure hot-loop cost.
        """
        graph = self.graph
        stats = self.stats
        stats.blocked_events = graph.blocked_events
        stats.unblock_events = graph.unblock_events
        stats.extra["cluster_cache_hits"] = graph.comp_hits
        stats.extra["cluster_cache_misses"] = graph.comp_misses
        stats.extra["graph_scans"] = graph.scans
        stats.extra["graph_scan_skips"] = graph.scan_skips
        stats.extra["graph_near_checks"] = graph.near_checks
        stats.extra["graph_wake_skips"] = graph.wake_skips
        stats.extra["graph_fallback_scans"] = graph.fallback_scans
        stats.extra["graph_scanned_slots"] = graph.scanned_slots
        stats.extra["shards"] = getattr(graph, "n_shards", 1)
        stats.extra["kernel_events"] = self._kernel_events
        engine_faults = getattr(self.engine, "fault_stats", None)
        if engine_faults is not None:
            stats.extra.update(engine_faults())

    def finished(self) -> bool:
        self._sync_stats()
        return len(self.done) == self.graph.n_agents
