"""Distance spaces for the dependency rules.

The paper derives its rules for Euclidean distance but notes (§6) that
they extend to any space with a notion of distance bounding information
propagation — e.g. hop distance in a social network. Everything in
:mod:`repro.core` works against this small protocol.

Two capability flags let the scheduler pick its fast paths per space:

* ``grid_bucketing`` — positions are 2D numeric coordinates and
  :meth:`Space.bucket` is plain floor division, so the spatial index can
  walk coordinate windows and the dependency graph can vectorize commit
  bookkeeping over numpy position arrays;
* ``cell_bucketing`` — :meth:`Space.bucket` returns 2D *integer cells
  whose per-axis difference lower-bounds the true distance* (cells ``k``
  and ``k + dc`` on any axis imply ``dist >= (dc - 1) * cell``). This is
  the only property the step-bucketed blocker index and the slack/near/
  wake machinery in :mod:`repro.core.dependency_graph` need, so any
  space providing it — coordinate grids trivially, :class:`GraphSpace`
  via landmark BFS levels — gets the zero-rescan scheduler instead of
  the linear fallback scan.
"""

from __future__ import annotations

import math
from collections import OrderedDict, deque
from typing import Hashable, Iterable, Protocol

import numpy as np

from ..errors import ConfigError

Position = Hashable


class Space(Protocol):
    """A metric over agent positions.

    Spaces may additionally provide optional performance hooks the
    :class:`~repro.core.clustering.SpatialIndex` and the dependency
    graph's batched commit path exploit:

    * ``within(a, b, radius) -> bool`` — radius membership without
      computing the distance itself (Euclidean skips the sqrt);
    * ``within_mat(dx, dy, radius) -> bool ndarray`` — the same
      predicate over numpy coordinate-delta arrays, used to test a
      whole cluster against its candidate neighborhood in one
      vectorized pass (coordinate spaces only);
    * ``grid_bucketing = True`` — declares 2D numeric coordinates with
      floor-division cells, enabling precomputed neighbor-cell offsets
      and the vectorized commit paths;
    * ``cell_bucketing = True`` — declares that :meth:`bucket` returns
      2D integer cells satisfying the Lipschitz lower bound
      ``dist(a, b) >= (max_axis_cell_diff - 1) * cell``, enabling the
      step-bucketed blocker index (see module docstring).
    """

    def dist(self, a: Position, b: Position) -> float:
        """Distance between two positions."""
        ...

    def bucket(self, pos: Position, cell: float) -> tuple:
        """A coarse hash cell for ``pos`` used by the spatial index, such
        that positions within distance ``d`` are within
        ``ceil(d / cell)`` cells of each other in every axis. Spaces that
        cannot offer this return ``()`` (forcing linear scans)."""
        ...

    def bucket_range(self, pos: Position, radius: float,
                     cell: float) -> Iterable[tuple]:
        """All cells that may contain positions within ``radius``."""
        ...


class _Grid2D:
    """Shared bucketing for 2D coordinate spaces."""

    #: Cells are 2D integer coordinates: the spatial index may walk a
    #: precomputed neighbor-offset stencil instead of ``bucket_range``.
    grid_bucketing = True
    #: Coordinate cells trivially satisfy the Lipschitz lower bound the
    #: step-bucketed blocker index needs.
    cell_bucketing = True

    @staticmethod
    def bucket(pos, cell: float) -> tuple:
        return (int(pos[0] // cell), int(pos[1] // cell))

    @staticmethod
    def bucket_range(pos, radius: float, cell: float):
        span = int(math.ceil(radius / cell))
        cx, cy = int(pos[0] // cell), int(pos[1] // cell)
        for dx in range(-span, span + 1):
            for dy in range(-span, span + 1):
                yield (cx + dx, cy + dy)


class EuclideanSpace(_Grid2D):
    """L2 distance on 2D coordinates (the paper's default)."""

    def dist(self, a, b) -> float:
        return math.hypot(a[0] - b[0], a[1] - b[1])

    def within(self, a, b, radius: float) -> bool:
        dx = a[0] - b[0]
        dy = a[1] - b[1]
        return dx * dx + dy * dy <= radius * radius

    @staticmethod
    def within_mat(dx, dy, radius: float):
        return dx * dx + dy * dy <= radius * radius


class ChebyshevSpace(_Grid2D):
    """L-infinity distance (square perception windows on grids)."""

    def dist(self, a, b) -> float:
        return float(max(abs(a[0] - b[0]), abs(a[1] - b[1])))

    def within(self, a, b, radius: float) -> bool:
        return abs(a[0] - b[0]) <= radius and abs(a[1] - b[1]) <= radius

    @staticmethod
    def within_mat(dx, dy, radius: float):
        return np.maximum(np.abs(dx), np.abs(dy)) <= radius


class ManhattanSpace(_Grid2D):
    """L1 distance (4-connected grid movement)."""

    def dist(self, a, b) -> float:
        return float(abs(a[0] - b[0]) + abs(a[1] - b[1]))

    def within(self, a, b, radius: float) -> bool:
        return abs(a[0] - b[0]) + abs(a[1] - b[1]) <= radius

    @staticmethod
    def within_mat(dx, dy, radius: float):
        return np.abs(dx) + np.abs(dy) <= radius


class GraphSpace:
    """Hop distance on an arbitrary graph (the §6 social-network case).

    Positions are node ids (any hashable). Distances are BFS hop counts,
    cached per source; nodes in different connected components are at
    infinite distance (they can never couple or block).

    Bucketing comes from **landmark BFS levels**: per connected
    component, two landmarks are chosen deterministically (the first
    node in insertion order, then the farthest node from it — a double
    BFS sweep), and every node's pair of levels ``(d(L0, v), d(L1, v))``
    serves as integer pseudo-coordinates. Levels are 1-Lipschitz in hop
    distance (``|d(L, a) - d(L, b)| <= d(a, b)`` by the triangle
    inequality), so the cells ``level // cell`` satisfy exactly the
    lower-bound property (``cell_bucketing``) the step-bucketed blocker
    index requires — graph worlds ride the same zero-rescan scheduler as
    coordinate grids. Components are kept apart by offsetting the first
    axis per component, which is sound because cross-component distance
    is infinite. Construct with ``bucketing=False`` to force the legacy
    single-bucket linear scans (the conservative reference path the
    fuzz tests compare against).
    """

    grid_bucketing = False

    #: Default bound on the per-source BFS distance cache (sources kept
    #: live at once; an LRU so million-node graphs cannot accumulate one
    #: full distance field per node ever queried).
    DIST_CACHE_SIZE = 4096

    def __init__(self, adjacency: dict[Hashable, Iterable[Hashable]],
                 bucketing: bool = True,
                 dist_cache_size: int | None = None) -> None:
        self._adj = {node: tuple(neigh) for node, neigh in adjacency.items()}
        for node, neigh in self._adj.items():
            for other in neigh:
                if other not in self._adj:
                    raise ConfigError(
                        f"edge {node!r} -> {other!r} references a node "
                        f"missing from the adjacency")
        self._n = len(self._adj)
        #: LRU of per-source BFS distance fields, bounded so memory
        #: stays O(cache_size * n) regardless of how many distinct
        #: sources the scheduler touches over a long run.
        self._cache: "OrderedDict[Hashable, dict[Hashable, int]]" = \
            OrderedDict()
        self._cache_cap = max(1, int(self.DIST_CACHE_SIZE
                                     if dist_cache_size is None
                                     else dist_cache_size))
        #: One-slot memo for consecutive same-source distance lookups.
        self._last_src: Hashable = object()
        self._last_field: dict[Hashable, int] = {}
        #: node -> (level from landmark 0, level from landmark 1,
        #: component index); empty when bucketing is off.
        self._levels: dict[Hashable, tuple[int, int, int]] = {}
        #: Dense node-id mirror of ``_levels`` (nodes are ``(id, 0)``
        #: pairs with small non-negative int ids, the trace position
        #: convention): row ``id`` holds (l0, l1, comp), -1 = unknown.
        #: Lets the dependency graph's batched commits derive cells for
        #: a whole batch in one :meth:`bucket_mat` call.
        self._larr: np.ndarray | None = None
        self.cell_bucketing = False
        #: True when :meth:`bucket_mat` is usable (dense int node ids).
        self.dense_node_cells = False
        if bucketing and self._adj:
            self._build_landmarks()
            self.cell_bucketing = True
            self._build_dense_levels()

    # -- construction -------------------------------------------------------

    def _bfs_levels(self, source: Hashable) -> dict[Hashable, int]:
        dist = {source: 0}
        queue = deque([source])
        adj = self._adj
        while queue:
            node = queue.popleft()
            base = dist[node] + 1
            for neigh in adj[node]:
                if neigh not in dist:
                    dist[neigh] = base
                    queue.append(neigh)
        return dist

    def _build_landmarks(self) -> None:
        """Two-landmark levels per connected component (double BFS sweep).

        Deterministic: component seeds follow the adjacency's insertion
        order; the second landmark is the first BFS-discovered node at
        maximum level from the first.
        """
        seen: set[Hashable] = set()
        comp = 0
        for node in self._adj:
            if node in seen:
                continue
            l0 = self._bfs_levels(node)
            far = max(l0, key=l0.get)  # first max in BFS insertion order
            l1 = self._bfs_levels(far)
            for member, level in l0.items():
                self._levels[member] = (level, l1[member], comp)
            seen.update(l0)
            comp += 1
        self._ncomp = comp

    def _build_dense_levels(self) -> None:
        """Mirror the landmark levels into an id-indexed numpy table.

        Only when every node follows the trace position convention —
        a ``(id, 0)`` pair with a reasonably dense non-negative int id —
        so :meth:`bucket_mat` can serve vectorized commit bookkeeping.
        """
        ids = []
        for node in self._levels:
            if (not isinstance(node, tuple) or len(node) != 2
                    or node[1] != 0 or isinstance(node[0], bool)
                    or not isinstance(node[0], int) or node[0] < 0):
                return
            ids.append(node[0])
        if not ids or max(ids) >= 4 * len(ids) + 64:
            return
        larr = np.full((max(ids) + 1, 3), -1, dtype=np.int64)
        for node, (l0, l1, comp) in self._levels.items():
            larr[node[0]] = (l0, l1, comp)
        self._larr = larr
        self.dense_node_cells = True

    def bucket_mat(self, node_ids: np.ndarray, cell: float
                   ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`bucket` over an int array of node ids.

        Returns the two cell-coordinate columns for ``(id, 0)``
        positions; exact elementwise match with the scalar
        :meth:`bucket`. Only available when ``dense_node_cells``.
        """
        nodes = np.asarray(node_ids)
        n_rows = len(self._larr)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= n_rows):
            bad = nodes[(nodes < 0) | (nodes >= n_rows)][0]
            raise ConfigError(f"unknown node {(int(bad), 0)!r}")
        la = self._larr[nodes]
        comp = la[:, 2]
        if comp.min() < 0:
            bad = nodes[comp < 0][0]
            raise ConfigError(f"unknown node {(int(bad), 0)!r}")
        span = self._span(cell)
        b0 = comp * span + np.floor_divide(la[:, 0], cell).astype(np.int64)
        b1 = np.floor_divide(la[:, 1], cell).astype(np.int64)
        return b0, b1

    def _level_of(self, pos: Hashable) -> tuple[int, int, int]:
        try:
            return self._levels[pos]
        except KeyError:
            raise ConfigError(f"unknown node {pos!r}") from None

    # -- metric -------------------------------------------------------------

    def _distances_from(self, source: Hashable) -> dict[Hashable, int]:
        # Scan loops query many targets from one source back-to-back:
        # the one-slot memo skips the LRU bookkeeping entirely there.
        if source == self._last_src:
            return self._last_field
        cache = self._cache
        cached = cache.get(source)
        if cached is not None:
            cache.move_to_end(source)
            self._last_src = source
            self._last_field = cached
            return cached
        if source not in self._adj:
            raise ConfigError(f"unknown node {source!r}")
        dist = self._bfs_levels(source)
        cache[source] = dist
        if len(cache) > self._cache_cap:
            cache.popitem(last=False)
        self._last_src = source
        self._last_field = dist
        return dist

    def dist(self, a, b) -> float:
        if b not in self._adj:
            raise ConfigError(f"unknown node {b!r}")
        return float(self._distances_from(a).get(b, math.inf))

    def within(self, a, b, radius: float) -> bool:
        if self._levels:
            la = self._level_of(a)
            lb = self._level_of(b)
            if la[2] != lb[2]:
                return False  # different components: infinite distance
            if (abs(la[0] - lb[0]) > radius
                    or abs(la[1] - lb[1]) > radius):
                return False  # landmark levels already certify dist > r
        return self.dist(a, b) <= radius

    # -- bucketing ----------------------------------------------------------

    def _span(self, cell: float) -> int:
        """Cells per component band on the offset axis (levels < n)."""
        return int(self._n / cell) + 2

    def bucket(self, pos, cell: float) -> tuple:
        if not self._levels:
            return ()
        l0, l1, comp = self._level_of(pos)
        return (comp * self._span(cell) + int(l0 // cell), int(l1 // cell))

    def bucket_range(self, pos, radius: float, cell: float):
        if not self._levels:
            yield ()
            return
        l0, l1, comp = self._level_of(pos)
        span = self._span(cell)
        base = comp * span
        # Anything within `radius` shares the component, so only this
        # component's band is yielded; level windows clamp to the band.
        b0_lo = max(0, int((l0 - radius) // cell))
        b0_hi = min(span - 2, int((l0 + radius) // cell))
        b1_lo = max(0, int((l1 - radius) // cell))
        b1_hi = min(span - 2, int((l1 + radius) // cell))
        for b0 in range(b0_lo, b0_hi + 1):
            for b1 in range(b1_lo, b1_hi + 1):
                yield (base + b0, b1)


def space_for(metric: str, **kwargs) -> Space:
    """Factory keyed by :attr:`DependencyConfig.metric`.

    ``metric="graph"`` requires ``adjacency=...`` and accepts
    ``bucketing=False`` to opt out of landmark bucketing.
    """
    if metric == "euclidean":
        return EuclideanSpace()
    if metric == "chebyshev":
        return ChebyshevSpace()
    if metric == "manhattan":
        return ManhattanSpace()
    if metric == "graph":
        adjacency = kwargs.get("adjacency")
        if adjacency is None:
            raise ConfigError("graph metric requires adjacency=...")
        return GraphSpace(adjacency,
                          bucketing=kwargs.get("bucketing", True))
    raise ConfigError(f"unknown metric {metric!r}")
