"""Distance spaces for the dependency rules.

The paper derives its rules for Euclidean distance but notes (§6) that
they extend to any space with a notion of distance bounding information
propagation — e.g. hop distance in a social network. Everything in
:mod:`repro.core` works against this small protocol.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Hashable, Iterable, Protocol

import numpy as np

from ..errors import ConfigError

Position = Hashable


class Space(Protocol):
    """A metric over agent positions.

    Spaces may additionally provide optional performance hooks the
    :class:`~repro.core.clustering.SpatialIndex` and the dependency
    graph's batched commit path exploit:

    * ``within(a, b, radius) -> bool`` — radius membership without
      computing the distance itself (Euclidean skips the sqrt);
    * ``within_mat(dx, dy, radius) -> bool ndarray`` — the same
      predicate over numpy coordinate-delta arrays, used to test a
      whole cluster against its candidate neighborhood in one
      vectorized pass;
    * ``grid_bucketing = True`` — declares that :meth:`bucket` returns
      2D integer cells, enabling precomputed neighbor-cell offsets.
    """

    def dist(self, a: Position, b: Position) -> float:
        """Distance between two positions."""
        ...

    def bucket(self, pos: Position, cell: float) -> tuple:
        """A coarse hash cell for ``pos`` used by the spatial index, such
        that positions within distance ``d`` are within
        ``ceil(d / cell)`` cells of each other in every axis. Spaces that
        cannot offer this return ``()`` (forcing linear scans)."""
        ...

    def bucket_range(self, pos: Position, radius: float,
                     cell: float) -> Iterable[tuple]:
        """All cells that may contain positions within ``radius``."""
        ...


class _Grid2D:
    """Shared bucketing for 2D coordinate spaces."""

    #: Cells are 2D integer coordinates: the spatial index may walk a
    #: precomputed neighbor-offset stencil instead of ``bucket_range``.
    grid_bucketing = True

    @staticmethod
    def bucket(pos, cell: float) -> tuple:
        return (int(pos[0] // cell), int(pos[1] // cell))

    @staticmethod
    def bucket_range(pos, radius: float, cell: float):
        span = int(math.ceil(radius / cell))
        cx, cy = int(pos[0] // cell), int(pos[1] // cell)
        for dx in range(-span, span + 1):
            for dy in range(-span, span + 1):
                yield (cx + dx, cy + dy)


class EuclideanSpace(_Grid2D):
    """L2 distance on 2D coordinates (the paper's default)."""

    def dist(self, a, b) -> float:
        return math.hypot(a[0] - b[0], a[1] - b[1])

    def within(self, a, b, radius: float) -> bool:
        dx = a[0] - b[0]
        dy = a[1] - b[1]
        return dx * dx + dy * dy <= radius * radius

    @staticmethod
    def within_mat(dx, dy, radius: float):
        return dx * dx + dy * dy <= radius * radius


class ChebyshevSpace(_Grid2D):
    """L-infinity distance (square perception windows on grids)."""

    def dist(self, a, b) -> float:
        return float(max(abs(a[0] - b[0]), abs(a[1] - b[1])))

    def within(self, a, b, radius: float) -> bool:
        return abs(a[0] - b[0]) <= radius and abs(a[1] - b[1]) <= radius

    @staticmethod
    def within_mat(dx, dy, radius: float):
        return np.maximum(np.abs(dx), np.abs(dy)) <= radius


class ManhattanSpace(_Grid2D):
    """L1 distance (4-connected grid movement)."""

    def dist(self, a, b) -> float:
        return float(abs(a[0] - b[0]) + abs(a[1] - b[1]))

    def within(self, a, b, radius: float) -> bool:
        return abs(a[0] - b[0]) + abs(a[1] - b[1]) <= radius

    @staticmethod
    def within_mat(dx, dy, radius: float):
        return np.abs(dx) + np.abs(dy) <= radius


class GraphSpace:
    """Hop distance on an arbitrary graph (the §6 social-network case).

    Positions are node ids. Distances are BFS hop counts, cached per
    source. No spatial bucketing is possible in general, so the index
    falls back to linear scans — fine for the social-simulation scales
    this extension targets.
    """

    def __init__(self, adjacency: dict[Hashable, Iterable[Hashable]]) -> None:
        self._adj = {node: list(neigh) for node, neigh in adjacency.items()}
        self._cache: dict[Hashable, dict[Hashable, int]] = {}

    def _distances_from(self, source: Hashable) -> dict[Hashable, int]:
        cached = self._cache.get(source)
        if cached is not None:
            return cached
        if source not in self._adj:
            raise ConfigError(f"unknown node {source!r}")
        dist = {source: 0}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for neigh in self._adj[node]:
                if neigh not in dist:
                    dist[neigh] = dist[node] + 1
                    queue.append(neigh)
        self._cache[source] = dist
        return dist

    def dist(self, a, b) -> float:
        return float(self._distances_from(a).get(b, math.inf))

    def bucket(self, pos, cell: float) -> tuple:
        return ()

    def bucket_range(self, pos, radius: float, cell: float):
        yield ()


def space_for(metric: str, **kwargs) -> Space:
    """Factory keyed by :attr:`DependencyConfig.metric`."""
    if metric == "euclidean":
        return EuclideanSpace()
    if metric == "chebyshev":
        return ChebyshevSpace()
    if metric == "manhattan":
        return ManhattanSpace()
    if metric == "graph":
        adjacency = kwargs.get("adjacency")
        if adjacency is None:
            raise ConfigError("graph metric requires adjacency=...")
        return GraphSpace(adjacency)
    raise ConfigError(f"unknown metric {metric!r}")
