"""Distance spaces for the dependency rules.

The paper derives its rules for Euclidean distance but notes (§6) that
they extend to any space with a notion of distance bounding information
propagation — e.g. hop distance in a social network. Everything in
:mod:`repro.core` works against this small protocol.

Two capability flags let the scheduler pick its fast paths per space:

* ``grid_bucketing`` — positions are 2D numeric coordinates and
  :meth:`Space.bucket` is plain floor division, so the spatial index can
  walk coordinate windows and the dependency graph can vectorize commit
  bookkeeping over numpy position arrays;
* ``cell_bucketing`` — :meth:`Space.bucket` returns 2D *integer cells
  whose per-axis difference lower-bounds the true distance* (cells ``k``
  and ``k + dc`` on any axis imply ``dist >= (dc - 1) * cell``). This is
  the only property the step-bucketed blocker index and the slack/near/
  wake machinery in :mod:`repro.core.dependency_graph` need, so any
  space providing it — coordinate grids trivially, :class:`GraphSpace`
  via landmark BFS levels — gets the zero-rescan scheduler instead of
  the linear fallback scan.
"""

from __future__ import annotations

import math
from collections import OrderedDict, deque
from typing import Hashable, Iterable, Protocol

import numpy as np

from ..errors import ConfigError

Position = Hashable


class Space(Protocol):
    """A metric over agent positions.

    Spaces may additionally provide optional performance hooks the
    :class:`~repro.core.clustering.SpatialIndex` and the dependency
    graph's batched commit path exploit:

    * ``within(a, b, radius) -> bool`` — radius membership without
      computing the distance itself (Euclidean skips the sqrt);
    * ``within_mat(dx, dy, radius) -> bool ndarray`` — the same
      predicate over numpy coordinate-delta arrays, used to test a
      whole cluster against its candidate neighborhood in one
      vectorized pass (coordinate spaces only);
    * ``grid_bucketing = True`` — declares 2D numeric coordinates with
      floor-division cells, enabling precomputed neighbor-cell offsets
      and the vectorized commit paths;
    * ``cell_bucketing = True`` — declares that :meth:`bucket` returns
      2D integer cells satisfying the Lipschitz lower bound
      ``dist(a, b) >= (max_axis_cell_diff - 1) * cell``, enabling the
      step-bucketed blocker index (see module docstring).
    """

    def dist(self, a: Position, b: Position) -> float:
        """Distance between two positions."""
        ...

    def bucket(self, pos: Position, cell: float) -> tuple:
        """A coarse hash cell for ``pos`` used by the spatial index, such
        that positions within distance ``d`` are within
        ``ceil(d / cell)`` cells of each other in every axis. Spaces that
        cannot offer this return ``()`` (forcing linear scans)."""
        ...

    def bucket_range(self, pos: Position, radius: float,
                     cell: float) -> Iterable[tuple]:
        """All cells that may contain positions within ``radius``."""
        ...


class _Grid2D:
    """Shared bucketing for 2D coordinate spaces."""

    #: Cells are 2D integer coordinates: the spatial index may walk a
    #: precomputed neighbor-offset stencil instead of ``bucket_range``.
    grid_bucketing = True
    #: Coordinate cells trivially satisfy the Lipschitz lower bound the
    #: step-bucketed blocker index needs.
    cell_bucketing = True

    @staticmethod
    def bucket(pos, cell: float) -> tuple:
        return (int(pos[0] // cell), int(pos[1] // cell))

    @staticmethod
    def bucket_range(pos, radius: float, cell: float):
        span = int(math.ceil(radius / cell))
        cx, cy = int(pos[0] // cell), int(pos[1] // cell)
        for dx in range(-span, span + 1):
            for dy in range(-span, span + 1):
                yield (cx + dx, cy + dy)


class EuclideanSpace(_Grid2D):
    """L2 distance on 2D coordinates (the paper's default)."""

    def dist(self, a, b) -> float:
        return math.hypot(a[0] - b[0], a[1] - b[1])

    def within(self, a, b, radius: float) -> bool:
        dx = a[0] - b[0]
        dy = a[1] - b[1]
        return dx * dx + dy * dy <= radius * radius

    @staticmethod
    def within_mat(dx, dy, radius: float):
        return dx * dx + dy * dy <= radius * radius


class ChebyshevSpace(_Grid2D):
    """L-infinity distance (square perception windows on grids)."""

    def dist(self, a, b) -> float:
        return float(max(abs(a[0] - b[0]), abs(a[1] - b[1])))

    def within(self, a, b, radius: float) -> bool:
        return abs(a[0] - b[0]) <= radius and abs(a[1] - b[1]) <= radius

    @staticmethod
    def within_mat(dx, dy, radius: float):
        return np.maximum(np.abs(dx), np.abs(dy)) <= radius


class ManhattanSpace(_Grid2D):
    """L1 distance (4-connected grid movement)."""

    def dist(self, a, b) -> float:
        return float(abs(a[0] - b[0]) + abs(a[1] - b[1]))

    def within(self, a, b, radius: float) -> bool:
        return abs(a[0] - b[0]) + abs(a[1] - b[1]) <= radius

    @staticmethod
    def within_mat(dx, dy, radius: float):
        return np.abs(dx) + np.abs(dy) <= radius


class GraphSpace:
    """Hop distance on an arbitrary graph (the §6 social-network case).

    Positions are node ids (any hashable). Distances are BFS hop counts,
    cached per source; nodes in different connected components are at
    infinite distance (they can never couple or block).

    Bucketing comes from **landmark BFS levels**: per connected
    component, each axis gets a deterministic *seed set* and every
    node's pair of levels ``(min-dist to seeds0, min-dist to seeds1)``
    serves as integer pseudo-coordinates. Small components (at most
    ``SAMPLED_COMPONENT_MIN`` nodes) use exact two-landmark seeds —
    the first node in insertion order, then the farthest node from it
    (a double BFS sweep). Larger components switch to **sampled
    landmarks**: ``LANDMARK_SAMPLES`` seeds per axis, strided
    deterministically through the component's BFS discovery order, so
    the level build stays two multi-source BFS passes (O(edges))
    regardless of component size. Either way each level function is a
    min of 1-Lipschitz functions (``|d(L, a) - d(L, b)| <= d(a, b)``
    by the triangle inequality) and therefore 1-Lipschitz itself, so
    the cells ``level // cell`` satisfy exactly the lower-bound
    property (``cell_bucketing``) the step-bucketed blocker index
    requires — graph worlds ride the same zero-rescan scheduler as
    coordinate grids, including single million-node components.
    Components are kept apart by offsetting the first axis per
    component, which is sound because cross-component distance is
    infinite. Nodes following the dense ``(id, 0)`` trace convention
    store their levels only in an id-indexed numpy table (no per-node
    dict of tuples — the memory that matters at 1M nodes). Construct
    with ``bucketing=False`` to force the legacy single-bucket linear
    scans (the conservative reference path the fuzz tests compare
    against).
    """

    grid_bucketing = False

    #: Default bound on the per-source BFS distance cache (sources kept
    #: live at once; an LRU so million-node graphs cannot accumulate one
    #: full distance field per node ever queried).
    DIST_CACHE_SIZE = 4096

    #: Total cached distance *entries* across sources: the effective
    #: source cap is ``min(DIST_CACHE_SIZE, DIST_CACHE_ENTRIES // n)``,
    #: so a 240-node world keeps thousands of fields while a
    #: million-node one keeps a handful — memory stays bounded either
    #: way. Hot-path distance checks use :meth:`dist_within` (bounded
    #: BFS) and rarely touch full fields on large graphs.
    DIST_CACHE_ENTRIES = 4_000_000

    #: Components larger than this use sampled multi-source landmark
    #: seeds; smaller ones keep the exact first/farthest pair.
    SAMPLED_COMPONENT_MIN = 4096

    #: Seeds per axis for sampled components.
    LANDMARK_SAMPLES = 16

    def __init__(self, adjacency: dict[Hashable, Iterable[Hashable]],
                 bucketing: bool = True,
                 dist_cache_size: int | None = None,
                 sampled_component_min: int | None = None) -> None:
        self._adj = {node: tuple(neigh) for node, neigh in adjacency.items()}
        for node, neigh in self._adj.items():
            for other in neigh:
                if other not in self._adj:
                    raise ConfigError(
                        f"edge {node!r} -> {other!r} references a node "
                        f"missing from the adjacency")
        self._n = len(self._adj)
        #: LRU of per-source BFS distance fields, bounded so memory
        #: stays O(cache_size * n) regardless of how many distinct
        #: sources the scheduler touches over a long run.
        self._cache: "OrderedDict[Hashable, dict[Hashable, int]]" = \
            OrderedDict()
        if dist_cache_size is not None:
            self._cache_cap = max(1, int(dist_cache_size))
        else:
            # Refined after landmark construction: a full BFS field is
            # component-local, so the entry budget divides by the
            # largest field actually cached — not by n (a 20k-node
            # world of 240-node components keeps thousands of fields
            # in the same memory one 20k-node field would take).
            self._cache_cap = self.DIST_CACHE_SIZE
        self._sampled_min = int(self.SAMPLED_COMPONENT_MIN
                                if sampled_component_min is None
                                else sampled_component_min)
        #: One-slot memo for consecutive same-source distance lookups.
        self._last_src: Hashable = object()
        self._last_field: dict[Hashable, int] = {}
        #: LRU of radius-bounded BFS balls for :meth:`dist_within`,
        #: source -> (radius, field). Balls are O(local neighborhood)
        #: — independent of component size — so the cache holds
        #: thousands of live sources where full fields would thrash;
        #: eviction is by total stored entries, not source count, so
        #: memory stays bounded whatever the ball sizes are.
        self._balls: \
            "OrderedDict[Hashable, tuple[float, dict[Hashable, int]]]" \
            = OrderedDict()
        self._ball_entries = 0
        #: Adaptive full-field mode for the ball cache. Small
        #: components start with whole-component fields (one BFS serves
        #: every later cap). If the *live* source population outruns
        #: the entry budget the LRU would cycle — every probe a fresh
        #: BFS — which is detected by counting evictions of full
        #: fields: once more full fields were evicted than the cache
        #: holds, demote to radius-capped balls for good.
        self._ball_full_ok = True
        self._full_evicts = 0
        #: One-slot alias of the most recently used ball: scan loops
        #: probe many targets from one source at one cap back-to-back.
        self._bnd_src: Hashable = object()
        self._bnd_cap: float = -1.0
        self._bnd_field: dict[Hashable, int] = {}
        #: node -> (level to seeds0, level to seeds1, component index)
        #: for non-dense node labels; dense ``(id, 0)`` nodes live only
        #: in ``_larr`` (row ``id`` holds (l0, l1, comp), -1 = unknown),
        #: which also serves the vectorized :meth:`bucket_mat`.
        self._levels: dict[Hashable, tuple[int, int, int]] = {}
        self._larr: np.ndarray | None = None
        #: Node count per component (landmark construction order) —
        #: :meth:`dist_within` sizes its ball-vs-full-field choice off
        #: this.
        self._comp_sizes: list[int] = []
        #: Size of the largest small component (exact-landmark regime)
        #: — the largest full BFS field :meth:`dist` will cache, which
        #: sizes the full-field LRU. Defaults to n when components are
        #: unknown.
        self._max_field = self._n
        self._has_levels = False
        self.cell_bucketing = False
        #: True when :meth:`bucket_mat` is usable (dense int node ids).
        self.dense_node_cells = False
        if bucketing and self._adj:
            self._build_landmarks()
            self.cell_bucketing = True
        if dist_cache_size is None:
            self._cache_cap = max(1, min(
                self.DIST_CACHE_SIZE,
                self.DIST_CACHE_ENTRIES // max(1, self._max_field)))

    # -- construction -------------------------------------------------------

    def _bfs_levels(self, source: Hashable) -> dict[Hashable, int]:
        dist = {source: 0}
        queue = deque([source])
        adj = self._adj
        while queue:
            node = queue.popleft()
            base = dist[node] + 1
            for neigh in adj[node]:
                if neigh not in dist:
                    dist[neigh] = base
                    queue.append(neigh)
        return dist

    def _multi_bfs_levels(self, seeds: list[Hashable]
                          ) -> dict[Hashable, int]:
        """Min-over-seeds BFS levels, one multi-source pass.

        The min of 1-Lipschitz functions is 1-Lipschitz, so sampled
        multi-seed levels satisfy the same ``(dc - 1) * cell`` lower
        bound as exact single-landmark levels.
        """
        dist: dict[Hashable, int] = {}
        queue: deque = deque()
        for seed in seeds:
            if seed not in dist:
                dist[seed] = 0
                queue.append(seed)
        adj = self._adj
        while queue:
            node = queue.popleft()
            base = dist[node] + 1
            for neigh in adj[node]:
                if neigh not in dist:
                    dist[neigh] = base
                    queue.append(neigh)
        return dist

    def _dense_id_rows(self) -> int:
        """Rows for the id-indexed level table (0 = not dense-eligible).

        Dense storage requires every node to follow the trace position
        convention — a ``(id, 0)`` pair with a reasonably dense
        non-negative int id.
        """
        hi = -1
        for node in self._adj:
            if (not isinstance(node, tuple) or len(node) != 2
                    or node[1] != 0 or isinstance(node[0], bool)
                    or not isinstance(node[0], int) or node[0] < 0):
                return 0
            if node[0] > hi:
                hi = node[0]
        if hi < 0 or hi >= 4 * self._n + 64:
            return 0
        return hi + 1

    def _build_landmarks(self) -> None:
        """Landmark levels per connected component.

        Deterministic: components follow the adjacency's insertion
        order. Small components take the exact double BFS sweep (first
        node, then the first BFS-discovered node at maximum level from
        it); components above ``sampled_component_min`` switch to
        strided samples of the BFS discovery order (axis 1 keeps the
        farthest node as its lead seed so the two axes stay
        de-correlated). Dense ``(id, 0)`` graphs write levels straight
        into the numpy table — no per-node dict — which is what keeps
        a single million-node component within memory budget.
        """
        dense_rows = self._dense_id_rows()
        larr = np.full((dense_rows, 3), -1, dtype=np.int64) \
            if dense_rows else None
        comp = 0
        small_sizes: list[int] = []
        comp_sizes = self._comp_sizes
        seen: set[Hashable] = set()
        for node in self._adj:
            if node in seen:
                continue
            l0 = self._bfs_levels(node)
            members = list(l0)  # BFS discovery order (insertion order)
            far = max(l0, key=l0.get)  # first max in discovery order
            comp_sizes.append(len(members))
            if len(members) <= self._sampled_min:
                small_sizes.append(len(members))
                levels0 = l0
                levels1 = self._bfs_levels(far)
            else:
                k = self.LANDMARK_SAMPLES
                stride = max(1, len(members) // k)
                seeds0 = members[::stride][:k]
                seeds1 = [far, *members[stride // 2::stride][:k - 1]]
                levels0 = self._multi_bfs_levels(seeds0)
                levels1 = self._multi_bfs_levels(seeds1)
            if larr is not None:
                count = len(levels0)
                ids0 = np.fromiter((m[0] for m in levels0),
                                   dtype=np.int64, count=count)
                larr[ids0, 0] = np.fromiter(levels0.values(),
                                            dtype=np.int64, count=count)
                larr[ids0, 2] = comp
                ids1 = np.fromiter((m[0] for m in levels1),
                                   dtype=np.int64, count=count)
                larr[ids1, 1] = np.fromiter(levels1.values(),
                                            dtype=np.int64, count=count)
            else:
                levels = self._levels
                for member, level in levels0.items():
                    levels[member] = (level, levels1[member], comp)
            seen.update(l0)
            comp += 1
        self._max_field = max(small_sizes) if small_sizes else self._n
        self._ncomp = comp
        self._larr = larr
        self.dense_node_cells = larr is not None
        self._has_levels = True

    def bucket_mat(self, node_ids: np.ndarray, cell: float
                   ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`bucket` over an int array of node ids.

        Returns the two cell-coordinate columns for ``(id, 0)``
        positions; exact elementwise match with the scalar
        :meth:`bucket`. Only available when ``dense_node_cells``.
        """
        nodes = np.asarray(node_ids)
        n_rows = len(self._larr)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= n_rows):
            bad = nodes[(nodes < 0) | (nodes >= n_rows)][0]
            raise ConfigError(f"unknown node {(int(bad), 0)!r}")
        la = self._larr[nodes]
        comp = la[:, 2]
        if comp.min() < 0:
            bad = nodes[comp < 0][0]
            raise ConfigError(f"unknown node {(int(bad), 0)!r}")
        span = self._span(cell)
        b0 = comp * span + np.floor_divide(la[:, 0], cell).astype(np.int64)
        b1 = np.floor_divide(la[:, 1], cell).astype(np.int64)
        return b0, b1

    def _level_of(self, pos: Hashable) -> tuple[int, int, int]:
        level = self._levels.get(pos)
        if level is not None:
            return level
        larr = self._larr
        if (larr is not None and isinstance(pos, tuple) and len(pos) == 2
                and pos[1] == 0 and isinstance(pos[0], int)
                and 0 <= pos[0] < len(larr)):
            row = larr[pos[0]]
            comp = int(row[2])
            if comp >= 0:
                level = (int(row[0]), int(row[1]), comp)
                # Dense graphs keep ``_levels`` as a pure memo over the
                # numpy table (scan loops re-query the same occupied
                # nodes constantly); bound it so a million-node sweep
                # cannot grow it without limit.
                levels = self._levels
                if len(levels) >= 1_000_000:
                    levels.clear()
                levels[pos] = level
                return level
        raise ConfigError(f"unknown node {pos!r}")

    def component_of(self, pos: Hashable) -> int:
        """Connected-component index of a node (shard planning hook).

        Agents can never leave their start component (movement is along
        edges), so a partition of components is a sound region
        partition for the sharded controller.
        """
        return self._level_of(pos)[2]

    def components_of(self, node_ids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`component_of` over dense ``(id, 0)`` ids.

        Only available when ``dense_node_cells``; the shard planner
        uses it to classify a million agents in one indexed read.
        """
        nodes = np.asarray(node_ids)
        n_rows = len(self._larr)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= n_rows):
            bad = nodes[(nodes < 0) | (nodes >= n_rows)][0]
            raise ConfigError(f"unknown node {(int(bad), 0)!r}")
        comp = self._larr[nodes, 2]
        if nodes.size and comp.min() < 0:
            bad = nodes[comp < 0][0]
            raise ConfigError(f"unknown node {(int(bad), 0)!r}")
        return comp

    # -- metric -------------------------------------------------------------

    def _distances_from(self, source: Hashable) -> dict[Hashable, int]:
        # Scan loops query many targets from one source back-to-back:
        # the one-slot memo skips the LRU bookkeeping entirely there.
        if source == self._last_src:
            return self._last_field
        cache = self._cache
        cached = cache.get(source)
        if cached is not None:
            cache.move_to_end(source)
            self._last_src = source
            self._last_field = cached
            return cached
        if source not in self._adj:
            raise ConfigError(f"unknown node {source!r}")
        ball = self._balls.get(source)
        if ball is not None and ball[0] == math.inf:
            dist = ball[1]  # dist_within already paid for the full field
        else:
            dist = self._bfs_levels(source)
        cache[source] = dist
        if len(cache) > self._cache_cap:
            cache.popitem(last=False)
        self._last_src = source
        self._last_field = dist
        return dist

    def dist(self, a, b) -> float:
        if b not in self._adj:
            raise ConfigError(f"unknown node {b!r}")
        return float(self._distances_from(a).get(b, math.inf))

    def dist_within(self, a, b, cap: float) -> float:
        """``dist(a, b)`` when it is at most ``cap``, else ``inf``.

        Runs a BFS truncated at ``cap`` hops — O(ball(cap)) instead of
        O(component) — backed by a per-source LRU of balls (each stored
        with the radius it was computed at; a larger cap recomputes and
        widens the stored ball). Scan loops alternate among the whole
        live population as sources, so a one-slot memo is not enough:
        the ball cache is what keeps steady-state blocker checks from
        re-running a BFS per probe. Full cached fields are consulted
        first (and may return an exact distance beyond the cap, which
        callers treat the same as ``inf``).
        """
        if b not in self._adj:
            raise ConfigError(f"unknown node {b!r}")
        if a == self._last_src:
            return float(self._last_field.get(b, math.inf))
        cached = self._cache.get(a)
        if cached is not None:
            return float(cached.get(b, math.inf))
        if a == self._bnd_src and cap <= self._bnd_cap:
            return float(self._bnd_field.get(b, math.inf))
        balls = self._balls
        ent = balls.get(a)
        if ent is not None and cap <= ent[0]:
            balls.move_to_end(a)
            self._bnd_src = a
            self._bnd_cap, self._bnd_field = ent
            return float(ent[1].get(b, math.inf))
        if a not in self._adj:
            raise ConfigError(f"unknown node {a!r}")
        if self._has_levels:
            size = self._comp_sizes[self._level_of(a)[2]]
        else:
            size = self._n
        radius = cap
        adj = self._adj
        if self._ball_full_ok and size * size <= self.DIST_CACHE_ENTRIES:
            # A small component's full field serves every later cap from
            # one BFS — growing caps would otherwise force a recompute
            # per growth step. Whether all the *live* sources' fields fit
            # the entry budget together depends on the population, which
            # the space cannot know statically; the eviction counter
            # below demotes to truncated balls when they do not.
            field = self._bfs_levels(a)
            radius = math.inf
        else:
            field = {a: 0}
            queue: deque = deque([a])
            truncated = False
            while queue:
                node = queue.popleft()
                base = field[node] + 1
                if base > cap:
                    truncated = True
                    continue
                for neigh in adj[node]:
                    if neigh not in field:
                        field[neigh] = base
                        queue.append(neigh)
            if not truncated:
                radius = math.inf  # ball covered the whole component
        if ent is not None:
            self._ball_entries -= len(ent[1])
        balls[a] = (radius, field)
        balls.move_to_end(a)
        self._ball_entries += len(field)
        while self._ball_entries > self.DIST_CACHE_ENTRIES and balls:
            _, (old_radius, old) = balls.popitem(last=False)
            self._ball_entries -= len(old)
            if old_radius == math.inf and self._ball_full_ok:
                self._full_evicts += 1
                if self._full_evicts > len(balls):
                    # More full fields evicted than the cache can hold:
                    # the live source set is cycling through the LRU and
                    # each probe pays a whole-component BFS. Radius-capped
                    # balls are cheaper from here on.
                    self._ball_full_ok = False
        self._bnd_src = a
        self._bnd_cap = radius
        self._bnd_field = field
        return float(field.get(b, math.inf))

    def within(self, a, b, radius: float) -> bool:
        if self._has_levels:
            la = self._level_of(a)
            lb = self._level_of(b)
            if la[2] != lb[2]:
                return False  # different components: infinite distance
            if (abs(la[0] - lb[0]) > radius
                    or abs(la[1] - lb[1]) > radius):
                return False  # landmark levels already certify dist > r
        return self.dist_within(a, b, radius) <= radius

    # -- bucketing ----------------------------------------------------------

    def _span(self, cell: float) -> int:
        """Cells per component band on the offset axis (levels < n)."""
        return int(self._n / cell) + 2

    def bucket(self, pos, cell: float) -> tuple:
        if not self._has_levels:
            return ()
        l0, l1, comp = self._level_of(pos)
        return (comp * self._span(cell) + int(l0 // cell), int(l1 // cell))

    def bucket_range(self, pos, radius: float, cell: float):
        if not self._has_levels:
            yield ()
            return
        l0, l1, comp = self._level_of(pos)
        span = self._span(cell)
        base = comp * span
        # Anything within `radius` shares the component, so only this
        # component's band is yielded; level windows clamp to the band.
        b0_lo = max(0, int((l0 - radius) // cell))
        b0_hi = min(span - 2, int((l0 + radius) // cell))
        b1_lo = max(0, int((l1 - radius) // cell))
        b1_hi = min(span - 2, int((l1 + radius) // cell))
        for b0 in range(b0_lo, b0_hi + 1):
            for b1 in range(b1_lo, b1_hi + 1):
                yield (base + b0, b1)


def space_for(metric: str, **kwargs) -> Space:
    """Factory keyed by :attr:`DependencyConfig.metric`.

    ``metric="graph"`` requires ``adjacency=...`` and accepts
    ``bucketing=False`` to opt out of landmark bucketing.
    """
    if metric == "euclidean":
        return EuclideanSpace()
    if metric == "chebyshev":
        return ChebyshevSpace()
    if metric == "manhattan":
        return ManhattanSpace()
    if metric == "graph":
        adjacency = kwargs.get("adjacency")
        if adjacency is None:
            raise ConfigError("graph metric requires adjacency=...")
        return GraphSpace(adjacency,
                          bucketing=kwargs.get("bucketing", True))
    raise ConfigError(f"unknown metric {metric!r}")
