"""Speculative out-of-order execution (§6 future work, implemented).

The conservative §3.2 rules leave a gap to the oracle: a blocked cluster
usually turns out not to interact with its laggard blockers at all. The
paper's discussion names the remedy — "introducing speculative execution
with race detection could potentially bridge this gap" — and this driver
implements it for replay mode:

* a *blocked* cluster may execute its LLM chains speculatively, at
  background priority so it never steals from the critical path;
* commits stay **in order**: the cluster retires only once its blockers
  clear, so the dependency graph's conservative invariants — and every
  other agent's scheduling — are untouched;
* a **race detector** decides at retire time whether the speculation was
  safe. In replay the detector is an oracle lookahead over the trace
  (would any blocker's true trajectory have entered a member's perception
  radius before catching up?); a live deployment would track read/write
  sets instead — exactly the scalability cost §6 warns about.
  Misspeculation re-executes the chains at full cost before retiring;
* speculation can also be **squashed**: dispatching a cluster requires it
  to be closed under coupling, and a laggard that commits *into* coupling
  range of a speculating cluster joins its synchrony group — the members
  return to ready and execute jointly through the normal path (their
  speculative work is wasted, like a squashed pipeline).

The win is latency hiding: chain execution overlaps with blocked waiting,
shrinking waiting on the critical path while preserving outcomes
bit-for-bit.
"""

from __future__ import annotations

from .metropolis import MetropolisDriver


class SpeculativeMetropolisDriver(MetropolisDriver):
    """Metropolis + speculative execution of blocked clusters."""

    #: Offset pushing speculative requests behind every regular step
    #: priority (served only when the engine has slack).
    _SPEC_PRIORITY_OFFSET = 1e6

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: cluster id -> speculation record.
        self._spec: dict[int, dict] = {}
        self._spec_members: dict[int, int] = {}  # aid -> cluster id
        #: Component BFS must not absorb speculating agents.
        self._exclude_hook = self._clustering_exclude
        self.stats.extra["speculations"] = 0
        self.stats.extra["misspeculations"] = 0
        self.stats.extra["squashes"] = 0
        self.stats.extra["spec_retires"] = 0

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _controller_round(self, dirty) -> None:
        # Squash speculations that newly-ready agents are coupled to: the
        # joint cluster must execute together through the normal path.
        dirty = set(dirty)
        for aid in list(dirty):
            if aid in self.ready:
                dirty |= self._squash_coupled_to(aid)
        if self.config.speculation_budget:
            self._launch_speculations(dirty)
        super()._controller_round(dirty)

    def _squash_coupled_to(self, aid: int) -> set[int]:
        """Squash any speculation coupled (transitively) to ready ``aid``."""
        freed: set[int] = set()
        step = self.graph.step[aid]
        frontier = [aid]
        seen = {aid}
        while frontier:
            x = frontier.pop()
            for other in self.graph.index.query(
                    self.graph.pos[x], self.rules.couple_threshold):
                if other in seen or self.graph.step[other] != step:
                    continue
                seen.add(other)
                cid = self._spec_members.get(other)
                if cid is not None:
                    freed |= self._request_squash(cid)
                    frontier.append(other)
                elif other in self.ready:
                    frontier.append(other)
        return freed

    def _request_squash(self, cid: int) -> set[int]:
        """Squash ``cid`` immediately; returns the freed members.

        In-flight chains are abandoned: their requests keep burning GPU
        (as a real squash does) but their completions become stale
        no-ops, and the members re-execute through the normal path.
        """
        spec = self._spec.pop(cid)
        members = set(spec["members"])
        for m in members:
            del self._spec_members[m]
            self.ready.add(m)
        # The freed members rejoin the ready pool: any memoized
        # component within coupling range may now have to absorb them.
        graph = self.graph
        graph.invalidate_components(members)
        threshold = self.rules.couple_threshold
        for m in members:
            graph.invalidate_components(
                graph.index.query(graph.pos[m], threshold))
        self.stats.extra["squashes"] += 1
        return members

    def _clustering_exclude(self, aid: int) -> bool:
        return aid in self._spec_members

    def _launch_speculations(self, dirty: set[int]) -> None:
        budget = self.config.speculation_budget
        visited: set[int] = set()
        for aid in sorted(dirty):
            if len(self._spec) >= budget:
                return
            if (aid not in self.ready or aid in visited
                    or aid in self._spec_members):
                continue
            cluster = self._collect_cluster(aid, visited)
            if any(m in self._spec_members for m in cluster):
                continue
            if not any(self.graph.is_blocked(m) for m in cluster):
                continue  # dispatchable normally; leave to the base round
            self._start_speculation(cluster)

    def _start_speculation(self, cluster: list[int]) -> None:
        # Members leave the ready pool; their memoized component (if
        # any) no longer reflects reality.
        self.graph.invalidate_components(cluster)
        step = self.graph.step[cluster[0]]
        cid = self._cluster_seq = self._cluster_seq + 1
        self._spec[cid] = {
            "members": cluster,
            "step": step,
            "chains_left": len(cluster),
            "will_fail": self._lookahead_detects_race(cluster, step),
        }
        for m in cluster:
            self._spec_members[m] = cid
            self.ready.discard(m)
        self.stats.extra["speculations"] += 1
        priority = self._SPEC_PRIORITY_OFFSET + step
        self._launch_spec_chains(cid, cluster, step, priority)

    def _launch_spec_chains(self, cid: int, cluster: list[int], step: int,
                            priority: float) -> None:
        """One dispatch event launches the whole cluster's chains."""
        self._kernel_events += 1
        self.kernel.call_in(
            self.config.overhead.controller_dispatch,
            self._run_spec_chains, cid, cluster, step, priority)

    def _run_spec_chains(self, cid: int, cluster: list[int], step: int,
                         priority: float) -> None:
        def done(a: int, s: int) -> None:
            self._spec_chain_done(cid, a, s)

        self.executor.run_cluster(cluster, step, priority, done)

    # ------------------------------------------------------------------
    # race detection (replay-mode oracle lookahead)
    # ------------------------------------------------------------------

    def _lookahead_detects_race(self, cluster: list[int], step: int) -> bool:
        radius = self.trace.meta.radius_p
        horizon = min(step + 1, self.trace.meta.n_steps)
        space = self.rules.space  # scenario metric (hops on graph worlds)
        for m in cluster:
            pos_m = self.trace.pos(m, step)
            for b in self.graph.blockers_of(m):
                for s in range(self.graph.step[b], horizon):
                    if space.dist(self.trace.pos(b, s), pos_m) <= radius:
                        return True
        return False

    # ------------------------------------------------------------------
    # retirement
    # ------------------------------------------------------------------

    def _spec_chain_done(self, cid: int, aid: int, step: int) -> None:
        spec = self._spec.get(cid)
        if spec is None:
            return  # squashed — stale callback of an abandoned chain
        spec["chains_left"] -= 1
        if spec["chains_left"] == 0:
            self._try_retire(cid)

    def _try_retire(self, cid: int) -> None:
        now = self.kernel.now
        if any(due <= now for due in self._round_pending):
            # This instant's controller round has not run yet: its
            # cluster commits sit in the round buffer (the dependency
            # graph does not reflect them), and the round may squash
            # this speculation against agents that just became ready.
            # Retiring first would both read stale blocker state and
            # dispatch members the round must still be able to absorb —
            # the post-round sweep retries.
            return
        spec = self._spec.get(cid)
        if spec is None or spec["chains_left"] > 0:
            return
        members = spec["members"]
        if any(self.graph.compute_blockers(m) for m in members):
            return  # still waiting for laggards
        if spec["will_fail"]:
            # Misspeculation: re-execute the chains at full cost.
            self.stats.extra["misspeculations"] += 1
            spec["will_fail"] = False
            spec["chains_left"] = len(members)
            self._launch_spec_chains(cid, members, spec["step"],
                                     float(spec["step"]))
            return
        # Retire in order: hand the cluster to the normal commit path.
        self._spec.pop(cid)
        for m in members:
            del self._spec_members[m]
        self.stats.extra["spec_retires"] += 1
        self.stats.tasks_completed += len(members)
        self.graph.mark_running(members)
        self.stats.clusters_dispatched += 1
        self.stats.cluster_size_sum += len(members)
        self._running_clusters += 1
        self._busy_workers += 1
        self._queue_commit(spec["step"], members)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _flush_controller_round(self) -> None:
        super()._flush_controller_round()
        # Any commit behind this round can have cleared a speculation's
        # last blocker; squashes (if due) happened during the round.
        for spec_cid in list(self._spec):
            self._try_retire(spec_cid)

    def _check_progress(self) -> None:
        if self._spec:
            return  # speculative work in flight still makes progress
        super()._check_progress()

    def finished(self) -> bool:
        return super().finished() and not self._spec
