"""Speculative out-of-order execution (§6 future work, implemented).

The conservative §3.2 rules leave a gap to the oracle: a blocked cluster
usually turns out not to interact with its laggard blockers at all. The
paper's discussion names the remedy — "introducing speculative execution
with race detection could potentially bridge this gap" — and this driver
implements it for replay mode:

* a *blocked* cluster may execute its LLM chains speculatively, at
  background priority so it never steals from the critical path;
* commits stay **in order**: the cluster retires only once its blockers
  clear, so the dependency graph's conservative invariants — and every
  other agent's scheduling — are untouched;
* a **race detector** decides whether the speculation was safe. In
  replay the detector is an oracle lookahead over the step-major trace
  store (would any blocker's true trajectory have entered a member's
  perception radius before catching up?); a live deployment would track
  read/write sets instead — exactly the scalability cost §6 warns
  about;
* speculation can also be killed in flight: dispatching a cluster
  requires it to be closed under coupling, and a laggard that commits
  *into* coupling range of a speculating cluster joins its synchrony
  group — the members return to ready and execute jointly through the
  normal path. The launch-time oracle verdict splits the accounting: a
  killed record whose blocker truly enters a member's radius was
  computed against stale inputs and counts as a **misspeculation**; an
  oracle-clean kill is a conservative **squash** (wasted but correct
  work, like a squashed pipeline). Because the §3.2 sphere grows at
  exactly ``max_vel`` per gap step, a genuinely racing blocker can
  never release its victim before coupling — so coupling, not retire,
  is where wrong speculation dies (the retire-side check stays as a
  terminal backstop).

Three design points make the mode a measured win rather than a sketch:

**O(changed rows) rollback.** Each speculation record carries one
array-slice snapshot of its members' next-step rows, gathered from the
trace's step-major position store at launch. That snapshot is the
entire speculative state delta: retiring hands the rows straight to the
batched graph commit (no re-gather), and undoing — squash or
misspeculation — just drops the rows and re-opens the members. Nothing
is replayed; ``stats.extra["rollback_rows"]`` counts exactly the rows
ever restored, and the ledger identity ``spec_launched_members ==
spec_retired_members + rollback_rows`` is fuzz-enforced.

**Priority-driven launch.** The flat first-come budget is replaced by a
critical-path ranking: among blocked candidate clusters, score =
wake-step distance x cluster size — the paper's Table 1 interaction-
priority ablation inverted into a scheduling signal. The wake bound is
read off the pair wake steps the zero-rescan graph already maintains
(:meth:`SpatioTemporalGraph.invocation_distance`), so ranking costs a
few dict lookups per candidate. The clusters provably waiting longest,
weighted by how much latency speculation can hide, launch first.

**Adaptive depth.** The live concurrent-speculation limit starts at
``speculation_budget`` and reacts to outcomes in windows: when more
than half of a recent window ended badly (misspeculated or squashed)
the limit halves; a clean window grows it back one slot. Misspeculation
is *terminal* — the record rolls back and the members re-execute
through the normal path — so every speculation ends in exactly one of
retire / misspeculation / squash and ``speculations == spec_retires +
misspeculations + squashes`` holds as a hard invariant.
"""

from __future__ import annotations

import numpy as np

from .metropolis import MetropolisDriver


class _SpecRecord:
    """One in-flight speculation: members, step, and the row snapshot."""

    __slots__ = ("members", "step", "chains_left", "will_fail", "rows")

    def __init__(self, members: list[int], step: int, will_fail: bool,
                 rows: np.ndarray) -> None:
        self.members = members
        self.step = step
        self.chains_left = len(members)
        self.will_fail = will_fail
        #: ``(len(members), 2)`` next-step positions gathered from the
        #: step-major trace store at launch — the record's whole
        #: speculative state delta (see module docstring).
        self.rows = rows


class SpeculativeMetropolisDriver(MetropolisDriver):
    """Metropolis + speculative execution of blocked clusters."""

    #: Offset pushing speculative requests behind every regular step
    #: priority (served only when the engine has slack).
    _SPEC_PRIORITY_OFFSET = 1e6

    #: Outcomes per adaptive-depth decision window.
    _ADAPT_WINDOW = 8

    #: Fraction of the decode saturation knee speculation may fill:
    #: sequences below the knee still tax every iteration with their KV
    #: reads, so latency hiding stops well short of the flip point.
    #: Measured on the hotpath matrix: 0.5 still loses ~3% on the
    #: 1000-agent straggler phase; 0.25 holds every cell at >= 1.0x.
    _SLACK_FRACTION = 0.25

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: cluster id -> speculation record.
        self._spec: dict[int, _SpecRecord] = {}
        self._spec_members: dict[int, int] = {}  # aid -> cluster id
        #: Component BFS must not absorb speculating agents.
        self._exclude_hook = self._clustering_exclude
        #: Live concurrent-speculation limit (adaptive depth controller;
        #: capped by ``speculation_budget``, floored at 1 while enabled).
        self._depth = max(0, self.config.speculation_budget)
        self._win_total = 0
        self._win_bad = 0
        #: aid -> decayed misspeculation penalty (ledger feedback into
        #: candidate priority; see :meth:`_spec_feedback`).
        self._spec_penalty: dict[int, float] = {}
        extra = self.stats.extra
        extra["speculations"] = 0
        extra["misspeculations"] = 0
        extra["squashes"] = 0
        extra["spec_retires"] = 0
        extra["spec_launched_members"] = 0
        extra["spec_retired_members"] = 0
        extra["rollback_rows"] = 0
        extra["spec_depth_backoffs"] = 0
        extra["spec_priority_demotions"] = 0

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _controller_round(self, dirty) -> None:
        # Squash speculations that newly-ready agents are coupled to: the
        # joint cluster must execute together through the normal path.
        dirty = set(dirty)
        if self._spec_members:
            for aid in list(dirty):
                if aid in self.ready:
                    dirty |= self._squash_coupled_to(aid)
        if self._depth:
            self._launch_speculations(dirty)
        super()._controller_round(dirty)

    def _squash_coupled_to(self, aid: int) -> set[int]:
        """Squash any speculation coupled (transitively) to ready ``aid``.

        The coupled closure is the graph's own component BFS with no
        exclusion — speculating agents are not running, so the fresh
        BFS reaches them exactly where the hand-rolled frontier walk
        used to.
        """
        freed: set[int] = set()
        for m in self.graph.build_component(aid, set(), None, False):
            cid = self._spec_members.get(m)
            if cid is not None:
                # The launch-time oracle verdict classifies the kill: a
                # record whose blocker really does enter a member's
                # perception radius was computed against stale inputs
                # (misspeculation); an oracle-clean record is merely a
                # conservative discard (squash). §3.2's safety envelope
                # makes the retire-side race unreachable — a racing
                # blocker provably keeps its victim blocked until they
                # couple, so coupling is where wrong speculation dies.
                if self._spec[cid].will_fail:
                    self.stats.extra["misspeculations"] += 1
                    self._spec_feedback(self._spec[cid].members, bad=True)
                else:
                    self.stats.extra["squashes"] += 1
                self._spec_outcome(bad=True)
                freed |= self._rollback(cid)
        return freed

    def _clustering_exclude(self, aid: int) -> bool:
        return aid in self._spec_members

    def _launch_speculations(self, dirty: set[int]) -> None:
        slots = self._depth - len(self._spec)
        if slots <= 0:
            return
        # Engine-slack gate: speculative chains are only ~free while
        # decode stays bandwidth-bound. In-flight speculation already
        # counts toward each replica's outstanding load, so the budget
        # is self-limiting.
        slack = self.engine.spec_slack(self._SLACK_FRACTION)
        if slack <= 0:
            return
        graph = self.graph
        ready = self.ready
        spec_members = self._spec_members
        blocked_by = graph.blocked_by
        use_priority = self.config.speculation_priority
        visited: set[int] = set()
        candidates: list[tuple[float, int, list[int]]] = []
        for aid in sorted(dirty):
            if aid in visited or aid not in ready or aid in spec_members:
                continue
            cluster = self._collect_cluster(aid, visited)
            if any(m in spec_members for m in cluster):
                continue
            if not any(blocked_by[m] for m in cluster):
                continue  # dispatchable normally; leave to the base round
            score = self._candidate_score(cluster) if use_priority else 0.0
            candidates.append((score, aid, cluster))
        if use_priority and len(candidates) > slots:
            candidates.sort(key=lambda c: (-c[0], c[1]))
        for _, _, cluster in candidates:
            if slots <= 0:
                break
            if len(cluster) > slack:
                continue  # would push a replica past the decode knee
            slots -= 1
            slack -= len(cluster)
            self._start_speculation(cluster)

    def _candidate_score(self, cluster: list[int]) -> float:
        """Rank a speculation candidate for the launch budget.

        Critical-path contribution — how long the cluster must provably
        wait (max wake-step bound over members) times how much latency
        speculating hides (cluster size) — divided down by the members'
        worst decayed misspeculation penalty when ledger feedback is
        on, so the budget drains toward candidates whose speculations
        have historically committed.
        """
        wake = max(self.graph.invocation_distance(m) for m in cluster)
        score = wake * len(cluster)
        if self.config.speculation_feedback and self._spec_penalty:
            worst = max(self._spec_penalty.get(m, 0.0) for m in cluster)
            if worst > 0.0:
                score /= 1.0 + worst
                self.stats.extra["spec_priority_demotions"] += 1
        return score

    def _start_speculation(self, cluster: list[int]) -> None:
        # Members leave the ready pool; their memoized component (if
        # any) no longer reflects reality.
        graph = self.graph
        graph.invalidate_components(cluster)
        step = graph.step[cluster[0]]
        marr = np.asarray(cluster, dtype=np.int64)
        rows = self._pos_flat[(step + 1) * graph.n_agents + marr]
        cid = self._cluster_seq = self._cluster_seq + 1
        self._spec[cid] = _SpecRecord(
            cluster, step, self._lookahead_detects_race(cluster, step), rows)
        for m in cluster:
            self._spec_members[m] = cid
            self.ready.discard(m)
        extra = self.stats.extra
        extra["speculations"] += 1
        extra["spec_launched_members"] += len(cluster)
        priority = self._SPEC_PRIORITY_OFFSET + step
        self._launch_spec_chains(cid, cluster, step, priority)

    def _launch_spec_chains(self, cid: int, cluster: list[int], step: int,
                            priority: float) -> None:
        """One dispatch event launches the whole cluster's chains."""
        self._kernel_events += 1
        self.kernel.call_in(
            self.config.overhead.controller_dispatch,
            self._run_spec_chains, cid, cluster, step, priority)

    def _run_spec_chains(self, cid: int, cluster: list[int], step: int,
                         priority: float) -> None:
        def done(a: int, s: int) -> None:
            self._spec_chain_done(cid, a, s)

        self.executor.run_cluster(cluster, step, priority, done)

    # ------------------------------------------------------------------
    # race detection (replay-mode oracle lookahead)
    # ------------------------------------------------------------------

    def _lookahead_detects_race(self, cluster: list[int], step: int) -> bool:
        radius = self.trace.meta.radius_p
        horizon = min(step + 1, self.trace.meta.n_steps)
        graph = self.graph
        space = self.rules.space  # scenario metric (hops on graph worlds)
        within_mat = getattr(space, "within_mat", None)
        if within_mat is None:
            # Graph metric: hop distances need per-pair BFS lookups.
            for m in cluster:
                pos_m = self.trace.pos(m, step)
                for b in graph.blockers_of(m):
                    for s in range(graph.step[b], horizon):
                        if space.dist(self.trace.pos(b, s), pos_m) <= radius:
                            return True
            return False
        # Coordinate metrics vectorize over the step-major store: each
        # blocker contributes one trajectory slice, checked against the
        # member's tile in a single masked reduction.
        pos_sa = self._pos_sa
        for m in cluster:
            mx, my = (int(v) for v in pos_sa[step, m])
            for b in graph.blockers_of(m):
                s0 = graph.step[b]
                if s0 >= horizon:
                    continue
                traj = pos_sa[s0:horizon, b].astype(np.int64)
                if within_mat(traj[:, 0] - mx, traj[:, 1] - my,
                              radius).any():
                    return True
        return False

    # ------------------------------------------------------------------
    # retirement / rollback
    # ------------------------------------------------------------------

    def _spec_chain_done(self, cid: int, aid: int, step: int) -> None:
        rec = self._spec.get(cid)
        if rec is None:
            return  # squashed — stale callback of an abandoned chain
        rec.chains_left -= 1
        if rec.chains_left == 0:
            self._try_retire(cid)

    def _try_retire(self, cid: int) -> None:
        now = self.kernel.now
        if any(due <= now for due in self._round_pending):
            # This instant's controller round has not run yet: its
            # cluster commits sit in the round buffer (the dependency
            # graph does not reflect them), and the round may squash
            # this speculation against agents that just became ready.
            # Retiring first would both read stale blocker state and
            # dispatch members the round must still be able to absorb —
            # the post-round sweep retries.
            return
        rec = self._spec.get(cid)
        if rec is None or rec.chains_left > 0:
            return
        members = rec.members
        # Maintained blocker sets, not re-scans: commits can only
        # *release* blocked edges toward larger-step agents (§3.3), so a
        # waiting member's ``blocked_by`` is exact — the same source
        # ``mark_running`` enforces below.
        blocked_by = self.graph.blocked_by
        if any(blocked_by[m] for m in members):
            return  # still waiting for laggards
        if rec.will_fail:
            # Misspeculation is terminal: roll the record back and let
            # the members re-execute at full cost through the normal
            # path (they are unblocked now, so the round dispatches
            # them immediately).
            self.stats.extra["misspeculations"] += 1
            self._spec_feedback(members, bad=True)
            self._spec_outcome(bad=True)
            self._controller_round(self._rollback(cid))
            return
        # Retire in order: hand the cluster to the normal commit path,
        # feeding the launch-time row snapshot straight to the batched
        # graph commit.
        self._spec.pop(cid)
        for m in members:
            del self._spec_members[m]
        extra = self.stats.extra
        extra["spec_retires"] += 1
        extra["spec_retired_members"] += len(members)
        self._spec_feedback(members, bad=False)
        self._spec_outcome(bad=False)
        stats = self.stats
        stats.tasks_completed += len(members)
        self.graph.mark_running(members)
        stats.clusters_dispatched += 1
        stats.cluster_size_sum += len(members)
        self._running_clusters += 1
        self._busy_workers += 1
        self._queue_commit(rec.step, members, rec.rows)

    def _rollback(self, cid: int) -> set[int]:
        """Undo one speculation record in O(its rows).

        Drops the record's row snapshot (counted in ``rollback_rows``)
        and returns the members to the ready pool. Memoized coupling
        components built while the members were hidden from clustering
        are stale — any ready agent within coupling range may now have
        to absorb them — so the members' neighborhoods are invalidated.
        """
        rec = self._spec.pop(cid)
        members = rec.members
        for m in members:
            del self._spec_members[m]
            self.ready.add(m)
        self.stats.extra["rollback_rows"] += len(rec.rows)
        graph = self.graph
        graph.invalidate_components(members)
        threshold = self.rules.couple_threshold
        for m in members:
            graph.invalidate_components(
                graph.index.query(graph.pos[m], threshold))
        return set(members)

    def _spec_feedback(self, members: list[int], bad: bool) -> None:
        """Feed one terminal outcome into the members' priority penalty.

        A misspeculation charges every member one penalty unit; a clean
        retire halves whatever they carry (forgiveness, so a phase
        change does not demote an agent forever). Squashes are neutral:
        an oracle-clean conservative kill says nothing about whether
        the members' speculations tend to be wrong.
        """
        if not self.config.speculation_feedback:
            return
        penalty = self._spec_penalty
        if bad:
            for m in members:
                penalty[m] = penalty.get(m, 0.0) + 1.0
            return
        for m in members:
            p = penalty.get(m)
            if p is None:
                continue
            p *= 0.5
            if p < 0.5:
                del penalty[m]
            else:
                penalty[m] = p

    def _spec_outcome(self, bad: bool) -> None:
        """Feed one terminal outcome to the adaptive depth controller."""
        if not self.config.speculation_adaptive:
            return
        self._win_total += 1
        if bad:
            self._win_bad += 1
        if self._win_total < self._ADAPT_WINDOW:
            return
        if self._win_bad * 2 > self._win_total:
            new_depth = max(1, self._depth // 2)
            if new_depth < self._depth:
                self._depth = new_depth
                self.stats.extra["spec_depth_backoffs"] += 1
        elif self._win_bad * 4 <= self._win_total \
                and self._depth < self.config.speculation_budget:
            self._depth += 1
        self._win_total = 0
        self._win_bad = 0

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _flush_controller_round(self) -> None:
        super()._flush_controller_round()
        # Any commit behind this round can have cleared a speculation's
        # last blocker; squashes (if due) happened during the round.
        for spec_cid in list(self._spec):
            self._try_retire(spec_cid)

    def _check_progress(self) -> None:
        if self._spec:
            return  # speculative work in flight still makes progress
        super()._check_progress()

    def _sync_stats(self) -> None:
        super()._sync_stats()
        self.stats.extra["spec_depth"] = self._depth

    def finished(self) -> bool:
        return super().finished() and not self._spec
