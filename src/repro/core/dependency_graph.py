"""§3.3 spatiotemporal dependency graph.

Each node is an agent with its current step and position. A *blocked*
edge ``B -> A`` means A (about to run its step) must wait for B (at a
strictly smaller step) to finish; *coupling* is evaluated by the
clustering layer at dispatch time. Like the scoreboard in hardware
out-of-order execution, the graph is maintained incrementally:

* when a cluster commits, each member advances one step, moves, and has
  its blocker set recomputed (its step gap to laggards grew);
* every waiter registered on a member is re-examined against the member's
  new state and released if the blocking condition no longer holds.

Two properties of the rules make this sound (proved in the test suite):
an agent's commit can never *create* a blocked edge toward an agent at a
larger step (the threshold shrinks faster than the agent can move), and
only agents at strictly smaller steps can block — so re-examining members
and their waiters covers every edge that can change.

Storage is flat and array-backed (§3.6 light critical path): agent ids
are required to be dense ``0..n-1``, and per-agent state lives in plain
lists indexed by id instead of hash maps. A commit recomputes each
member's blockers and its coupling-range neighborhood in one pass — the
second coupling query per member that earlier versions ran from the
controller's commit path is gone.

The blocker scan itself is the graph's worst hot spot: its radius grows
with the member's gap to the *global* min step, and on concatenated
many-segment maps (§4.3) one straggler segment inflates every other
segment's scan. For grid spaces the graph therefore keeps a coarse
second-level grid with a **min-step aggregate per coarse cell**: a cell
whose slowest agent is at step ``m`` can only contain blockers of A if
it intersects ``block_threshold(step_A - m)``, so almost every far cell
is dismissed with two comparisons and the scan stays local no matter
how wide the step spread grows.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

import numpy as np

from ..errors import SchedulingError
from .clustering import SpatialIndex
from .rules import DependencyRules
from .space import Position

#: ``cell_min`` sentinel for free coarse-grid slots (never < any step).
_FREE_SLOT = np.iinfo(np.int64).max


class CommitResult:
    """What a cluster commit changed, split by how callers react.

    ``unblocked`` — agents whose blocker set became empty (committed
    members included): dispatch candidates whose cluster *membership* is
    unchanged. ``neighbors`` — agents within coupling range of a
    member's post-commit position: their cached cluster may need to
    merge with the mover, so incremental clustering must invalidate
    them. Membership tests and iteration cover the union, so existing
    ``aid in result`` call sites keep working.
    """

    __slots__ = ("unblocked", "neighbors")

    def __init__(self, unblocked: set[int], neighbors: set[int]) -> None:
        self.unblocked = unblocked
        self.neighbors = neighbors

    def __contains__(self, aid: int) -> bool:
        return aid in self.unblocked or aid in self.neighbors

    def __iter__(self) -> Iterator[int]:
        yield from self.unblocked
        yield from (aid for aid in self.neighbors
                    if aid not in self.unblocked)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CommitResult(unblocked={sorted(self.unblocked)}, "
                f"neighbors={sorted(self.neighbors)})")


class SpatioTemporalGraph:
    """Incrementally-maintained blocked-edge graph over all agents."""

    def __init__(self, rules: DependencyRules,
                 initial_positions: Mapping[int, Position],
                 start_step: int = 0) -> None:
        self.rules = rules
        n = len(initial_positions)
        self.n_agents = n
        if sorted(initial_positions) != list(range(n)):
            raise SchedulingError(
                "agent ids must be dense 0..n-1 for array-backed storage; "
                f"got {sorted(initial_positions)[:8]}...")
        #: Flat per-agent state, indexed by agent id.
        self.step: list[int] = [start_step] * n
        self.pos: list[Position] = [initial_positions[aid]
                                    for aid in range(n)]
        self.running: list[bool] = [False] * n
        self.blocked_by: list[set[int]] = [set() for _ in range(n)]
        self.waiters: list[set[int]] = [set() for _ in range(n)]
        self.index = SpatialIndex(rules.space,
                                  cell=max(rules.couple_threshold, 1.0))
        for aid in range(n):
            self.index.insert(aid, self.pos[aid])
        #: agents per step value, for O(1) min-step maintenance.
        self._step_counts: dict[int, int] = {start_step: n}
        self._min_step = start_step
        self._max_step = start_step
        #: Reusable spatial-query scratch buffer (allocation-free commits).
        self._qbuf: list[int] = []
        # Coarse min-step grid for the blocker scan (grid spaces only):
        # slot-addressed numpy columns so the per-scan cell pruning is
        # one vectorized mask instead of a Python loop.
        self._grid_fast = self.index._grid
        self._coarse_cell = self.index.cell * 16.0
        cap = 64
        self._cxy = np.zeros((2, cap), dtype=np.int64)
        self._cmin = np.full(cap, _FREE_SLOT, dtype=np.int64)
        self._cmembers: list[set[int] | None] = [None] * cap
        self._cslot: dict[tuple[int, int], int] = {}
        self._cfree: list[int] = list(range(cap - 1, -1, -1))
        if self._grid_fast:
            cc = self._coarse_cell
            for aid in range(n):
                p = self.pos[aid]
                self._coarse_add((int(p[0] // cc), int(p[1] // cc)),
                                 aid, start_step)
        # instrumentation
        self.blocked_events = 0
        self.unblock_events = 0

    # -- coarse min-step grid ----------------------------------------------

    def _coarse_add(self, key: tuple[int, int], aid: int,
                    step: int) -> None:
        slot = self._cslot.get(key)
        if slot is None:
            if not self._cfree:
                old_cap = self._cmin.shape[0]
                new_cap = old_cap * 2
                self._cxy = np.concatenate(
                    [self._cxy, np.zeros((2, old_cap), dtype=np.int64)],
                    axis=1)
                self._cmin = np.concatenate(
                    [self._cmin,
                     np.full(old_cap, _FREE_SLOT, dtype=np.int64)])
                self._cmembers.extend([None] * old_cap)
                self._cfree.extend(range(new_cap - 1, old_cap - 1, -1))
            slot = self._cfree.pop()
            self._cslot[key] = slot
            self._cxy[0, slot] = key[0]
            self._cxy[1, slot] = key[1]
            self._cmin[slot] = step
            self._cmembers[slot] = {aid}
            return
        self._cmembers[slot].add(aid)
        if step < self._cmin[slot]:
            self._cmin[slot] = step

    def _coarse_remove(self, key: tuple[int, int], aid: int,
                       old_step: int) -> None:
        slot = self._cslot[key]
        members = self._cmembers[slot]
        members.discard(aid)
        if not members:
            del self._cslot[key]
            self._cmembers[slot] = None
            self._cmin[slot] = _FREE_SLOT
            self._cfree.append(slot)
        elif self._cmin[slot] == old_step:
            step = self.step
            self._cmin[slot] = min(step[m] for m in members)

    # -- queries ----------------------------------------------------------

    @property
    def min_step(self) -> int:
        return self._min_step

    @property
    def max_step(self) -> int:
        return self._max_step

    def is_blocked(self, aid: int) -> bool:
        return bool(self.blocked_by[aid])

    def blockers_of(self, aid: int) -> frozenset[int]:
        return frozenset(self.blocked_by[aid])

    def state(self, aid: int) -> tuple[int, Position]:
        return self.step[aid], self.pos[aid]

    def snapshot(self) -> list[tuple[int, int, Position]]:
        """``(aid, step, pos)`` for every agent (for validation)."""
        return [(aid, self.step[aid], self.pos[aid])
                for aid in range(self.n_agents)]

    def validate(self) -> None:
        """Assert the §3.2 validity condition for the whole state."""
        self.rules.validate_state(self.snapshot())

    # -- edge maintenance --------------------------------------------------

    def compute_blockers(self, aid: int) -> set[int]:
        """Scan for agents currently blocking ``aid`` (spatially pruned)."""
        s = self.step[aid]
        if s <= self._min_step:
            return set()
        return self._scan_blockers(aid, s, self.pos[aid])

    def _scan_blockers(self, aid: int, s: int, pos_a: Position) -> set[int]:
        """All agents blocking ``aid`` (which is at ``s`` / ``pos_a``).

        Grid spaces walk the coarse min-step grid: a cell whose slowest
        agent is at gap ``g`` from ``aid`` is dismissed outright unless
        it intersects ``block_threshold(g)``. Other spaces fall back to
        one index query at the worst-case radius.
        """
        step = self.step
        pos = self.pos
        rules = self.rules
        max_vel = rules.max_vel
        base_r = rules.radius_p + max_vel
        blockers: set[int] = set()
        within = self.index._within
        if self._grid_fast:
            cc = self._coarse_cell
            ca_x = int(pos_a[0] // cc)
            ca_y = int(pos_a[1] // cc)
            # Conservative lower bound on the distance from pos_a to any
            # point of each coarse cell (valid for L2/Linf/L1), against
            # the cell's worst-case (oldest member) blocking threshold.
            # Free slots carry a huge cell_min, failing the first test.
            cmin = self._cmin
            dx = np.abs(self._cxy[0] - ca_x)
            dy = np.abs(self._cxy[1] - ca_y)
            lower = (np.maximum(dx, dy) - 1) * cc
            mask = (cmin < s) & (lower <= base_r + (s - cmin) * max_vel)
            members_of = self._cmembers
            for slot in np.nonzero(mask)[0]:
                for bid in members_of[slot]:
                    s_b = step[bid]
                    if s_b < s and bid != aid and within(
                            pos_a, pos[bid], base_r + (s - s_b) * max_vel):
                        blockers.add(bid)
            return blockers
        radius = rules.block_threshold(s - self._min_step)
        blocked = rules.blocked
        for bid in self.index.query_into(pos_a, radius, self._qbuf):
            if bid != aid and blocked(pos_a, s, pos[bid], step[bid]):
                blockers.add(bid)
        return blockers

    # -- lifecycle ----------------------------------------------------------

    def mark_running(self, aids: Iterable[int]) -> None:
        for aid in aids:
            if self.blocked_by[aid]:
                raise SchedulingError(
                    f"agent {aid} dispatched while blocked by "
                    f"{sorted(self.blocked_by[aid])}")
            if self.running[aid]:
                raise SchedulingError(f"agent {aid} already running")
            self.running[aid] = True

    def commit(self, aids: Iterable[int],
               new_positions: Mapping[int, Position]) -> CommitResult:
        """Advance a finished cluster one step.

        Returns a :class:`CommitResult`: agents whose blocker set became
        empty (newly dispatchable candidates, committed members
        included) plus the agents within coupling range of the members'
        new positions (whose cached clusters the controller must
        refresh). One spatial query per member serves both purposes.
        """
        members = list(aids)
        step = self.step
        pos = self.pos
        running = self.running
        step_counts = self._step_counts
        index = self.index
        grid_fast = self._grid_fast
        cc = self._coarse_cell
        for aid in members:
            if not running[aid]:
                raise SchedulingError(f"agent {aid} was not running")
            running[aid] = False
            old = step[aid]
            step_counts[old] -= 1
            if step_counts[old] == 0:
                del step_counts[old]
            new = old + 1
            step[aid] = new
            step_counts[new] = step_counts.get(new, 0) + 1
            old_pos = pos[aid]
            new_pos = new_positions[aid]
            pos[aid] = new_pos
            index.move(aid, new_pos)
            if grid_fast:
                old_key = (int(old_pos[0] // cc), int(old_pos[1] // cc))
                new_key = (int(new_pos[0] // cc), int(new_pos[1] // cc))
                if new_key != old_key:
                    self._coarse_remove(old_key, aid, old)
                    self._coarse_add(new_key, aid, new)
                else:
                    slot = self._cslot[old_key]
                    if self._cmin[slot] == old:
                        self._cmin[slot] = min(
                            step[m] for m in self._cmembers[slot])
            if new > self._max_step:
                self._max_step = new
        # Steps only grow, so min_step is non-decreasing: walk it up
        # only when the committed members drained its bucket.
        if step_counts and self._min_step not in step_counts:
            ms = self._min_step
            while ms not in step_counts:
                ms += 1
            self._min_step = ms
        min_step = self._min_step
        rules = self.rules
        couple_r = rules.couple_threshold
        unblocked: set[int] = set()
        neighbors: set[int] = set()
        blocked_by = self.blocked_by
        waiters = self.waiters
        qbuf = self._qbuf
        # Members may now be blocked at their new step; the same pass
        # also yields their coupling-range neighborhood.
        for aid in members:
            s = step[aid]
            pos_a = pos[aid]
            old_blockers = blocked_by[aid]
            for bid in old_blockers:
                waiters[bid].discard(aid)
            if s > min_step:
                new_blockers = self._scan_blockers(aid, s, pos_a)
            else:
                new_blockers = set()
            for bid in index.query_into(pos_a, couple_r, qbuf):
                if bid != aid:
                    neighbors.add(bid)
            blocked_by[aid] = new_blockers
            for bid in new_blockers:
                waiters[bid].add(aid)
            if new_blockers:
                self.blocked_events += 1
            else:
                unblocked.add(aid)
        # Waiters of members may be released (or still held).
        blocked = rules.blocked
        for aid in members:
            pos_a = pos[aid]
            s = step[aid]
            for waiter in list(waiters[aid]):
                if not blocked(pos[waiter], step[waiter], pos_a, s):
                    waiters[aid].discard(waiter)
                    blocked_by[waiter].discard(aid)
                    if not blocked_by[waiter]:
                        unblocked.add(waiter)
                        self.unblock_events += 1
        return CommitResult(unblocked, neighbors)
