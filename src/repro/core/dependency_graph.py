"""§3.3 spatiotemporal dependency graph.

Each node is an agent with its current step and position. A *blocked*
edge ``B -> A`` means A (about to run its step) must wait for B (at a
strictly smaller step) to finish; *coupling* is evaluated by the
clustering layer at dispatch time. Like the scoreboard in hardware
out-of-order execution, the graph is maintained incrementally:

* when a cluster commits, each member advances one step, moves, and has
  its blocker set recomputed (its step gap to laggards grew);
* every waiter registered on a member is re-examined against the member's
  new state and released if the blocking condition no longer holds.

Two properties of the rules make this sound (proved in the test suite):
an agent's commit can never *create* a blocked edge toward an agent at a
larger step (the threshold shrinks faster than the agent can move), and
only agents at strictly smaller steps can block — so re-examining members
and their waiters covers every edge that can change.

Storage is flat and array-backed (§3.6 light critical path): agent ids
are required to be dense ``0..n-1``, per-agent state lives in plain
lists indexed by id, and a numpy position mirror serves the vectorized
paths. :meth:`SpatioTemporalGraph.commit` takes a whole batch of
finished clusters (ack coalescing hands the same-instant batch over at
once) — either as a mapping or as a ``(k, 2)`` row array sliced
straight out of the trace's step-major position store — and retires it
in one pass; batches of several agents take a vectorized bookkeeping
path (coordinate grids by floor division, graph metrics through
:meth:`GraphSpace.bucket_mat` over dense node ids), and
:class:`CommitResult` falls out of the same pass that recomputes
blockers.

The graph also owns §3.4 **coupling components** natively: connected
components of the coupling relation among same-step non-running agents
are memoized in an id-indexed component table, seeded by the per-member
neighbor lists every commit already returns, and invalidated from
inside :meth:`mark_running` / :meth:`commit` themselves — the drivers
no longer run a separate cache-invalidation protocol (the old
standalone ``ClusterCache`` survives only as a deprecation shim).

The blocker work itself is bounded by three mechanisms that make
steady-state commits (nearly) scan-free:

* **step-bucketed blocker index with coarse spatial bands** — agents
  are sharded into slots keyed by ``(step, cell)``, and the slots are
  grouped into *bands* of ``BAND_CELLS x BAND_CELLS`` fine cells. A
  full scan walks only the bands intersecting the row's worst-case
  reach window (the distance any live laggard's blocking sphere can
  span), so scan work is O(slots near the agent) instead of O(live
  slots) — the property that keeps per-commit cost flat from 2k to
  1M agents. Each slot carries its *exact* step, so it is dismissed
  against ``block_threshold(its own gap)`` with no per-cell min-step
  slop, and only members of surviving slots are touched. The
  ``scanned_slots`` counter records the slots each scan examined (the
  bench matrix asserts it stays O(local) as the population grows);
* **slack-bounded scan skipping** — a full scan records the agent's
  *slack* (the minimum over all other agents of ``dist -
  block_threshold(effective gap)``, clamped at a horizon every
  dismissed slot provably exceeds) and its *near set* (the agents
  inside the horizon). Per own commit the slack can shrink by at most
  ``2 * max_vel``: the agent moves up to ``max_vel`` toward a threat
  whose threshold grows by ``max_vel``, while a threat's own commits
  never shrink the margin (its gap closes one step per ``max_vel`` of
  approach). So while ``2 * max_vel * (step - scan_step) < slack`` a
  commit skips blocker work entirely; while the shrink stays within
  the horizon only the recorded near set is re-examined (a handful of
  exact distance checks); only past the horizon does the indexed scan
  re-run;
* **blocked-pair wake steps** — symmetrically, a still-blocked check of
  waiter A against blocker B at margin ``M = threshold - dist`` stays
  true for B's next ``min(M // (2 * max_vel), gap - 1)`` commits, so
  the pair carries a wake step and B's commits skip the geometry
  re-check until B's step reaches it.

All three bounds are conservative, so the maintained edge sets stay
*exactly* equal to a from-scratch recomputation (the dict-reference
fuzz model pins this).

None of the three mechanisms is Euclidean-specific: the slack and wake
bounds only need the triangle inequality plus the ``max_vel`` movement
bound, and the step-bucketed index only needs 2D integer cells whose
per-axis difference lower-bounds the true distance. The fast path is
therefore gated on ``Space.cell_bucketing`` — coordinate grids provide
it by floor division, :class:`~repro.core.space.GraphSpace` by landmark
BFS levels — so ``metric="graph"`` worlds take the same zero-rescan
path. Only the *vectorized* sub-paths (numpy commit bookkeeping, the
batched neighbor distance matrix) additionally require numeric 2D
coordinates (``grid_bucketing`` + ``within_mat``); non-coordinate
spaces fall back to the scalar per-member variants of the same
algorithm. Spaces with no usable bucketing at all keep the legacy
:meth:`SpatioTemporalGraph._scan_fallback` linear scan (counted by
``fallback_scans`` so tests can assert it stays off the fast path).
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Mapping

import numpy as np

from ..errors import SchedulingError
from .clustering import SpatialIndex
from .rules import DependencyRules
from .space import EuclideanSpace, Position

#: Batches at least this large take the vectorized bookkeeping path;
#: smaller ones stay scalar (less fixed numpy overhead than the win).
_VEC_BATCH = 8

#: Shared empty neighbor list (read-only by contract): whole-shard
#: commits produce mostly-empty neighborhoods on sparse worlds, and one
#: shared object keeps that O(1) allocations instead of O(population).
_EMPTY: list[int] = []

#: Fine cells per coarse band, per axis. A band groups up to
#: BAND_CELLS^2 cells' slots into one sub-table; scans visit only the
#: bands intersecting the row's reach window. 8 keeps bands small
#: enough that a window is a handful of bands at every benchmarked
#: density while leaving enough slots per band to amortize the dict
#: lookup (swept 4/8/16 on the hotpath matrix).
BAND_CELLS = 8


class _Band:
    """One coarse band's slot sub-table: parallel per-slot columns.

    Plain Python lists, not numpy: bands hold O(local population)
    slots, so scans run a scalar loop over a short list — faster than
    vector-op fixed costs at band size, and append/swap-down stay O(1)
    without capacity management.
    """

    __slots__ = ("steps", "xs", "ys", "keys", "members")

    def __init__(self) -> None:
        self.steps: list[int] = []
        self.xs: list[int] = []
        self.ys: list[int] = []
        self.keys: list[tuple[int, int, int]] = []
        self.members: list[set[int]] = []


class CommitResult:
    """What a cluster commit changed, split by how callers react.

    ``unblocked`` — agents whose blocker set became empty (committed
    members included): dispatch candidates whose cluster *membership* is
    unchanged. ``neighbors`` — agents within coupling range of a
    member's post-commit position: their cached cluster may need to
    merge with the mover, so incremental clustering must invalidate
    them. ``member_neighbors`` — the same neighborhood split per
    member: until the next commit these are exactly the member's
    coupling candidates, so the controller's cluster BFS can seed from
    them instead of re-querying the spatial index. Membership tests and
    iteration cover the union, so existing ``aid in result`` call sites
    keep working.
    """

    __slots__ = ("unblocked", "neighbors", "member_neighbors")

    def __init__(self, unblocked: set[int], neighbors: set[int],
                 member_neighbors: dict[int, list[int]] | None = None
                 ) -> None:
        self.unblocked = unblocked
        self.neighbors = neighbors
        self.member_neighbors = member_neighbors or {}

    def __contains__(self, aid: int) -> bool:
        return aid in self.unblocked or aid in self.neighbors

    def __iter__(self) -> Iterator[int]:
        yield from self.unblocked
        yield from (aid for aid in self.neighbors
                    if aid not in self.unblocked)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CommitResult(unblocked={sorted(self.unblocked)}, "
                f"neighbors={sorted(self.neighbors)})")


class SpatioTemporalGraph:
    """Incrementally-maintained blocked-edge graph over all agents."""

    def __init__(self, rules: DependencyRules,
                 initial_positions: "Mapping[int, Position] | np.ndarray",
                 start_step: int = 0,
                 band_size: int | None = None) -> None:
        self.rules = rules
        if isinstance(initial_positions, np.ndarray):
            # Step-major trace stores hand over one (n, 2) row slice.
            arr0: np.ndarray | None = initial_positions
            n = len(initial_positions)
            pos_list = [(r[0], r[1]) for r in initial_positions.tolist()]
        else:
            arr0 = None
            n = len(initial_positions)
            if sorted(initial_positions) != list(range(n)):
                raise SchedulingError(
                    "agent ids must be dense 0..n-1 for array-backed "
                    f"storage; got {sorted(initial_positions)[:8]}...")
            pos_list = [initial_positions[aid] for aid in range(n)]
        self.n_agents = n
        #: Flat per-agent state, indexed by agent id.
        self.step: list[int] = [start_step] * n
        self.pos: list[Position] = pos_list
        self.running: list[bool] = [False] * n
        self.blocked_by: list[set[int]] = [set() for _ in range(n)]
        self.waiters: list[set[int]] = [set() for _ in range(n)]
        #: Per blocked pair, the blocker step up to which the waiter is
        #: provably still blocked: ``_wake[b][a] >= step[b]`` skips the
        #: geometry re-check on b's commit (indexed by blocker).
        self._wake: list[dict[int, int]] = [{} for _ in range(n)]
        #: Slack-bound scan cache: step of the agent's last full blocker
        #: scan, the slack it measured, and the near set (agents within
        #: the slack horizon then; None = no valid scan yet).
        self._scan_step: list[int] = [start_step] * n
        self._scan_slack: list[float] = [0.0] * n
        self._near: list[list[int] | None] = [None] * n
        self._base_r = rules.radius_p + rules.max_vel
        self._two_mv = 2.0 * rules.max_vel
        #: Members this close to blocking at scan time land in the near
        #: set and are re-examined exactly until the accumulated worst-
        #: case slack shrink exceeds the horizon — only then does the
        #: indexed scan re-run (every ``1 + horizon / (2 * max_vel)``
        #: commits at worst). Coordinate grids run a 16-velocity horizon
        #: and fine cells spanning two coupling radii (swept jointly on
        #: the hotpath matrix: ~2x fewer full scans, <=2x2 neighbor
        #: windows, half the slot table per axis). Graph metrics keep
        #: the tighter 8/1x settings: hop-metric worlds have small
        #: diameters, so a wide horizon would pull whole components
        #: into every near set.
        coord = bool(getattr(rules.space, "grid_bucketing", False))
        self._slack_horizon = (16.0 if coord else 8.0) * rules.max_vel
        cell_span = 2.0 if coord else 1.0
        self.index = SpatialIndex(
            rules.space,
            cell=max(cell_span * rules.couple_threshold, 1.0))
        self.index.bulk_load(enumerate(self.pos))
        #: agents per step value, for O(1) min-step maintenance.
        self._step_counts: dict[int, int] = {start_step: n}
        self._min_step = start_step
        self._max_step = start_step
        #: Reusable spatial-query scratch buffer (non-grid fallback).
        self._qbuf: list[int] = []
        #: Zero-rescan fast path: any space whose cells lower-bound the
        #: metric (coordinate grids, landmark-bucketed graph spaces)
        #: gets the step-bucketed blocker index. Slots are densely
        #: packed in [0, _bcount): scans slice the live prefix, frees
        #: swap the last slot down — no free list, no sentinels.
        self._bucket_fast = bool(getattr(rules.space, "cell_bucketing",
                                         False))
        #: Vectorized sub-paths additionally need numeric 2D coordinates
        #: (within_mat neighbor masks over the coordinate columns).
        self._coord_vec = self.index._grid and hasattr(rules.space,
                                                       "within_mat")
        #: Exact type check: subclasses may override dist/within (e.g.
        #: wrap-around metrics), which the inlined L2 would bypass.
        self._euclid = type(rules.space) is EuclideanSpace
        #: Radius-bounded distance (GraphSpace.dist_within): the exact
        #: checks below only need the true distance when it is at most
        #: the compared threshold, so a bounded BFS that returns inf
        #: past the cap is exact where it matters and O(ball) instead
        #: of O(component) where it doesn't.
        self._dist_within = getattr(rules.space, "dist_within", None)
        #: Graph metrics with dense integer node ids vectorize their
        #: commit bookkeeping through GraphSpace.bucket_mat instead.
        self._graph_vec = (self._bucket_fast and not self._coord_vec
                           and getattr(rules.space, "dense_node_cells",
                                       False))
        #: §3.4/§3.6 graph-native coupling components: component id per
        #: agent (-1 = must rebuild) plus the member lists, invalidated
        #: from inside mark_running/commit — no external protocol.
        self._comp_of: list[int] = [-1] * n
        self._comp_members: dict[int, list[int]] = {}
        self._comp_seq = 0
        #: Per-member coupling candidates from the latest commit: exact
        #: until the next commit, so component BFS seeds from them
        #: instead of re-querying the spatial index.
        self._fresh: dict[int, list[int]] = {}
        #: Component BFS scratch buffer (distinct from the commit-path
        #: _qbuf: a round may interleave with pure blocker queries).
        self._cbuf: list[int] = []
        self.comp_hits = 0
        self.comp_misses = 0
        #: Coarse band width in fine cells (ctor override serves the
        #: fuzz harness: band_size=1 stresses the window walk, a huge
        #: value degenerates to the unbanded single-table reference).
        self._band = int(band_size) if band_size else BAND_CELLS
        #: Contiguous float64/int64 mirrors of ``pos``/``_cellxy``
        #: (coordinate grids only): the whole-batch neighbor join
        #: streams these instead of chasing per-agent tuples through
        #: the heap — the difference between flat and population-
        #: proportional commit cost at 100k+ agents.
        self._posarr: np.ndarray | None = None
        self._cellarr: np.ndarray | None = None
        if self._bucket_fast:
            # Dense ids let the index read positions straight from the
            # graph's own list: commits update one storage, and
            # query_into sees every move for free.
            self.index._positions = self.pos
            #: Banded slot table: slots keyed (step, cellx, celly) live
            #: in per-band sub-tables keyed by (cellx//B, celly//B);
            #: _bslot maps each live key to its (band, index) home.
            #: Frees swap the band's last slot down; empty bands are
            #: deleted, so scans never touch vacated regions.
            self._bands: dict[tuple[int, int], _Band] = {}
            self._bslot: dict[tuple[int, int, int],
                              tuple[_Band, int]] = {}
            cell = self.index.cell
            #: Current fine cell per agent: commits read the old cell
            #: here instead of re-deriving it from the old position (no
            #: float position mirror to maintain).
            self._cellxy: list[tuple[int, int]] = self._init_cells(arr0)
            if self._coord_vec:
                self._posarr = (arr0.astype(np.float64)
                                if arr0 is not None
                                else np.array(pos_list, dtype=np.float64))
                self._cellarr = np.array(self._cellxy, dtype=np.int64)
            # Bulk load: group agents by cell once (C-speed lexsort
            # grouping), hand the index its buckets, and seed one slot
            # per occupied cell — instead of n per-agent insertions.
            groups = self.index.bulk_load_cells(self._cellxy)
            for c, ids in groups.items():
                self._bucket_add((start_step,) + c, ids)
            #: Reused grouping buffers for batched slot migration.
            self._mig_removals: dict[tuple[int, int, int],
                                     list[int]] = {}
            self._mig_additions: dict[tuple[int, int, int],
                                      list[int]] = {}
        # instrumentation
        self.blocked_events = 0
        self.unblock_events = 0
        self.scans = 0
        self.scan_skips = 0
        self.near_checks = 0
        self.wake_checks = 0
        self.wake_skips = 0
        #: Linear scans through the non-bucketed fallback path; stays 0
        #: whenever the space offers cell bucketing (regression-tested).
        self.fallback_scans = 0
        #: Slots examined by full scans (band-window walk): the scale
        #: matrix asserts this stays O(local population) per scan as
        #: the world grows.
        self.scanned_slots = 0

    # -- step-bucketed blocker index ---------------------------------------

    def _init_cells(self, arr0: "np.ndarray | None"
                    ) -> list[tuple[int, int]]:
        """Initial fine cell per agent, vectorized where the space allows."""
        cell = self.index.cell
        space = self.rules.space
        if arr0 is not None and self._coord_vec:
            pairs = np.floor_divide(arr0, cell).astype(np.int64).tolist()
            return [(c[0], c[1]) for c in pairs]
        if arr0 is not None and self._graph_vec:
            b0, b1 = space.bucket_mat(
                arr0[:, 0].astype(np.int64), cell)
            return list(zip(b0.tolist(), b1.tolist()))
        bucket = space.bucket
        return [bucket(p, cell) for p in self.pos]

    def _bucket_add(self, key: tuple[int, int, int],
                    aids: Iterable[int]) -> None:
        ent = self._bslot.get(key)
        if ent is not None:
            ent[0].members[ent[1]].update(aids)
            return
        B = self._band
        bk = (key[1] // B, key[2] // B)
        band = self._bands.get(bk)
        if band is None:
            self._bands[bk] = band = _Band()
        self._bslot[key] = (band, len(band.steps))
        band.steps.append(key[0])
        band.xs.append(key[1])
        band.ys.append(key[2])
        band.keys.append(key)
        band.members.append(set(aids))

    def _bucket_discard(self, key: tuple[int, int, int],
                        aids: list[int]) -> None:
        band, idx = self._bslot[key]
        members = band.members[idx]
        if len(aids) == 1:
            members.discard(aids[0])
        else:
            members.difference_update(aids)
        if members:
            return
        # Swap the band's last slot down so its columns stay dense.
        del self._bslot[key]
        steps = band.steps
        last = len(steps) - 1
        if idx != last:
            steps[idx] = steps[last]
            band.xs[idx] = band.xs[last]
            band.ys[idx] = band.ys[last]
            last_key = band.keys[last]
            band.keys[idx] = last_key
            band.members[idx] = band.members[last]
            self._bslot[last_key] = (band, idx)
        steps.pop()
        band.xs.pop()
        band.ys.pop()
        band.keys.pop()
        band.members.pop()
        if not steps:
            del self._bands[(key[1] // self._band, key[2] // self._band)]

    def _slot_snapshot(self) -> dict[tuple[int, int, int], set[int]]:
        """Live ``key -> members`` map (tests validate layout through it)."""
        snap: dict[tuple[int, int, int], set[int]] = {}
        for key, (band, idx) in self._bslot.items():
            snap[key] = band.members[idx]
        return snap

    # -- coupling components (§3.4, memoized §3.6) -------------------------

    def component_for(self, aid: int, visited: set[int],
                      exclude=None, strict: bool = False) -> list[int]:
        """The coupling component of ``aid``, memoized between commits.

        Returns the cached component when ``aid`` still belongs to a
        valid one, else rebuilds it with :meth:`build_component` and
        memoizes the result (singletons are skipped: they cost one
        spatial query to rebuild and are invalidated on dispatch
        anyway). Members are added to the caller's ``visited`` set
        either way, so a round never re-seeds the same component.
        """
        cid = self._comp_of[aid]
        if cid >= 0:
            self.comp_hits += 1
            members = self._comp_members[cid]
            visited.update(members)
            return members
        self.comp_misses += 1
        members = self.build_component(aid, visited, exclude, strict)
        if len(members) > 1:
            self._store_component(members)
        return members

    def build_component(self, aid: int, visited: set[int],
                        exclude=None, strict: bool = False) -> list[int]:
        """Fresh BFS of the coupling component around ``aid``.

        Members are non-running agents at ``aid``'s step connected by
        chains of coupling relations; candidates come from the latest
        commit's per-member neighbor lists where available (exact until
        the next commit) and from the spatial index otherwise.
        ``exclude`` skips agents the caller manages out-of-band
        (speculation); ``strict`` turns a running same-step agent
        inside coupling range into a :class:`SchedulingError` (the
        rules guarantee it cannot happen — reaching it means the
        invariant broke).
        """
        step = self.step
        step_v = step[aid]
        running = self.running
        pos = self.pos
        threshold = self.rules.couple_threshold
        query_into = self.index.query_into
        fresh = self._fresh
        qbuf = self._cbuf
        stack = [aid]
        members: list[int] = []
        visited.add(aid)
        while stack:
            a = stack.pop()
            members.append(a)
            candidates = fresh.get(a)
            if candidates is None:
                candidates = query_into(pos[a], threshold, qbuf)
            for other in candidates:
                if other == a or other in visited:
                    continue
                if step[other] != step_v:
                    continue
                if exclude is not None and exclude(other):
                    continue
                if running[other]:
                    if strict:
                        raise SchedulingError(
                            f"coupling invariant violated: agent {other} "
                            f"is running at step {step_v} within coupling "
                            f"range of ready agent {a}")
                    continue
                visited.add(other)
                stack.append(other)
        members.sort()
        return members

    def _store_component(self, members: list[int]) -> None:
        self.invalidate_components(members)
        cid = self._comp_seq
        self._comp_seq += 1
        self._comp_members[cid] = members
        comp_of = self._comp_of
        for aid in members:
            comp_of[aid] = cid

    def invalidate_components(self, aids: Iterable[int]) -> None:
        """Drop every memoized component containing any of ``aids``.

        Called from inside :meth:`mark_running` and :meth:`commit`;
        external callers only need it when they change an agent's
        dispatchability out-of-band (the speculative driver's squash
        path).
        """
        comp_of = self._comp_of
        members = self._comp_members
        for aid in aids:
            cid = comp_of[aid]
            if cid >= 0:
                for member in members.pop(cid):
                    comp_of[member] = -1

    # -- queries ----------------------------------------------------------

    @property
    def min_step(self) -> int:
        return self._min_step

    @property
    def max_step(self) -> int:
        return self._max_step

    def is_blocked(self, aid: int) -> bool:
        return bool(self.blocked_by[aid])

    def invocation_distance(self, aid: int) -> float:
        """Predicted virtual steps until ``aid``'s next LLM dispatch.

        The serving layer's KV eviction key (ScaleSim's *invocation
        distance*, §PAPERS): 0 for agents running or dispatchable now;
        for blocked agents, a lower bound on how many steps the slowest
        blocker must commit before the pair can dissolve, read straight
        off the pair wake steps the zero-rescan scheduler already
        maintains (``_wake[b][a]`` is the last blocker step at which the
        pair is provably still blocked). All blockers must clear, so the
        prediction is the max over blockers. Free of geometry work —
        O(blockers) dict lookups — hence cheap enough to consult on
        every eviction decision.
        """
        blockers = self.blocked_by[aid]
        if self.running[aid] or not blockers:
            return 0.0
        step = self.step
        dist = 1
        for bid in blockers:
            wake = self._wake[bid].get(aid)
            if wake is not None:
                need = wake - step[bid] + 1
                if need > dist:
                    dist = need
        return float(dist)

    def blockers_of(self, aid: int) -> frozenset[int]:
        return frozenset(self.blocked_by[aid])

    def state(self, aid: int) -> tuple[int, Position]:
        return self.step[aid], self.pos[aid]

    def snapshot(self) -> list[tuple[int, int, Position]]:
        """``(aid, step, pos)`` for every agent (for validation)."""
        return [(aid, self.step[aid], self.pos[aid])
                for aid in range(self.n_agents)]

    def validate(self) -> None:
        """Assert the §3.2 validity condition for the whole state."""
        self.rules.validate_state(self.snapshot())

    # -- edge maintenance --------------------------------------------------

    def compute_blockers(self, aid: int) -> set[int]:
        """Current blockers of ``aid`` (slack/near/scan fast paths).

        A pure query: unlike the commit path it updates neither the
        slack cache nor pair wake steps.
        """
        s = self.step[aid]
        if s <= self._min_step:
            return set()
        if not self._bucket_fast:
            return self._scan_fallback(aid, s, self.pos[aid])
        shrink = self._two_mv * (s - self._scan_step[aid])
        near = self._near[aid]
        if near is not None:
            if shrink < self._scan_slack[aid]:
                return set()
            if shrink <= self._slack_horizon:
                blockers, _ = self._check_near(aid, s, near)
                return blockers
        pos_a = self.pos[aid]
        self.scans += 1
        blockers, _, _, _ = self._scan_rows(
            [aid], [s], [self._cellxy[aid]], [pos_a])
        return blockers[0]

    def _check_near(self, aid: int, s: int, near: list[int]
                    ) -> tuple[set[int], dict[int, float]]:
        """Exact blocker check against the recorded near set only.

        Sound while the accumulated worst-case slack shrink since the
        recording scan stays within the horizon: every agent outside
        the near set still holds positive slack, so only near members
        can block.
        """
        self.near_checks += 1
        step = self.step
        pos = self.pos
        dist = self.rules.space.dist
        dist_within = self._dist_within
        euclid = self._euclid
        sqrt = math.sqrt
        base_r = self._base_r
        mv = self.rules.max_vel
        pa = pos[aid]
        if euclid:
            pax = pa[0]
            pay = pa[1]
        blockers: set[int] = set()
        margins: dict[int, float] = {}
        for bid in near:
            g = s - step[bid]
            if g <= 0:
                continue
            thr = base_r + g * mv
            if euclid:
                q = pos[bid]
                dx = pax - q[0]
                dy = pay - q[1]
                d = sqrt(dx * dx + dy * dy)
            elif dist_within is not None:
                d = dist_within(pa, pos[bid], thr)
            else:
                d = dist(pa, pos[bid])
            if d <= thr:
                blockers.add(bid)
                margins[bid] = thr - d
        return blockers, margins

    def _scan_rows(self, ids: list[int], svs: list[int],
                   cells: list[tuple[int, int]], ppos: list[Position]
                   ) -> tuple[list[set[int]], list[float],
                              list[dict[int, float]], list[list[int]]]:
        """Full blocker scans via the step-bucketed index, one batch.

        Scans are banded: a row's worst-case reach (``(step gap to the
        oldest laggard) * max_vel`` plus the blocking cut, in cells)
        defines a window of coarse bands; only slots in those bands are
        examined — O(local slots), independent of the live-slot total.
        Per examined slot the *exact* per-slot test runs (cell-level
        distance lower bound vs ``block_threshold(its own gap)`` plus
        the slack horizon); the window dismisses the rest a fortiori,
        since every out-of-window slot exceeds even the worst-case-gap
        threshold. Returns per row the blocker set, the measured slack
        (exact distances for examined members, clamped at the horizon
        every dismissed slot provably exceeds), the blocking margin per
        blocker (for wake steps), and the near set (members within the
        horizon) that licenses scan-free re-checks until the horizon is
        consumed.
        """
        mv = self.rules.max_vel
        base_r = self._base_r
        horizon = self._slack_horizon
        cut = base_r + horizon
        cellsz = self.index.cell
        min_step = self._min_step
        B = self._band
        bands = self._bands
        n_bands = len(bands)
        scanned = 0
        #: (row, slot step, slot members) for every surviving slot.
        pairs: list[tuple[int, int, set[int]]] = []
        for r in range(len(ids)):
            cx, cy = cells[r]
            s = svs[r]
            # Window of bands that can hold a cell within reach: cell
            # distance dc passes the exact test only if (dc-1)*cell <=
            # gap*mv + cut <= (s-min_step)*mv + cut, so rc bounds dc
            # and floor-division monotonicity bounds the band range.
            rc = int(((s - min_step) * mv + cut) / cellsz + 1.0)
            bx_lo = (cx - rc) // B
            bx_hi = (cx + rc) // B
            by_lo = (cy - rc) // B
            by_hi = (cy + rc) // B
            if (bx_hi - bx_lo + 1) * (by_hi - by_lo + 1) >= n_bands:
                # Window spans the table: iterating the live bands is
                # cheaper than probing every window key.
                window = [band for bk, band in bands.items()
                          if bx_lo <= bk[0] <= bx_hi
                          and by_lo <= bk[1] <= by_hi]
            else:
                window = []
                for bkx in range(bx_lo, bx_hi + 1):
                    for bky in range(by_lo, by_hi + 1):
                        band = bands.get((bkx, bky))
                        if band is not None:
                            window.append(band)
            # Scalar pass over the window's slots: bands hold O(local)
            # slots, so a plain loop beats vector-op fixed costs.
            for band in window:
                steps_l = band.steps
                xs = band.xs
                ys = band.ys
                membs = band.members
                scanned += len(steps_l)
                for i in range(len(steps_l)):
                    dcx = xs[i] - cx
                    if dcx < 0:
                        dcx = -dcx
                    dcy = ys[i] - cy
                    if dcy < 0:
                        dcy = -dcy
                    if dcy > dcx:
                        dcx = dcy
                    g = s - steps_l[i]
                    if g < 0:
                        g = 0
                    if (dcx - 1.0) * cellsz <= g * mv + cut:
                        pairs.append((r, steps_l[i], membs[i]))
        self.scanned_slots += scanned

        blockers: list[set[int]] = [set() for _ in ids]
        margins: list[dict[int, float]] = [{} for _ in ids]
        nears: list[list[int]] = [[] for _ in ids]
        slack = [horizon] * len(ids)
        pos = self.pos
        dist = self.rules.space.dist
        dist_within = self._dist_within
        euclid = self._euclid
        sqrt = math.sqrt
        for r, slot_step, slot_members in pairs:
            aid = ids[r]
            s = svs[r]
            g = s - slot_step
            thr = base_r + g * mv if g > 0 else base_r
            near_cut = thr + horizon
            pa = ppos[r]
            if euclid:
                pax = pa[0]
                pay = pa[1]
            row_slack = slack[r]
            row_blockers = blockers[r]
            row_margins = margins[r]
            row_near = nears[r]
            blocking = g > 0
            for bid in slot_members:
                if bid == aid:
                    continue
                if euclid:
                    q = pos[bid]
                    dx = pax - q[0]
                    dy = pay - q[1]
                    d = sqrt(dx * dx + dy * dy)
                elif dist_within is not None:
                    # Bounded BFS: distances beyond near_cut only ever
                    # dismiss, so inf is as good as the true value.
                    d = dist_within(pa, pos[bid], near_cut)
                else:
                    d = dist(pa, pos[bid])
                sl = d - thr
                if sl < row_slack:
                    row_slack = sl
                if d <= near_cut:
                    row_near.append(bid)
                    if blocking and d <= thr:
                        row_blockers.add(bid)
                        row_margins[bid] = thr - d
            slack[r] = row_slack
        return blockers, slack, margins, nears

    def _scan_fallback(self, aid: int, s: int, pos_a: Position) -> set[int]:
        """Non-bucketed spaces: one index query at the worst-case radius."""
        self.fallback_scans += 1
        step = self.step
        pos = self.pos
        rules = self.rules
        radius = rules.block_threshold(s - self._min_step)
        blocked = rules.blocked
        blockers: set[int] = set()
        for bid in self.index.query_into(pos_a, radius, self._qbuf):
            if bid != aid and blocked(pos_a, s, pos[bid], step[bid]):
                blockers.add(bid)
        return blockers

    # -- lifecycle ----------------------------------------------------------

    def mark_running(self, aids: Iterable[int]) -> None:
        aids = list(aids)
        self.invalidate_components(aids)
        for aid in aids:
            if self.blocked_by[aid]:
                raise SchedulingError(
                    f"agent {aid} dispatched while blocked by "
                    f"{sorted(self.blocked_by[aid])}")
            if self.running[aid]:
                raise SchedulingError(f"agent {aid} already running")
            self.running[aid] = True

    def abort_running(self, aids: Iterable[int]) -> None:
        """Exact inverse of :meth:`mark_running` for a failed cluster.

        The members return to the dispatchable pool with step, position,
        and blocked edges untouched — nothing was committed, so nothing
        else in the graph moved. Memoized coupling components are
        invalidated (the members become BFS-visible again), exactly
        mirroring the invalidation :meth:`mark_running` performed.
        """
        aids = list(aids)
        self.invalidate_components(aids)
        for aid in aids:
            if not self.running[aid]:
                raise SchedulingError(
                    f"cannot abort agent {aid}: not running")
            self.running[aid] = False

    def commit(self, aids: Iterable[int],
               new_positions: "Mapping[int, Position] | np.ndarray"
               ) -> CommitResult:
        """Retire a batch of finished clusters, one step each.

        ``aids`` may span several clusters (ack coalescing hands the
        whole same-instant batch over at once); every member advances
        one step and moves. ``new_positions`` is either a mapping by
        agent id or a ``(k, 2)`` row array aligned with ``aids`` (the
        replay driver gathers it straight from the trace's step-major
        position store). Returns a :class:`CommitResult`: agents whose
        blocker set became empty (newly dispatchable candidates,
        committed members included) plus the agents within coupling
        range of the members' new positions. Memoized coupling
        components of the members and that neighborhood are dropped
        here, and the per-member lists become the BFS seeds for the
        next round — no caller-side invalidation protocol.
        """
        members = list(aids)
        running = self.running
        for aid in members:
            if not running[aid]:
                raise SchedulingError(f"agent {aid} was not running")
            running[aid] = False
        if not members:
            return CommitResult(set(), set())
        if isinstance(new_positions, np.ndarray):
            arr = new_positions
            rows: list[Position] = [(r[0], r[1]) for r in arr.tolist()]
        else:
            arr = None
            rows = [new_positions[aid] for aid in members]
        if self._bucket_fast:
            unblocked, per_member = self._commit_fast(members, rows, arr)
        else:
            unblocked, per_member = self._commit_generic(members, rows)
        self._release_waiters(members, unblocked)
        neighbors: set[int] = set()
        for lst in per_member.values():
            neighbors.update(lst)
        self.invalidate_components(members)
        self.invalidate_components(neighbors)
        self._fresh = per_member
        return CommitResult(unblocked, neighbors, per_member)

    def _advance_steps(self, members: list[int]) -> None:
        """Step/min/max bookkeeping shared by both commit paths."""
        step = self.step
        counts = self._step_counts
        max_step = self._max_step
        for aid in members:
            old = step[aid]
            c = counts[old] - 1
            if c:
                counts[old] = c
            else:
                del counts[old]
            new = old + 1
            step[aid] = new
            counts[new] = counts.get(new, 0) + 1
            if new > max_step:
                max_step = new
        self._max_step = max_step
        # Steps only grow, so min_step is non-decreasing: walk it up
        # only when the committed members drained its bucket.
        if counts and self._min_step not in counts:
            ms = self._min_step
            while ms not in counts:
                ms += 1
            self._min_step = ms

    def _register_blockers(self, aid: int, s: int, new_blockers: set[int],
                           margins: dict[int, float]) -> None:
        self.blocked_events += 1
        self.blocked_by[aid] = new_blockers
        waiters = self.waiters
        wake = self._wake
        step = self.step
        for bid in new_blockers:
            waiters[bid].add(aid)
            wake[bid][aid] = self._wake_step(step[bid], s - step[bid],
                                             margins[bid])

    def _migrate_slots(self, members: list[int],
                       oc_list: list[tuple], nc_list: list[tuple]) -> None:
        """Grouped step/cell slot migration (shared vectorized tail).

        ``oc_list``/``nc_list`` carry each member's old/new cell,
        derived in one numpy pass by the caller; shared ``(step, cell)``
        keys retire through one discard/add each. The grouping dicts
        persist across calls (cleared, not reallocated): large-batch
        commits run every round at scale, and rebuilding the dicts per
        call showed up in the 100k-agent profile.
        """
        step = self.step
        move_bucketed = self.index.move_bucketed
        removals = self._mig_removals
        additions = self._mig_additions
        removals.clear()
        additions.clear()
        for i, aid in enumerate(members):
            old_step = step[aid]
            oc = oc_list[i]
            nc = nc_list[i]
            if nc != oc:
                move_bucketed(aid, oc, nc)
            removals.setdefault((old_step,) + oc, []).append(aid)
            additions.setdefault((old_step + 1,) + nc, []).append(aid)
        self._advance_steps(members)
        # Old keys never collide with new ones (the step advanced).
        for key, ids in removals.items():
            self._bucket_discard(key, ids)
        for key, ids in additions.items():
            self._bucket_add(key, ids)

    def _commit_fast(self, members: list[int], rows: list[Position],
                     arr: "np.ndarray | None"
                     ) -> tuple[set[int], dict[int, list[int]]]:
        k = len(members)
        step = self.step
        pos = self.pos
        index = self.index
        cell = index.cell
        move_bucketed = index.move_bucketed
        cells = self._cellxy
        nc_list: list[tuple[int, int]] = []
        if k >= _VEC_BATCH and self._coord_vec:
            # Vectorized cell derivation (coordinate spaces): one numpy
            # pass for the whole batch serves the fine index and the
            # step-bucketed index alike (both match Space.bucket
            # semantics), old cells come from the per-agent cell store,
            # and grouped slot migration retires shared (step, cell)
            # keys once.
            newpos = arr if arr is not None else np.array(
                rows, dtype=np.float64)
            nc_arr = np.floor_divide(newpos, cell).astype(np.int64)
            nc_list = [(c[0], c[1]) for c in nc_arr.tolist()]
            oc_list = [cells[aid] for aid in members]
            midx = np.asarray(members, dtype=np.intp)
            self._posarr[midx] = newpos
            self._cellarr[midx] = nc_arr
            for i, aid in enumerate(members):
                pos[aid] = rows[i]
                cells[aid] = nc_list[i]
            self._migrate_slots(members, oc_list, nc_list)
        elif k >= _VEC_BATCH and self._graph_vec:
            # Graph metric, dense node ids: the same numpy path with
            # cells from GraphSpace.bucket_mat over the node-id column
            # instead of coordinate floor division.
            bucket_mat = self.rules.space.bucket_mat
            new_nodes = arr[:, 0].astype(np.int64) if arr is not None \
                else np.fromiter((r[0] for r in rows), dtype=np.int64,
                                 count=k)
            nb0, nb1 = bucket_mat(new_nodes, cell)
            nc_list = list(zip(nb0.tolist(), nb1.tolist()))
            oc_list = [cells[aid] for aid in members]
            for i, aid in enumerate(members):
                pos[aid] = rows[i]
                cells[aid] = nc_list[i]
            self._migrate_slots(members, oc_list, nc_list)
        elif self._coord_vec:
            # Small batch (the steady-state norm): one fused pass per
            # member, no grouping dicts, bucket transfer only on cell
            # crossings.
            parr = self._posarr
            carr = self._cellarr
            for i, aid in enumerate(members):
                old_step = step[aid]
                new_p = rows[i]
                pos[aid] = new_p
                parr[aid, 0] = new_p[0]
                parr[aid, 1] = new_p[1]
                nc = (int(new_p[0] // cell), int(new_p[1] // cell))
                oc = cells[aid]
                if nc != oc:
                    move_bucketed(aid, oc, nc)
                    cells[aid] = nc
                    carr[aid, 0] = nc[0]
                    carr[aid, 1] = nc[1]
                nc_list.append(nc)
                self._bucket_discard((old_step,) + oc, (aid,))
                self._bucket_add((old_step + 1,) + nc, (aid,))
            self._advance_steps(members)
        else:
            # Non-coordinate spaces without dense node ids: identical
            # bookkeeping, cells from Space.bucket instead of floor
            # division.
            bucket = self.rules.space.bucket
            for i, aid in enumerate(members):
                old_step = step[aid]
                new_p = rows[i]
                pos[aid] = new_p
                nc = bucket(new_p, cell)
                oc = cells[aid]
                if nc != oc:
                    move_bucketed(aid, oc, nc)
                    cells[aid] = nc
                nc_list.append(nc)
                self._bucket_discard((old_step,) + oc, (aid,))
                self._bucket_add((old_step + 1,) + nc, (aid,))
            self._advance_steps(members)

        # Blocker work, slack-gated per member: skip entirely while the
        # recorded slack outlasts the worst-case shrink, re-examine only
        # the near set while the shrink stays within the horizon, and
        # fall back to the indexed scan only past it.
        min_step = self._min_step
        two_mv = self._two_mv
        horizon = self._slack_horizon
        scan_step = self._scan_step
        scan_slack = self._scan_slack
        near_sets = self._near
        unblocked: set[int] = set()
        scan_rows: list[int] = []
        for i, aid in enumerate(members):
            s = step[aid]
            if s <= min_step:
                unblocked.add(aid)
                continue
            near = near_sets[aid]
            if near is not None:
                shrink = two_mv * (s - scan_step[aid])
                if shrink < scan_slack[aid]:
                    self.scan_skips += 1
                    unblocked.add(aid)
                    continue
                if shrink <= horizon:
                    new_blockers, margins = self._check_near(aid, s, near)
                    if new_blockers:
                        self._register_blockers(aid, s, new_blockers,
                                                margins)
                    else:
                        unblocked.add(aid)
                    continue
            scan_rows.append(i)
        if scan_rows:
            self.scans += len(scan_rows)
            ids = [members[i] for i in scan_rows]
            svs = [step[a] for a in ids]
            cells = [nc_list[i] for i in scan_rows]
            ppos = [pos[a] for a in ids]
            found, slacks, margins, nears = self._scan_rows(ids, svs,
                                                            cells, ppos)
            for r, aid in enumerate(ids):
                scan_step[aid] = svs[r]
                scan_slack[aid] = slacks[r]
                near_sets[aid] = nears[r]
                new_blockers = found[r]
                if new_blockers:
                    self._register_blockers(aid, svs[r], new_blockers,
                                            margins[r])
                else:
                    unblocked.add(aid)
        return unblocked, self._neighbors_fast(members)

    def _neighbors_fast(self, members: list[int]
                        ) -> dict[int, list[int]]:
        """Per-member coupling-range neighborhoods, one pass.

        Candidates come from each member's cell window (the coupling
        radius never exceeds the cell size, so the window spanned by
        the query box is 2x2 in the common case, up to 3x3 when the
        box is boundary-aligned). Small batches query the index per
        member; large ones collect the candidate union and run one
        vectorized distance matrix (coordinate spaces only — graph
        spaces always take the per-member query, whose bucket_range
        window plays the same candidate-pruning role).
        """
        buckets = self.index._buckets
        pos = self.pos
        cell = self.index.cell
        r = self.rules.couple_threshold
        per_member: dict[int, list[int]] = {}
        if not self.index._grid:
            query_into = self.index.query_into
            qbuf = self._qbuf
            for aid in members:
                per_member[aid] = [bid for bid
                                   in query_into(pos[aid], r, qbuf)
                                   if bid != aid]
            return per_member
        if len(members) < _VEC_BATCH or not self._coord_vec:
            # Inlined grid query: same cell window as query_into, but
            # the self-check and the buffer copy are fused away, and
            # the Euclidean membership test runs as a plain squared-
            # distance expression (no per-candidate call).
            within = self.index._within
            euclid = self._euclid
            r2 = r * r
            for aid in members:
                pa = pos[aid]
                x = pa[0]
                y = pa[1]
                cx1 = int((x + r) // cell)
                cy1 = int((y + r) // cell)
                found: list[int] = []
                for bx in range(int((x - r) // cell), cx1 + 1):
                    for by in range(int((y - r) // cell), cy1 + 1):
                        b = buckets.get((bx, by))
                        if not b:
                            continue
                        if euclid:
                            for bid in b:
                                if bid != aid:
                                    q = pos[bid]
                                    dx = x - q[0]
                                    dy = y - q[1]
                                    if dx * dx + dy * dy <= r2:
                                        found.append(bid)
                        else:
                            for bid in b:
                                if bid != aid and within(pa, pos[bid], r):
                                    found.append(bid)
                per_member[aid] = found
            return per_member
        if 4 * len(members) >= self.n_agents:
            # The batch covers most of the shard (lock-step worlds):
            # run the no-python-per-member cell join over the
            # contiguous mirrors instead of walking buckets.
            return self._neighbors_vec(members, per_member)
        # Group members by their own cell: members of one cell share a
        # 3x3 candidate window (r <= cell), so each group runs a small
        # *local* distance matrix. One global members x candidate-union
        # product is quadratic in the population once whole-map batches
        # commit at the same instant (the tiled 100k workload) — the
        # grouped form keeps commit work O(local) at any batch size.
        groups: dict[tuple[int, int], list[int]] = {}
        for aid in members:
            pa = pos[aid]
            k = (int(pa[0] // cell), int(pa[1] // cell))
            g = groups.get(k)
            if g is None:
                groups[k] = g = []
            g.append(aid)
        within_mat = self.rules.space.within_mat
        within = self.index._within
        euclid = self._euclid
        r2 = r * r
        for (cx, cy), gmembers in groups.items():
            if len(gmembers) < _VEC_BATCH:
                # Sparse cell: the exact per-member window walk beats
                # building a 3x3 candidate union for one or two agents.
                for aid in gmembers:
                    pa = pos[aid]
                    x = pa[0]
                    y = pa[1]
                    gx1 = int((x + r) // cell)
                    gy1 = int((y + r) // cell)
                    found: list[int] = []
                    for bx in range(int((x - r) // cell), gx1 + 1):
                        for by in range(int((y - r) // cell), gy1 + 1):
                            b = buckets.get((bx, by))
                            if not b:
                                continue
                            if euclid:
                                for bid in b:
                                    if bid != aid:
                                        q = pos[bid]
                                        dx = x - q[0]
                                        dy = y - q[1]
                                        if dx * dx + dy * dy <= r2:
                                            found.append(bid)
                            else:
                                for bid in b:
                                    if bid != aid \
                                            and within(pa, pos[bid], r):
                                        found.append(bid)
                    per_member[aid] = found
                continue
            cand: set[int] = set()
            for bx in range(cx - 1, cx + 2):
                for by in range(cy - 1, cy + 2):
                    b = buckets.get((bx, by))
                    if b:
                        cand.update(b)
            if len(cand) < _VEC_BATCH:
                for aid in gmembers:
                    pa = pos[aid]
                    x = pa[0]
                    y = pa[1]
                    found = []
                    if euclid:
                        for bid in cand:
                            if bid != aid:
                                q = pos[bid]
                                dx = x - q[0]
                                dy = y - q[1]
                                if dx * dx + dy * dy <= r2:
                                    found.append(bid)
                    else:
                        for bid in cand:
                            if bid != aid and within(pa, pos[bid], r):
                                found.append(bid)
                    per_member[aid] = found
                continue
            clist = list(cand)
            mpos = np.array([[pos[a][0], pos[a][1]] for a in gmembers],
                            dtype=np.float64)
            cpos = np.array([[pos[c][0], pos[c][1]] for c in clist],
                            dtype=np.float64)
            dx = mpos[:, 0][:, None] - cpos[:, 0][None, :]
            dy = mpos[:, 1][:, None] - cpos[:, 1][None, :]
            mask = within_mat(dx, dy, r)
            for aid in gmembers:
                per_member[aid] = []
            rows, cols = np.nonzero(mask)
            for i, c in zip(rows.tolist(), cols.tolist()):
                bid = clist[c]
                aid = gmembers[i]
                if bid != aid:
                    per_member[aid].append(bid)
        return per_member

    def _neighbors_vec(self, members: list[int],
                       per_member: dict[int, list[int]]
                       ) -> dict[int, list[int]]:
        """Whole-batch neighborhoods with no per-member python work.

        Cell-sorts the full population once (contiguous mirrors), then
        joins each member's 3x3 cell window against the sorted runs —
        searchsorted + one ragged gather per window offset. Candidate
        windows are supersets of the exact per-member query box
        (``r <= cell``), and the exact ``within_mat`` filter keeps the
        result identical to the scalar paths. Members without any
        neighbor share one immutable empty list: every consumer treats
        the per-member lists as read-only.
        """
        parr = self._posarr
        carr = self._cellarr
        n = self.n_agents
        r = self.rules.couple_threshold
        cy = carr[:, 1]
        ylo = int(cy.min())
        yspan = int(cy.max()) - ylo + 3
        keys = carr[:, 0] * yspan + (cy - ylo)
        order = np.argsort(keys, kind="stable")
        skeys = keys[order]
        starts = np.nonzero(np.r_[True, skeys[1:] != skeys[:-1]])[0]
        ukeys = skeys[starts]
        ends = np.r_[starts[1:], n]
        marr = np.asarray(members, dtype=np.intp)
        mkeys = keys[marr]
        mpos = parr[marr]
        for aid in members:
            per_member[aid] = _EMPTY
        within_mat = self.rules.space.within_mat
        last = len(ukeys) - 1
        pair_mi: list[np.ndarray] = []
        pair_bid: list[np.ndarray] = []
        for d0 in (-1, 0, 1):
            for d1 in (-1, 0, 1):
                tk = mkeys + (d0 * yspan + d1)
                li = np.minimum(np.searchsorted(ukeys, tk), last)
                hm = np.nonzero(ukeys[li] == tk)[0]
                if not len(hm):
                    continue
                rs = starts[li[hm]]
                counts = ends[li[hm]] - rs
                total = int(counts.sum())
                offs = np.cumsum(counts) - counts
                flat = (np.arange(total, dtype=np.intp)
                        - np.repeat(offs, counts) + np.repeat(rs, counts))
                cids = order[flat]
                mrows = np.repeat(hm, counts)
                dx = mpos[mrows, 0] - parr[cids, 0]
                dy = mpos[mrows, 1] - parr[cids, 1]
                mask = within_mat(dx, dy, r) & (cids != marr[mrows])
                if mask.any():
                    pair_mi.append(mrows[mask])
                    pair_bid.append(cids[mask])
        if pair_mi:
            for i, b in zip(np.concatenate(pair_mi).tolist(),
                            np.concatenate(pair_bid).tolist()):
                aid = members[i]
                lst = per_member[aid]
                if lst is _EMPTY:
                    per_member[aid] = [b]
                else:
                    lst.append(b)
        return per_member

    def _commit_generic(self, members: list[int], rows: list[Position]
                        ) -> tuple[set[int], dict[int, list[int]]]:
        """Non-bucketed spaces: per-member queries (no numpy batch path)."""
        step = self.step
        pos = self.pos
        index = self.index
        for i, aid in enumerate(members):
            new_p = rows[i]
            pos[aid] = new_p
            index.move(aid, new_p)
        self._advance_steps(members)
        min_step = self._min_step
        couple_r = self.rules.couple_threshold
        qbuf = self._qbuf
        unblocked: set[int] = set()
        per_member: dict[int, list[int]] = {}
        block_threshold = self.rules.block_threshold
        dist = self.rules.space.dist
        for aid in members:
            s = step[aid]
            pos_a = pos[aid]
            if s > min_step:
                self.scans += 1
                new_blockers = self._scan_fallback(aid, s, pos_a)
            else:
                new_blockers = set()
            per_member[aid] = [bid for bid
                               in index.query_into(pos_a, couple_r, qbuf)
                               if bid != aid]
            if new_blockers:
                margins = {
                    bid: block_threshold(s - step[bid])
                    - dist(pos_a, pos[bid])
                    for bid in new_blockers}
                self._register_blockers(aid, s, new_blockers, margins)
            else:
                unblocked.add(aid)
        return unblocked, per_member

    def _wake_step(self, blocker_step: int, gap: int, margin: float) -> int:
        """Last blocker step at which the pair is provably still blocked.

        Per blocker commit the margin shrinks by at most ``2 * max_vel``
        (it moves up to ``max_vel`` away while the threshold drops by
        ``max_vel``), and the pair dissolves outright once the gap
        closes — whichever bound is nearer.
        """
        two_mv = self._two_mv
        free = int(margin // two_mv) if two_mv else gap - 1
        if free > gap - 1:
            free = gap - 1
        return blocker_step + free

    def _release_waiters(self, members: list[int],
                         unblocked: set[int]) -> None:
        """Re-examine (or wake-skip) every waiter of the committed batch."""
        step = self.step
        pos = self.pos
        waiters = self.waiters
        blocked_by = self.blocked_by
        wake = self._wake
        dist = self.rules.space.dist
        dist_within = self._dist_within
        euclid = self._euclid
        sqrt = math.sqrt
        base_r = self._base_r
        mv = self.rules.max_vel
        for b in members:
            w = waiters[b]
            if not w:
                continue
            s_b = step[b]
            pos_b = pos[b]
            wake_b = wake[b]
            for a in list(w):
                wk = wake_b.get(a)
                if wk is not None and s_b <= wk:
                    self.wake_skips += 1
                    continue
                self.wake_checks += 1
                g = step[a] - s_b
                if g > 0:
                    thr = base_r + g * mv  # == block_threshold(g)
                    if euclid:
                        q = pos[a]
                        dx = q[0] - pos_b[0]
                        dy = q[1] - pos_b[1]
                        d = sqrt(dx * dx + dy * dy)
                    elif dist_within is not None:
                        d = dist_within(pos[a], pos_b, thr)
                    else:
                        d = dist(pos[a], pos_b)
                    if d <= thr:
                        wake_b[a] = self._wake_step(s_b, g, thr - d)
                        continue
                w.discard(a)
                wake_b.pop(a, None)
                bb = blocked_by[a]
                bb.discard(b)
                if not bb:
                    unblocked.add(a)
                    self.unblock_events += 1
