"""§3.3 spatiotemporal dependency graph.

Each node is an agent with its current step and position. A *blocked*
edge ``B -> A`` means A (about to run its step) must wait for B (at a
strictly smaller step) to finish; *coupling* is evaluated by the
clustering layer at dispatch time. Like the scoreboard in hardware
out-of-order execution, the graph is maintained incrementally:

* when a cluster commits, each member advances one step, moves, and has
  its blocker set recomputed (its step gap to laggards grew);
* every waiter registered on a member is re-examined against the member's
  new state and released if the blocking condition no longer holds.

Two properties of the rules make this sound (proved in the test suite):
an agent's commit can never *create* a blocked edge toward an agent at a
larger step (the threshold shrinks faster than the agent can move), and
only agents at strictly smaller steps can block — so re-examining members
and their waiters covers every edge that can change.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..errors import SchedulingError
from .clustering import SpatialIndex
from .rules import DependencyRules
from .space import Position


class SpatioTemporalGraph:
    """Incrementally-maintained blocked-edge graph over all agents."""

    def __init__(self, rules: DependencyRules,
                 initial_positions: Mapping[int, Position],
                 start_step: int = 0) -> None:
        self.rules = rules
        self.n_agents = len(initial_positions)
        self.step: dict[int, int] = {}
        self.pos: dict[int, Position] = {}
        self.running: dict[int, bool] = {}
        self.blocked_by: dict[int, set[int]] = {}
        self.waiters: dict[int, set[int]] = {}
        self.index = SpatialIndex(rules.space,
                                  cell=max(rules.couple_threshold, 1.0))
        #: agents per step value, for O(1) min-step maintenance.
        self._step_counts: dict[int, int] = {}
        self._min_step = start_step
        self._max_step = start_step
        # instrumentation
        self.blocked_events = 0
        self.unblock_events = 0
        for aid, pos in initial_positions.items():
            self.step[aid] = start_step
            self.pos[aid] = pos
            self.running[aid] = False
            self.blocked_by[aid] = set()
            self.waiters[aid] = set()
            self.index.insert(aid, pos)
        self._step_counts[start_step] = self.n_agents

    # -- queries ----------------------------------------------------------

    @property
    def min_step(self) -> int:
        return self._min_step

    @property
    def max_step(self) -> int:
        return self._max_step

    def is_blocked(self, aid: int) -> bool:
        return bool(self.blocked_by[aid])

    def blockers_of(self, aid: int) -> frozenset[int]:
        return frozenset(self.blocked_by[aid])

    def state(self, aid: int) -> tuple[int, Position]:
        return self.step[aid], self.pos[aid]

    def snapshot(self) -> list[tuple[int, int, Position]]:
        """``(aid, step, pos)`` for every agent (for validation)."""
        return [(aid, self.step[aid], self.pos[aid])
                for aid in sorted(self.step)]

    def validate(self) -> None:
        """Assert the §3.2 validity condition for the whole state."""
        self.rules.validate_state(self.snapshot())

    # -- edge maintenance --------------------------------------------------

    def compute_blockers(self, aid: int) -> set[int]:
        """Scan for agents currently blocking ``aid`` (spatially pruned)."""
        s = self.step[aid]
        if s <= self._min_step:
            return set()
        radius = self.rules.block_threshold(s - self._min_step)
        blockers = set()
        for bid in self.index.query(self.pos[aid], radius):
            if bid == aid:
                continue
            if self.rules.blocked(self.pos[aid], s,
                                  self.pos[bid], self.step[bid]):
                blockers.add(bid)
        return blockers

    def refresh_blockers(self, aid: int) -> None:
        """Recompute and re-register ``aid``'s blocked edges."""
        for bid in self.blocked_by[aid]:
            self.waiters[bid].discard(aid)
        new = self.compute_blockers(aid)
        self.blocked_by[aid] = new
        for bid in new:
            self.waiters[bid].add(aid)
        if new:
            self.blocked_events += 1

    # -- lifecycle ----------------------------------------------------------

    def mark_running(self, aids: Iterable[int]) -> None:
        for aid in aids:
            if self.blocked_by[aid]:
                raise SchedulingError(
                    f"agent {aid} dispatched while blocked by "
                    f"{sorted(self.blocked_by[aid])}")
            if self.running[aid]:
                raise SchedulingError(f"agent {aid} already running")
            self.running[aid] = True

    def commit(self, aids: Iterable[int],
               new_positions: Mapping[int, Position]) -> set[int]:
        """Advance a finished cluster one step.

        Returns agents whose blocker set became empty (newly unblocked
        candidates the controller should try to re-cluster/dispatch),
        plus the committed members themselves if they are unblocked.
        """
        members = list(aids)
        candidates: set[int] = set()
        for aid in members:
            if not self.running[aid]:
                raise SchedulingError(f"agent {aid} was not running")
            self.running[aid] = False
            old = self.step[aid]
            self._step_counts[old] -= 1
            if self._step_counts[old] == 0:
                del self._step_counts[old]
            self.step[aid] = old + 1
            self._step_counts[old + 1] = \
                self._step_counts.get(old + 1, 0) + 1
            self.pos[aid] = new_positions[aid]
            self.index.move(aid, self.pos[aid])
            if old + 1 > self._max_step:
                self._max_step = old + 1
        if self._step_counts:
            self._min_step = min(self._step_counts)
        # Members may now be blocked at their new step.
        for aid in members:
            self.refresh_blockers(aid)
            if not self.blocked_by[aid]:
                candidates.add(aid)
        # Waiters of members may be released (or still held).
        for aid in members:
            for waiter in list(self.waiters[aid]):
                if not self.rules.blocked(
                        self.pos[waiter], self.step[waiter],
                        self.pos[aid], self.step[aid]):
                    self.waiters[aid].discard(waiter)
                    self.blocked_by[waiter].discard(aid)
                    if not self.blocked_by[waiter]:
                        candidates.add(waiter)
                        self.unblock_events += 1
        return candidates
