"""Region-sharded controller state (the million-agent unlock).

The scheduler's per-commit work is already O(local) thanks to the
banded blocker index, but one controller still owns every agent's
graph state, component memo, and slot table. At 100k–1M agents the
flat structures themselves (python lists, per-agent sets) dominate.
This module partitions the *map* into regions and gives each region
its own :class:`~repro.core.dependency_graph.SpatioTemporalGraph`
shard over the shared step-major numpy position store, behind a
facade that preserves the single-graph API bit-for-bit.

**Why equivalence is exact, not approximate.** The planner's region
margin is the conservative cross-boundary coupling taken to its sound
extreme: any pair of agents that could *ever* interact over the whole
trace — blocked at the worst-case step gap, or coupled — is placed in
the same atomic region, so the cross-shard interaction set is empty
by construction and every blocked edge, coupling component, wake
step, and commit result is computed by exactly one shard exactly as
the single graph would:

* **coordinate metrics** — every supported coordinate metric
  (L2 / L-inf / L1) lower-bounds distance by the x-axis difference,
  and replayed agents never leave their trace bounding box. Agents
  are sorted by bbox ``xmin`` and swept into one region while
  ``xmin_next <= max(xmax so far) + M`` with
  ``M = radius_p + (n_steps + 1) * max_vel`` — the largest blocking
  threshold any step gap in the trace can produce. Distinct regions
  therefore keep x-distance ``> M`` forever: no blocking, no
  coupling, at any reachable gap;
* **graph metric** — agents move along edges, so they can never leave
  their start node's connected component, and cross-component hop
  distance is infinite. Atomic regions are the components.

Atomic regions are balanced into at most ``max_shards`` shards
(largest region first onto the lightest shard — deterministic), and
the planner returns ``None`` when fewer than two regions exist, in
which case the driver keeps the plain single graph: sharding never
degrades a workload it cannot split.

Shard-local ``min_step`` is sound: only same-shard agents can block,
and each shard's min-step is exact over exactly those agents (a
smaller global min would only widen scans over slots that cannot
pass the exact per-slot test anyway).
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from .dependency_graph import CommitResult, SpatioTemporalGraph
from .rules import DependencyRules
from .space import Position


def plan_regions(trace, rules: DependencyRules,
                 max_shards: int) -> list[list[int]] | None:
    """Partition agents into at most ``max_shards`` independent regions.

    Returns per-shard sorted global agent-id lists, or ``None`` when
    the workload yields fewer than two atomic regions (the caller
    should then keep the unsharded graph). See the module docstring
    for the exactness argument.
    """
    if max_shards < 2:
        return None
    pos_sa = trace.positions_by_step
    n = pos_sa.shape[1]
    if n < 2:
        return None
    space = rules.space
    if getattr(space, "grid_bucketing", False):
        regions = _coordinate_regions(pos_sa, rules)
    elif hasattr(space, "components_of") and getattr(
            space, "dense_node_cells", False):
        comp = space.components_of(pos_sa[0, :, 0].astype(np.int64))
        regions = _group_by_label(comp)
    elif hasattr(space, "component_of"):
        comp = np.fromiter(
            (space.component_of((int(r[0]), int(r[1])))
             for r in pos_sa[0]), dtype=np.int64, count=n)
        regions = _group_by_label(comp)
    else:
        return None
    if len(regions) < 2:
        return None
    return _balance(regions, max_shards)


def _coordinate_regions(pos_sa: np.ndarray,
                        rules: DependencyRules) -> list[list[int]]:
    """Sweep-merge per-agent x bounding boxes under the trace margin."""
    n_steps = pos_sa.shape[0] - 1
    xs = pos_sa[:, :, 0]
    xmin = xs.min(axis=0).astype(np.float64)
    xmax = xs.max(axis=0).astype(np.float64)
    margin = rules.radius_p + (n_steps + 1) * rules.max_vel
    order = np.argsort(xmin, kind="stable")
    regions: list[list[int]] = []
    cur: list[int] = []
    cur_max = -np.inf
    for aid in order.tolist():
        if cur and xmin[aid] > cur_max + margin:
            regions.append(cur)
            cur = []
            cur_max = -np.inf
        cur.append(aid)
        if xmax[aid] > cur_max:
            cur_max = xmax[aid]
    if cur:
        regions.append(cur)
    return regions


def _group_by_label(labels: np.ndarray) -> list[list[int]]:
    """Agent ids grouped by integer label, regions in label order."""
    order = np.argsort(labels, kind="stable")
    sorted_labels = labels[order]
    breaks = np.flatnonzero(np.diff(sorted_labels)) + 1
    bounds = [0, *breaks.tolist(), len(order)]
    olist = order.tolist()
    return [olist[bounds[i]:bounds[i + 1]]
            for i in range(len(bounds) - 1)]


def _balance(regions: list[list[int]],
             max_shards: int) -> list[list[int]]:
    """Bin atomic regions into balanced shards, deterministically.

    Largest region first onto the currently lightest shard (ties by
    shard index); regions are indivisible, so the result is exact as
    long as each shard's member set is a union of regions. Members
    are sorted so local dense ids map monotonically to global ids.
    """
    n_shards = min(max_shards, len(regions))
    shards: list[list[int]] = [[] for _ in range(n_shards)]
    loads = [0] * n_shards
    order = sorted(range(len(regions)),
                   key=lambda i: (-len(regions[i]), i))
    for i in order:
        target = loads.index(min(loads))
        shards[target].extend(regions[i])
        loads[target] += len(regions[i])
    for members in shards:
        members.sort()
    return shards


def assign_shards(shard_sizes: list[int],
                  max_workers: int) -> list[list[int]]:
    """Group shard indices onto at most ``max_workers`` workers.

    The multiprocess controller's placement step: the same
    deterministic LPT rule :func:`_balance` applies to regions
    (heaviest shard first onto the lightest worker, ties by worker
    index), so worker loads stay balanced and the parallel critical
    path — the slowest worker — stays close to ``total / workers``.
    Returns per-worker sorted shard-index lists; workers with no shard
    are never created (the list is at most ``len(shard_sizes)`` long).
    """
    n_workers = max(1, min(max_workers, len(shard_sizes)))
    groups: list[list[int]] = [[] for _ in range(n_workers)]
    loads = [0] * n_workers
    order = sorted(range(len(shard_sizes)),
                   key=lambda i: (-shard_sizes[i], i))
    for i in order:
        target = loads.index(min(loads))
        groups[target].append(i)
        loads[target] += shard_sizes[i]
    for group in groups:
        group.sort()
    return groups


class _ShardedIndex:
    """Spatial-query shim over the shards' indexes (global ids).

    Serves the facade's ``graph.index.query`` consumers (interactive
    dependency cones, speculative squash neighborhoods). Shards whose
    region does not contain the query position return nothing, so the
    concatenation equals the single-index result.
    """

    __slots__ = ("_owner",)

    def __init__(self, owner: "ShardedGraph") -> None:
        self._owner = owner

    def query(self, pos: Position, radius: float) -> list[int]:
        owner = self._owner
        out: list[int] = []
        for si, sub in enumerate(owner._shards):
            l2g = owner._l2g[si]
            out.extend(l2g[lid] for lid in sub.index.query(pos, radius))
        return out


class ShardedGraph:
    """Single-graph facade over per-region dependency-graph shards.

    Mirrors the :class:`SpatioTemporalGraph` surface the drivers use —
    ``step``/``pos``/``running``/``blocked_by`` state tables, commit /
    mark_running / component / blocker queries, counters — translating
    between global agent ids and each shard's dense local ids. Local
    ids are assigned in increasing global order per shard, so sorted
    local results translate to sorted global results for free.

    ``blocked_by`` holds *references to the shards' local blocker
    sets*: truthiness (all the drivers read from it) is exact, but the
    contained ids are shard-local — use :meth:`blockers_of` /
    :meth:`compute_blockers` for translated contents.
    """

    def __init__(self, rules: DependencyRules,
                 initial_positions: np.ndarray,
                 shard_members: list[list[int]],
                 start_step: int = 0,
                 band_size: int | None = None) -> None:
        self.rules = rules
        n = len(initial_positions)
        self.n_agents = n
        self._shards: list[SpatioTemporalGraph] = []
        self._l2g: list[list[int]] = []
        self._g2l: list[int] = [0] * n
        self._shard_of: list[int] = [0] * n
        self.step: list[int] = [start_step] * n
        self.pos: list[Position] = [
            (r[0], r[1]) for r in initial_positions.tolist()]
        self.running: list[bool] = [False] * n
        self.blocked_by: list[set[int]] = [set()] * n
        covered = 0
        for si, members in enumerate(shard_members):
            self._l2g.append(members)
            g2l = self._g2l
            shard_of = self._shard_of
            for li, g in enumerate(members):
                g2l[g] = li
                shard_of[g] = si
            sub = SpatioTemporalGraph(
                rules,
                initial_positions[np.asarray(members, dtype=np.intp)],
                start_step=start_step, band_size=band_size)
            self._shards.append(sub)
            sub_bb = sub.blocked_by
            for li, g in enumerate(members):
                self.blocked_by[g] = sub_bb[li]
            covered += len(members)
        if covered != n:
            raise ValueError(
                f"shard members cover {covered} of {n} agents")
        self.index = _ShardedIndex(self)

    # -- facade bookkeeping ------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def _grouped(self, aids: Iterable[int]
                 ) -> dict[int, tuple[list[int], list[int]]]:
        """Split global ids by shard: ``si -> (local ids, global ids)``,
        preserving the caller's order within each shard."""
        shard_of = self._shard_of
        g2l = self._g2l
        groups: dict[int, tuple[list[int], list[int]]] = {}
        for g in aids:
            si = shard_of[g]
            entry = groups.get(si)
            if entry is None:
                groups[si] = entry = ([], [])
            entry[0].append(g2l[g])
            entry[1].append(g)
        return groups

    # -- queries -----------------------------------------------------------

    @property
    def min_step(self) -> int:
        return min(s.min_step for s in self._shards)

    @property
    def max_step(self) -> int:
        return max(s.max_step for s in self._shards)

    def is_blocked(self, aid: int) -> bool:
        return bool(self.blocked_by[aid])

    def blockers_of(self, aid: int) -> frozenset[int]:
        si = self._shard_of[aid]
        l2g = self._l2g[si]
        return frozenset(
            l2g[b] for b in self._shards[si].blocked_by[self._g2l[aid]])

    def compute_blockers(self, aid: int) -> set[int]:
        si = self._shard_of[aid]
        l2g = self._l2g[si]
        return {l2g[b]
                for b in self._shards[si].compute_blockers(
                    self._g2l[aid])}

    def invocation_distance(self, aid: int) -> float:
        si = self._shard_of[aid]
        return self._shards[si].invocation_distance(self._g2l[aid])

    def state(self, aid: int) -> tuple[int, Position]:
        return self.step[aid], self.pos[aid]

    def snapshot(self) -> list[tuple[int, int, Position]]:
        return [(aid, self.step[aid], self.pos[aid])
                for aid in range(self.n_agents)]

    def validate(self) -> None:
        self.rules.validate_state(self.snapshot())

    # -- coupling components -----------------------------------------------

    def component_for(self, aid: int, visited: set[int],
                      exclude=None, strict: bool = False) -> list[int]:
        si = self._shard_of[aid]
        l2g = self._l2g[si]
        lexclude = None if exclude is None \
            else (lambda lid: exclude(l2g[lid]))
        lmembers = self._shards[si].component_for(
            self._g2l[aid], set(), lexclude, strict)
        members = [l2g[m] for m in lmembers]
        visited.update(members)
        return members

    def build_component(self, aid: int, visited: set[int],
                        exclude=None, strict: bool = False) -> list[int]:
        si = self._shard_of[aid]
        l2g = self._l2g[si]
        lexclude = None if exclude is None \
            else (lambda lid: exclude(l2g[lid]))
        lmembers = self._shards[si].build_component(
            self._g2l[aid], set(), lexclude, strict)
        members = [l2g[m] for m in lmembers]
        visited.update(members)
        return members

    def invalidate_components(self, aids: Iterable[int]) -> None:
        for si, (lids, _) in self._grouped(aids).items():
            self._shards[si].invalidate_components(lids)

    # -- lifecycle ----------------------------------------------------------

    def mark_running(self, aids: Iterable[int]) -> None:
        aids = list(aids)
        for si, (lids, _) in self._grouped(aids).items():
            self._shards[si].mark_running(lids)
        running = self.running
        for g in aids:
            running[g] = True

    def abort_running(self, aids: Iterable[int]) -> None:
        aids = list(aids)
        for si, (lids, _) in self._grouped(aids).items():
            self._shards[si].abort_running(lids)
        running = self.running
        for g in aids:
            running[g] = False

    def commit(self, aids: Iterable[int],
               new_positions: "Mapping[int, Position] | np.ndarray"
               ) -> CommitResult:
        members = list(aids)
        arr = new_positions if isinstance(new_positions, np.ndarray) \
            else None
        shard_of = self._shard_of
        g2l = self._g2l
        groups: dict[int, tuple[list[int], list[int], list[int]]] = {}
        for i, g in enumerate(members):
            si = shard_of[g]
            entry = groups.get(si)
            if entry is None:
                groups[si] = entry = ([], [], [])
            entry[0].append(g2l[g])
            entry[1].append(g)
            entry[2].append(i)
        unblocked: set[int] = set()
        neighbors: set[int] = set()
        per_member: dict[int, list[int]] = {}
        step = self.step
        pos = self.pos
        running = self.running
        blocked_by = self.blocked_by
        for si, (lids, gids, rowidx) in groups.items():
            sub = self._shards[si]
            l2g = self._l2g[si]
            if arr is not None:
                res = sub.commit(
                    lids, arr[np.asarray(rowidx, dtype=np.intp)])
            else:
                res = sub.commit(
                    lids, {lid: new_positions[g]
                           for lid, g in zip(lids, gids)})
            for lid in res.unblocked:
                unblocked.add(l2g[lid])
            for lid in res.neighbors:
                neighbors.add(l2g[lid])
            for lid, lst in res.member_neighbors.items():
                # Empty lists pass through unchanged (they are shared,
                # read-only objects on whole-shard commits).
                per_member[l2g[lid]] = [l2g[x] for x in lst] if lst \
                    else lst
            sub_step = sub.step
            sub_pos = sub.pos
            sub_bb = sub.blocked_by
            for lid, g in zip(lids, gids):
                step[g] = sub_step[lid]
                pos[g] = sub_pos[lid]
                running[g] = False
                # Commits rebind members' blocker sets (the scan path
                # installs a fresh set object) — re-alias so global
                # truthiness keeps tracking the shard's state.
                blocked_by[g] = sub_bb[lid]
        return CommitResult(unblocked, neighbors, per_member)

    # -- counters (summed over shards) ---------------------------------------

    @property
    def blocked_events(self) -> int:
        return sum(s.blocked_events for s in self._shards)

    @property
    def unblock_events(self) -> int:
        return sum(s.unblock_events for s in self._shards)

    @property
    def scans(self) -> int:
        return sum(s.scans for s in self._shards)

    @property
    def scan_skips(self) -> int:
        return sum(s.scan_skips for s in self._shards)

    @property
    def near_checks(self) -> int:
        return sum(s.near_checks for s in self._shards)

    @property
    def wake_checks(self) -> int:
        return sum(s.wake_checks for s in self._shards)

    @property
    def wake_skips(self) -> int:
        return sum(s.wake_skips for s in self._shards)

    @property
    def fallback_scans(self) -> int:
        return sum(s.fallback_scans for s in self._shards)

    @property
    def scanned_slots(self) -> int:
        return sum(s.scanned_slots for s in self._shards)

    @property
    def comp_hits(self) -> int:
        return sum(s.comp_hits for s in self._shards)

    @property
    def comp_misses(self) -> int:
        return sum(s.comp_misses for s in self._shards)
