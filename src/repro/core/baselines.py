"""Algorithm 1 baselines: ``single-thread`` and ``parallel-sync``.

Both enforce lock-step temporal causality exactly as the traditional
simulation loop does; they differ in intra-step parallelism:

* ``single-thread`` replicates the original GenAgent implementation — a
  single loop that processes one agent's step (and its LLM calls) at a
  time, exposing no request concurrency at all;
* ``parallel-sync`` lets all agents of the current step issue their
  chains concurrently but synchronizes globally before the next step —
  the "stronger baseline" of §4.1, whose parallelism is bounded by the
  per-step straggler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import SchedulerConfig
from ..devent import Kernel
from ..errors import SchedulingError
from ..serving import ServingEngine
from ..trace import Trace
from .tasks import ChainExecutor


@dataclass
class DriverStats:
    """Scheduling-side counters common to all drivers."""

    tasks_completed: int = 0
    clusters_dispatched: int = 0
    cluster_size_sum: int = 0
    blocked_events: int = 0
    unblock_events: int = 0
    #: step spread observed (max step - min step), peak over the run.
    max_step_spread: int = 0
    #: §3.6 critical-path accounting: wall-clock seconds the controller
    #: spent forming/refreshing clusters, updating the dependency graph
    #: on commits, and enqueueing/dispatching ready clusters. These are
    #: *host* seconds (the scheduler's real overhead), not virtual time.
    time_clustering: float = 0.0
    time_graph: float = 0.0
    time_dispatch: float = 0.0
    #: Controller rounds executed (with ack coalescing, one round can
    #: retire several cluster commits).
    controller_rounds: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def mean_cluster_size(self) -> float:
        if not self.clusters_dispatched:
            return 0.0
        return self.cluster_size_sum / self.clusters_dispatched

    @property
    def controller_time(self) -> float:
        """Total wall-clock seconds on the controller's critical path."""
        return self.time_clustering + self.time_graph + self.time_dispatch


class SingleThreadDriver:
    """One agent-step at a time, in (step, agent) order."""

    def __init__(self, kernel: Kernel, engine: ServingEngine, trace: Trace,
                 config: SchedulerConfig,
                 executor: ChainExecutor) -> None:
        self.kernel = kernel
        self.trace = trace
        self.config = config
        self.executor = executor
        self.stats = DriverStats()
        self._cursor = 0  # flat index: step * n_agents + agent
        self._total = trace.meta.n_agents * trace.meta.n_steps

    def start(self) -> None:
        self._dispatch_next()

    def _dispatch_next(self) -> None:
        if self._cursor >= self._total:
            return
        step, aid = divmod(self._cursor, self.trace.meta.n_agents)
        self._cursor += 1
        extra = (self.config.overhead.single_thread_step
                 if aid == 0 else 0.0)
        self.kernel.call_in(
            extra, self.executor.run_task, aid, step, float(step),
            self._task_done)

    def _task_done(self, aid: int, step: int) -> None:
        self.stats.tasks_completed += 1
        self._dispatch_next()

    def finished(self) -> bool:
        return self.stats.tasks_completed == self._total


class ParallelSyncDriver:
    """All agents issue step-s chains concurrently; global barrier at s+1."""

    def __init__(self, kernel: Kernel, engine: ServingEngine, trace: Trace,
                 config: SchedulerConfig,
                 executor: ChainExecutor) -> None:
        self.kernel = kernel
        self.trace = trace
        self.config = config
        self.executor = executor
        self.stats = DriverStats()
        self._step = 0
        self._outstanding = 0
        #: Per-step completion timestamps (the Fig. 1 dashed lines).
        self.step_completion_times: list[float] = []

    def start(self) -> None:
        self._begin_step()

    def _begin_step(self) -> None:
        if self._step >= self.trace.meta.n_steps:
            return
        n = self.trace.meta.n_agents
        self._outstanding = n
        self.stats.clusters_dispatched += 1
        self.stats.cluster_size_sum += n
        # The lock-step barrier is one whole-population cluster: a
        # single round event, one vectorized chain lookup, one batched
        # engine handoff.
        self.executor.run_cluster(range(n), self._step, float(self._step),
                                  self._task_done)

    def _task_done(self, aid: int, step: int) -> None:
        if step != self._step:
            raise SchedulingError(
                f"barrier violation: task for step {step} finished during "
                f"step {self._step}")
        self.stats.tasks_completed += 1
        self._outstanding -= 1
        if self._outstanding == 0:
            self.step_completion_times.append(self.kernel.now)
            self._step += 1
            # Global synchronization cost: one commit for the whole step.
            self.kernel.call_in(self.config.overhead.cluster_commit,
                                lambda: self._begin_step())

    def finished(self) -> bool:
        return self._step >= self.trace.meta.n_steps
