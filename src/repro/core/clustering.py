"""§3.4 geo-clustering, the spatial index behind it, and the §3.6
incremental cluster cache.

``geo_clustering`` groups same-step agents whose pairwise chains of
coupling relations connect them — connected components under
``dist <= radius_p + max_vel`` — because such agents may read each
other's last-step writes and must advance together.

The :class:`SpatialIndex` hashes positions into cells of the coupling
threshold so both clustering and blocked-edge discovery touch only local
candidates. Three hot-path refinements keep the controller's critical
path light (§3.6):

* for grid spaces the candidate cells are the **tight window spanned by
  the query's bounding box** (a 2x2 window for the common
  radius <= cell case), and membership uses the space's ``within``
  predicate (squared-distance compare for Euclidean — no sqrt per
  candidate);
* :meth:`SpatialIndex.query_into` fills a **caller-owned buffer**, so
  the per-round queries of the controller allocate nothing, and the
  dependency graph's batched commits move members with caller-computed
  cells (:meth:`SpatialIndex.move_bucketed`) against position storage
  it shares with the graph;
* non-coordinate spaces with cells (``GraphSpace``: landmark BFS
  levels, see :mod:`repro.core.space`) are queried through
  ``bucket_range`` windows over those cells plus the exact ``within``
  predicate; only a space with no bucketing at all degrades to a
  linear scan.

Incremental coupling components live *inside*
:class:`~repro.core.dependency_graph.SpatioTemporalGraph` (its
``component_for`` / ``build_component`` / ``invalidate_components``
API): a component only changes when one of its members (or an agent
newly within coupling range of one) moves, steps, or leaves the ready
set — all transitions the graph itself drives, so memoization and
invalidation happen in ``mark_running``/``commit`` with no separate
protocol. The old standalone :class:`ClusterCache` remains importable
as a deprecation shim only.
"""

from __future__ import annotations

import warnings
from typing import Hashable, Iterable, Sequence

from .._util import UnionFind
from .space import Position, Space


class SpatialIndex:
    """Bucketed position index over a :class:`Space`."""

    def __init__(self, space: Space, cell: float) -> None:
        if cell <= 0:
            raise ValueError("cell size must be positive")
        self.space = space
        self.cell = cell
        self._buckets: dict[tuple, set[Hashable]] = {}
        self._positions: dict[Hashable, Position] = {}
        #: Fast-path hooks (see module docstring).
        self._grid = bool(getattr(space, "grid_bucketing", False))
        within = getattr(space, "within", None)
        if within is None:
            dist = space.dist
            def within(a, b, radius, _dist=dist):  # noqa: E306
                return _dist(a, b) <= radius
        self._within = within

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._positions

    def position(self, key: Hashable) -> Position:
        return self._positions[key]

    def insert(self, key: Hashable, pos: Position) -> None:
        if key in self._positions:
            self.remove(key)
        self._positions[key] = pos
        self._buckets.setdefault(self.space.bucket(pos, self.cell),
                                 set()).add(key)

    def bulk_load(self, items: Iterable[tuple[Hashable, Position]]) -> None:
        """Insert many fresh ``(key, pos)`` pairs in one pass.

        Skips the per-item presence check of :meth:`insert`; callers
        load whole trace slices or initial populations this way (keys
        must not already be present).
        """
        positions = self._positions
        setdefault = self._buckets.setdefault
        bucket = self.space.bucket
        cell = self.cell
        for key, pos in items:
            positions[key] = pos
            setdefault(bucket(pos, cell), set()).add(key)

    def bulk_load_cells(self, cells: Sequence[tuple]
                        ) -> dict[tuple, set[Hashable]]:
        """Bulk-load dense keys ``0..n-1`` from precomputed fine cells.

        Fast path for array-backed callers (the dependency graph): the
        caller owns position storage (it aliases its dense position
        list into :attr:`_positions`) and has already derived every
        agent's cell in one vectorized pass, so this builds only the
        bucket map — grouped set construction against reused dict
        entries, no per-item ``insert``/presence-check churn, no
        second position dict. Returns the bucket dict so the caller
        can seed further per-cell structures from the same grouping
        without regrouping (the graph builds its step-bucketed slot
        table straight from it).
        """
        buckets = self._buckets
        get = buckets.get
        for key, c in enumerate(cells):
            b = get(c)
            if b is None:
                buckets[c] = b = set()
            b.add(key)
        return buckets

    def remove(self, key: Hashable) -> None:
        pos = self._positions.pop(key)
        bucket = self.space.bucket(pos, self.cell)
        members = self._buckets.get(bucket)
        if members is not None:
            members.discard(key)
            if not members:
                del self._buckets[bucket]

    def move(self, key: Hashable, pos: Position) -> None:
        old = self._positions.get(key)
        if old is not None:
            cell = self.cell
            old_bucket = self.space.bucket(old, cell)
            new_bucket = self.space.bucket(pos, cell)
            self._positions[key] = pos
            if old_bucket == new_bucket:
                return
            members = self._buckets.get(old_bucket)
            if members is not None:
                members.discard(key)
                if not members:
                    del self._buckets[old_bucket]
            self._buckets.setdefault(new_bucket, set()).add(key)
            return
        self.insert(key, pos)

    def move_bucketed(self, key: Hashable, old_bucket: tuple,
                      new_bucket: tuple) -> None:
        """Bucket transfer with caller-computed cells (batched commits).

        The dependency graph already derived every member's old/new cell
        and owns the position storage (it aliases its dense position
        list into :attr:`_positions`), so this touches only the bucket
        sets. ``key`` must already be present.
        """
        members = self._buckets.get(old_bucket)
        if members is not None:
            members.discard(key)
            if not members:
                del self._buckets[old_bucket]
        self._buckets.setdefault(new_bucket, set()).add(key)

    def query(self, pos: Position, radius: float) -> list[Hashable]:
        """Keys within ``radius`` of ``pos`` (inclusive)."""
        return self.query_into(pos, radius, [])

    def query_into(self, pos: Position, radius: float,
                   out: list) -> list[Hashable]:
        """Like :meth:`query`, but fills and returns the caller's buffer.

        The buffer is cleared first; hot paths own one scratch list and
        pass it to every query, eliminating per-query allocation.
        """
        out.clear()
        positions = self._positions
        buckets = self._buckets
        within = self._within
        if self._grid:
            # Tight cell window: candidates lie in the cells spanned by
            # the query's bounding box — for the common radius <= cell
            # case that is a 2x2 window, not a 3x3 center stencil.
            cell = self.cell
            x = pos[0]
            y = pos[1]
            cx0 = int((x - radius) // cell)
            cx1 = int((x + radius) // cell)
            cy0 = int((y - radius) // cell)
            cy1 = int((y + radius) // cell)
            if (cx1 - cx0 + 1) * (cy1 - cy0 + 1) > len(buckets):
                # Wide query (blocker radius grows with step spread):
                # scanning the occupied buckets beats probing a mostly
                # empty window.
                for (bx, by), members in buckets.items():
                    if cx0 <= bx <= cx1 and cy0 <= by <= cy1:
                        for key in members:
                            if within(pos, positions[key], radius):
                                out.append(key)
                return out
            for bx in range(cx0, cx1 + 1):
                for by in range(cy0, cy1 + 1):
                    members = buckets.get((bx, by))
                    if members:
                        for key in members:
                            if within(pos, positions[key], radius):
                                out.append(key)
            return out
        seen_linear = False
        for bucket in self.space.bucket_range(pos, radius, self.cell):
            if bucket == ():  # non-geometric space: one global bucket
                if seen_linear:
                    continue
                seen_linear = True
            members = buckets.get(bucket)
            if not members:
                continue
            for key in members:
                if within(pos, positions[key], radius):
                    out.append(key)
        return out


class ClusterCache:
    """Deprecated standalone component cache (pre-PR 5 API).

    Coupling components are graph-native now: the dependency graph
    memoizes and invalidates them from inside ``mark_running`` and
    ``commit`` (see :class:`~repro.core.dependency_graph
    .SpatioTemporalGraph.component_for`), so no driver carries this
    object anymore. The class stays importable — with the same
    ``get``/``store``/``invalidate``/``clear`` surface and counters —
    only so third-party scenario code and old pickles keep working.
    """

    __slots__ = ("_comp_of", "_members", "_next_id", "hits", "misses")

    def __init__(self) -> None:
        warnings.warn(
            "ClusterCache is deprecated: coupling components are "
            "maintained inside SpatioTemporalGraph (component_for / "
            "invalidate_components); drivers need no standalone cache",
            DeprecationWarning, stacklevel=2)
        self._comp_of: dict[int, int] = {}
        self._members: dict[int, list[int]] = {}
        self._next_id = 0
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._members)

    def get(self, aid: int) -> list[int] | None:
        """The cached component containing ``aid`` (None = rebuild)."""
        cid = self._comp_of.get(aid)
        if cid is None:
            self.misses += 1
            return None
        self.hits += 1
        return self._members[cid]

    def store(self, members: list[int]) -> None:
        """Memoize a freshly-built component (evicts stale overlaps)."""
        self.invalidate(members)
        cid = self._next_id
        self._next_id += 1
        self._members[cid] = members
        comp_of = self._comp_of
        for aid in members:
            comp_of[aid] = cid

    def invalidate(self, aids: Iterable[int]) -> None:
        """Drop every component containing any of ``aids``."""
        comp_of = self._comp_of
        for aid in aids:
            cid = comp_of.get(aid)
            if cid is not None:
                for member in self._members.pop(cid):
                    del comp_of[member]

    def clear(self) -> None:
        self._comp_of.clear()
        self._members.clear()


def geo_clustering(agent_ids: Sequence[int],
                   positions: Iterable[Position],
                   space: Space,
                   threshold: float) -> list[list[int]]:
    """Connected components of the coupling relation among ``agent_ids``.

    Returns clusters as sorted lists of agent ids; every agent appears in
    exactly one cluster (singletons included).
    """
    ids = list(agent_ids)
    pos = list(positions)
    if len(ids) != len(pos):
        raise ValueError("agent_ids and positions length mismatch")
    if not ids:
        return []
    index = SpatialIndex(space, cell=max(threshold, 1e-9))
    index.bulk_load(enumerate(pos))
    uf = UnionFind(len(ids))
    buf: list[int] = []
    for i, p in enumerate(pos):
        for j in index.query_into(p, threshold, buf):
            if j > i:
                uf.union(i, j)
    clusters = []
    for group in uf.groups(range(len(ids))):
        clusters.append(sorted(ids[i] for i in group))
    clusters.sort()
    return clusters


def brute_force_clustering(agent_ids: Sequence[int],
                           positions: Sequence[Position],
                           space: Space,
                           threshold: float) -> list[list[int]]:
    """O(n^2) reference implementation used to cross-check the indexed one."""
    ids = list(agent_ids)
    uf = UnionFind(len(ids))
    for i in range(len(ids)):
        for j in range(i + 1, len(ids)):
            if space.dist(positions[i], positions[j]) <= threshold:
                uf.union(i, j)
    clusters = [sorted(ids[i] for i in group)
                for group in uf.groups(range(len(ids)))]
    clusters.sort()
    return clusters
