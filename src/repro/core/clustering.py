"""§3.4 geo-clustering and the spatial index behind it.

``geo_clustering`` groups same-step agents whose pairwise chains of
coupling relations connect them — connected components under
``dist <= radius_p + max_vel`` — because such agents may read each
other's last-step writes and must advance together.

The :class:`SpatialIndex` hashes positions into cells of the coupling
threshold so both clustering and blocked-edge discovery touch only local
candidates; for spaces without geometry (``GraphSpace``) it degrades to a
linear scan transparently.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from .._util import UnionFind
from .space import Position, Space


class SpatialIndex:
    """Bucketed position index over a :class:`Space`."""

    def __init__(self, space: Space, cell: float) -> None:
        if cell <= 0:
            raise ValueError("cell size must be positive")
        self.space = space
        self.cell = cell
        self._buckets: dict[tuple, set[Hashable]] = {}
        self._positions: dict[Hashable, Position] = {}

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._positions

    def position(self, key: Hashable) -> Position:
        return self._positions[key]

    def insert(self, key: Hashable, pos: Position) -> None:
        if key in self._positions:
            self.remove(key)
        self._positions[key] = pos
        self._buckets.setdefault(self.space.bucket(pos, self.cell),
                                 set()).add(key)

    def remove(self, key: Hashable) -> None:
        pos = self._positions.pop(key)
        bucket = self.space.bucket(pos, self.cell)
        members = self._buckets.get(bucket)
        if members is not None:
            members.discard(key)
            if not members:
                del self._buckets[bucket]

    def move(self, key: Hashable, pos: Position) -> None:
        self.insert(key, pos)

    def query(self, pos: Position, radius: float) -> list[Hashable]:
        """Keys within ``radius`` of ``pos`` (inclusive)."""
        out = []
        dist = self.space.dist
        positions = self._positions
        seen_linear = False
        for bucket in self.space.bucket_range(pos, radius, self.cell):
            if bucket == ():  # non-geometric space: one global bucket
                if seen_linear:
                    continue
                seen_linear = True
            members = self._buckets.get(bucket)
            if not members:
                continue
            for key in members:
                if dist(pos, positions[key]) <= radius:
                    out.append(key)
        return out


def geo_clustering(agent_ids: Sequence[int],
                   positions: Iterable[Position],
                   space: Space,
                   threshold: float) -> list[list[int]]:
    """Connected components of the coupling relation among ``agent_ids``.

    Returns clusters as sorted lists of agent ids; every agent appears in
    exactly one cluster (singletons included).
    """
    ids = list(agent_ids)
    pos = list(positions)
    if len(ids) != len(pos):
        raise ValueError("agent_ids and positions length mismatch")
    if not ids:
        return []
    index = SpatialIndex(space, cell=max(threshold, 1e-9))
    for i, p in enumerate(pos):
        index.insert(i, p)
    uf = UnionFind(len(ids))
    for i, p in enumerate(pos):
        for j in index.query(p, threshold):
            if j > i:
                uf.union(i, j)
    clusters = []
    for group in uf.groups(range(len(ids))):
        clusters.append(sorted(ids[i] for i in group))
    clusters.sort()
    return clusters


def brute_force_clustering(agent_ids: Sequence[int],
                           positions: Sequence[Position],
                           space: Space,
                           threshold: float) -> list[list[int]]:
    """O(n^2) reference implementation used to cross-check the indexed one."""
    ids = list(agent_ids)
    uf = UnionFind(len(ids))
    for i in range(len(ids)):
        for j in range(i + 1, len(ids)):
            if space.dist(positions[i], positions[j]) <= threshold:
                uf.union(i, j)
    clusters = [sorted(ids[i] for i in group)
                for group in uf.groups(range(len(ids)))]
    clusters.sort()
    return clusters
