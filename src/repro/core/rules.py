"""The §3.2 dependency rules and the validity condition they enforce.

Temporal causality requires that an agent never perceives another agent
that exists at a different simulation time. Formally (§3.2), a state is
*valid* iff for all agents A, B at steps ``StepA != StepB``::

    dist(A, B) > radius_p + (|StepA - StepB| - 1) * max_vel

The Appendix A derivation turns this into two conservative scheduling
rules, both implemented here:

* **coupled** — same step and ``dist <= radius_p + max_vel``: the agents
  must advance together (one cluster);
* **blocked** — ``StepA > StepB`` and
  ``dist <= (StepA - StepB + 1) * max_vel + radius_p``: A may not start
  its step until B finishes StepB. (Agents at *later* steps never block:
  the derivation's third case.)

The rules over-approximate (they guard *potential* writes), which is what
makes them checkable without a data-race detector — and what leaves the
oracle gap measured in §4.
"""

from __future__ import annotations

import math
from typing import Iterable

from ..config import DependencyConfig
from ..errors import CausalityViolation
from .space import Position, Space, space_for


class DependencyRules:
    """Parameterized coupled/blocked predicates over a distance space."""

    def __init__(self, config: DependencyConfig | None = None,
                 space: Space | None = None) -> None:
        self.config = config or DependencyConfig()
        self.space = space or space_for(self.config.metric)
        self.radius_p = self.config.radius_p
        self.max_vel = self.config.max_vel

    # -- thresholds -----------------------------------------------------

    @property
    def couple_threshold(self) -> float:
        """Same-step coupling distance: ``radius_p + max_vel``."""
        return self.radius_p + self.max_vel

    def block_threshold(self, step_gap: int) -> float:
        """Blocking distance for a leader ``step_gap`` steps ahead."""
        return (step_gap + 1) * self.max_vel + self.radius_p

    def validity_threshold(self, step_gap: int) -> float:
        """The §3.2 condition's distance bound for ``|ΔStep| = step_gap``."""
        return self.radius_p + (step_gap - 1) * self.max_vel

    # -- predicates -------------------------------------------------------

    def coupled(self, pos_a: Position, pos_b: Position) -> bool:
        """Must two same-step agents advance together?"""
        return self.space.dist(pos_a, pos_b) <= self.couple_threshold

    def blocked(self, pos_a: Position, step_a: int,
                pos_b: Position, step_b: int) -> bool:
        """Is A (about to run ``step_a``) blocked by B (still at ``step_b``)?

        Only agents at strictly smaller steps can block; the same-step
        case is coupling, and future agents never block (Appendix A).
        """
        if step_b >= step_a:
            return False
        gap = step_a - step_b
        return self.space.dist(pos_a, pos_b) <= self.block_threshold(gap)

    def max_runahead(self, distance: float) -> int:
        """Largest step lead at which ``distance`` does not block.

        Inverse of :meth:`block_threshold`: the scheduler may let an agent
        lead another by at most this many steps at the given separation.
        """
        if distance <= self.couple_threshold:
            return 0
        # Largest integer gap with distance > (gap + 1) * max_vel + radius_p
        # (note the strict inequality: at equality the laggard still blocks).
        q = (distance - self.radius_p) / self.max_vel - 1.0
        gap = math.floor(q)
        if gap == q:
            gap -= 1
        return max(int(gap), 0)

    # -- runtime validation ------------------------------------------------

    def validate_state(self, states: Iterable[tuple[int, int, Position]]
                       ) -> None:
        """Assert the §3.2 validity condition over a full state snapshot.

        ``states`` yields ``(agent_id, step, position)``. O(n^2) — used by
        tests and the ``validate_causality`` debug mode, not production.
        """
        snapshot = list(states)
        for i, (aid_a, step_a, pos_a) in enumerate(snapshot):
            for aid_b, step_b, pos_b in snapshot[i + 1:]:
                if step_a == step_b:
                    continue
                gap = abs(step_a - step_b)
                distance = self.space.dist(pos_a, pos_b)
                threshold = self.validity_threshold(gap)
                if distance <= threshold:
                    raise CausalityViolation(
                        aid_a, step_a, aid_b, step_b, distance, threshold)
