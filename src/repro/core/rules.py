"""The §3.2 dependency rules and the validity condition they enforce.

Temporal causality requires that an agent never perceives another agent
that exists at a different simulation time. Formally (§3.2), a state is
*valid* iff for all agents A, B at steps ``StepA != StepB``::

    dist(A, B) > radius_p + (|StepA - StepB| - 1) * max_vel

The Appendix A derivation turns this into two conservative scheduling
rules, both implemented here:

* **coupled** — same step and ``dist <= radius_p + max_vel``: the agents
  must advance together (one cluster);
* **blocked** — ``StepA > StepB`` and
  ``dist <= (StepA - StepB + 1) * max_vel + radius_p``: A may not start
  its step until B finishes StepB. (Agents at *later* steps never block:
  the derivation's third case.)

The rules over-approximate (they guard *potential* writes), which is what
makes them checkable without a data-race detector — and what leaves the
oracle gap measured in §4.
"""

from __future__ import annotations

import math
from typing import Iterable

from ..config import DependencyConfig
from ..errors import CausalityViolation, ScenarioError
from .space import Position, Space, space_for


def rules_for(config=None, meta=None) -> "DependencyRules":
    """Dependency rules for a run, honoring the workload's scenario.

    The scenario name resolves from the :class:`SchedulerConfig` first,
    then from the trace metadata. A registered scenario that declares
    its own dependency geometry (``Scenario.dependency_config`` — e.g.
    graph-metric worlds, which also own the :class:`GraphSpace` over
    their generated network) is authoritative; otherwise — and for
    unknown names, synthetic traces, or no scenario at all — the
    config's ``dependency`` parameters apply unchanged. ``meta`` also
    supplies the segment count so concatenated graph worlds get the
    disjoint-union space matching their offset node ids.
    """
    dependency = config.dependency if config is not None \
        else DependencyConfig()
    name = (getattr(config, "scenario", "") or
            getattr(meta, "scenario", "") or "")
    rules = None
    if name:
        from ..scenarios import get_scenario  # lazy: avoid import cycle
        try:
            scenario = get_scenario(name)
        except ScenarioError:
            scenario = None
        if scenario is not None:
            rules = scenario.rules(config,
                                   segments=getattr(meta, "segments", 1)
                                   or 1)
    if rules is None:
        rules = DependencyRules(dependency)
    # A graph-metric trace measured with anything but its own graph
    # space silently produces wrong coupled/blocked sets (node ids are
    # not coordinates) — refuse instead of degrading.
    if getattr(meta, "metric", "euclidean") == "graph" \
            and rules.config.metric != "graph":
        raise ScenarioError(
            f"trace records metric='graph' but scenario {name!r} "
            f"resolved to {rules.config.metric!r} rules; a graph trace "
            f"can only replay under its own scenario's GraphSpace")
    return rules


class DependencyRules:
    """Parameterized coupled/blocked predicates over a distance space."""

    def __init__(self, config: DependencyConfig | None = None,
                 space: Space | None = None) -> None:
        self.config = config or DependencyConfig()
        self.space = space or space_for(self.config.metric)
        self.radius_p = self.config.radius_p
        self.max_vel = self.config.max_vel

    # -- thresholds -----------------------------------------------------

    @property
    def couple_threshold(self) -> float:
        """Same-step coupling distance: ``radius_p + max_vel``."""
        return self.radius_p + self.max_vel

    def block_threshold(self, step_gap: int) -> float:
        """Blocking distance for a leader ``step_gap`` steps ahead."""
        return (step_gap + 1) * self.max_vel + self.radius_p

    def validity_threshold(self, step_gap: int) -> float:
        """The §3.2 condition's distance bound for ``|ΔStep| = step_gap``."""
        return self.radius_p + (step_gap - 1) * self.max_vel

    # -- predicates -------------------------------------------------------

    def coupled(self, pos_a: Position, pos_b: Position) -> bool:
        """Must two same-step agents advance together?"""
        return self.space.dist(pos_a, pos_b) <= self.couple_threshold

    def blocked(self, pos_a: Position, step_a: int,
                pos_b: Position, step_b: int) -> bool:
        """Is A (about to run ``step_a``) blocked by B (still at ``step_b``)?

        Only agents at strictly smaller steps can block; the same-step
        case is coupling, and future agents never block (Appendix A).
        """
        if step_b >= step_a:
            return False
        gap = step_a - step_b
        return self.space.dist(pos_a, pos_b) <= self.block_threshold(gap)

    def max_runahead(self, distance: float) -> int:
        """Largest step lead at which ``distance`` does not block.

        Inverse of :meth:`block_threshold`: the scheduler may let an agent
        lead another by at most this many steps at the given separation.
        """
        if distance <= self.couple_threshold:
            return 0
        # Largest integer gap with distance > (gap + 1) * max_vel + radius_p
        # (note the strict inequality: at equality the laggard still blocks).
        q = (distance - self.radius_p) / self.max_vel - 1.0
        gap = math.floor(q)
        if gap == q:
            gap -= 1
        return max(int(gap), 0)

    # -- runtime validation ------------------------------------------------

    def validate_state(self, states: Iterable[tuple[int, int, Position]]
                       ) -> None:
        """Assert the §3.2 validity condition over a full state snapshot.

        ``states`` yields ``(agent_id, step, position)``. O(n^2) — used by
        tests and the ``validate_causality`` debug mode, not production.
        """
        snapshot = list(states)
        for i, (aid_a, step_a, pos_a) in enumerate(snapshot):
            for aid_b, step_b, pos_b in snapshot[i + 1:]:
                if step_a == step_b:
                    continue
                gap = abs(step_a - step_b)
                distance = self.space.dist(pos_a, pos_b)
                threshold = self.validity_threshold(gap)
                if distance <= threshold:
                    raise CausalityViolation(
                        aid_a, step_a, aid_b, step_b, distance, threshold)
