"""Multiprocess controller: shard-worker processes over a shared store.

The region planner (:func:`~repro.core.sharding.plan_regions`) proves
its regions share **no** dependency edge — no coupling, no blocking, at
any reachable step gap — so the controller loop over one region never
reads or writes another region's state. PR 7 exploited that for memory
locality but still walked the shards in one process; this module runs
them in genuinely parallel worker processes:

* the parent publishes the trace's step-major position store as one
  named shared-memory segment (:meth:`Trace.share_positions`); workers
  attach **zero-copy** by name and gather only their members' columns;
* whole shards are assigned to a pool of persistent worker processes
  (:func:`~repro.core.sharding.assign_shards` — the same deterministic
  LPT rule that balances regions into shards), and each worker runs its
  shards' full controller loop — blocker scans, clustering, commits,
  dispatch bookkeeping — against its own virtual-time kernel and
  serving engine;
* **no cross-worker synchronization exists mid-run.** Workers never
  write the shared segment and never message each other; only compact
  end-of-task ledgers (counters, virtual completion time, kernel-event
  counts, optional call records) travel back over a queue, where the
  parent merges them into one :class:`DriverStats` and aggregates the
  virtual clocks (completion = max over workers).

**Crash handling** reuses the faults-layer budget semantics: a worker
process that dies mid-task is replaced and its task redispatched (the
shared store is read-only, so a retry from scratch is idempotent), up
to ``FaultPolicy.max_redispatches`` times; past the budget the run
raises a diagnostic :class:`SchedulingError` via
:func:`~repro.faults.scheduler_diagnostics`.

**Controller-time accounting.** Each worker swaps the driver's clock to
``time.process_time``, so its ``controller_time`` measures the CPU
seconds of its own scheduling work regardless of how the OS timeshares
cores. The merged stats take the *maximum* over workers — the parallel
critical path, i.e. the wall-clock controller time on machines with a
dedicated core per worker — while per-worker times and the true
parent-side wall time ride along in ``extra`` for transparency.

**Equivalence.** Dependency-disjointness makes the mode state-identical
to the in-process ``ShardedGraph`` path (which is itself fuzz-pinned to
the single graph): same final positions, same per-agent call sequences,
and the same per-shard blocked-edge structure — each worker receives
its exact slice of the parent's global shard plan (not a re-planned
one), so every per-shard :class:`SpatioTemporalGraph` evolves through
the same states. ``tests/test_parallel.py`` fuzz-pins all three modes
against each other across seeded coordinate and graph worlds.

The mode falls back cleanly (``run_parallel_replay`` returns ``None``
and the caller keeps the in-process path) when the workload yields
fewer than two regions, ``parallel_workers < 2``, the policy is not a
metropolis variant, or the platform lacks POSIX shared memory.
"""

from __future__ import annotations

import gc
import os
import time
import traceback
from dataclasses import asdict, replace

import numpy as np

from ..config import FaultPolicy, SchedulerConfig, ServingConfig
from ..devent import Kernel
from ..errors import SchedulingError
from ..faults import scheduler_diagnostics
from ..instrument import TimelineRecorder
from ..serving import EngineMetrics, ServingEngine
from ..trace.schema import SharedPositionStore, Trace, TraceMeta
from .baselines import DriverStats
from .engine import SimulationResult
from .metropolis import MetropolisDriver
from .rules import rules_for
from .sharding import assign_shards, plan_regions
from .speculative import SpeculativeMetropolisDriver
from .tasks import ChainExecutor

#: Seconds between liveness sweeps while waiting on worker ledgers.
_POLL_S = 0.05

#: ``DriverStats.extra`` keys that are *levels*, not counters: summing
#: them across shards or workers is meaningless, so the canonical merge
#: reports the minimum live value instead.
_LEVEL_KEYS = frozenset({"spec_depth"})


def merge_extra_counters(extras: list[dict]) -> dict:
    """The canonical ``DriverStats.extra`` aggregation.

    Numeric counters sum — the same plain integer addition
    ``ShardedGraph`` applies across its in-process shards — so
    ``scanned_slots`` / ``kernel_events`` / ``fallback_scans`` mean the
    same thing whether the shards ran in one process or many. Non-
    numeric values (per-run lists, diagnostics) do not aggregate and
    are dropped; level keys (:data:`_LEVEL_KEYS`) take the minimum.
    """
    out: dict = {}
    for extra in extras:
        for key, value in extra.items():
            if key in _LEVEL_KEYS:
                continue
            if isinstance(value, bool) or \
                    not isinstance(value, (int, float)):
                continue
            out[key] = out.get(key, 0) + value
    for key in _LEVEL_KEYS:
        values = [e[key] for e in extras if key in e]
        if values:
            out[key] = min(values)
    return out


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


def _run_worker_task(task: dict) -> dict:
    """Replay one worker's members in-process; return the compact ledger.

    Mirrors :func:`~repro.core.engine.run_replay`'s wiring, with three
    deliberate differences: positions come from the shared segment
    (gathered down to this worker's member columns), the driver is
    built with the parent's shard plan instead of re-planning, and the
    controller clock is per-process CPU time (see module docstring).
    """
    members: np.ndarray = task["members"]
    store = SharedPositionStore.open(
        task["shm_name"], task["shm_shape"], task["shm_dtype"])
    try:
        # One fancy-index gather: the worker's whole working set, sized
        # O(its members), leaving the shared segment untouched.
        positions = store.array[:, members, :].copy()
    finally:
        store.close()
    meta = TraceMeta(**{**task["meta"], "n_agents": int(len(members))})
    trace = Trace(meta, positions, task["call_step"], task["call_agent"],
                  task["call_func"], task["call_in"], task["call_out"],
                  step_major=True)
    scheduler: SchedulerConfig = task["scheduler"]
    serving: ServingConfig = task["serving"]
    serving_cfg = serving \
        if serving.priority_scheduling == scheduler.priority \
        else ServingConfig(**{**serving.__dict__,
                              "priority_scheduling": scheduler.priority})
    kernel = Kernel()
    engine = ServingEngine(kernel, serving_cfg)
    recorder = TimelineRecorder() if task["collect_calls"] else None
    executor = ChainExecutor(
        kernel, engine, trace, scheduler.overhead,
        call_observer=recorder.record if recorder else None)
    cls = SpeculativeMetropolisDriver \
        if scheduler.policy == "metropolis-spec" else MetropolisDriver
    driver = cls(kernel, engine, trace, scheduler, executor,
                 shard_plan=task["local_plan"])
    driver._clock = time.process_time
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        driver.start()
        kernel.run()
    finally:
        if gc_was_enabled:
            gc.enable()
        gc.collect()
    if not driver.finished():
        raise SchedulingError(
            f"parallel worker: kernel drained before completion "
            f"({driver.stats.tasks_completed} tasks done)")
    if not engine.idle():
        raise SchedulingError(
            "parallel worker: serving engine still busy at drain")
    completion = kernel.now
    stats = driver.stats
    metrics = engine.metrics
    calls = None
    if recorder is not None:
        gids = members.tolist()
        calls = [(gids[e.agent], e.step, e.func_id,
                  e.submit_time, e.finish_time)
                 for e in recorder.events]
    return {
        "completion_time": completion,
        "tasks_completed": stats.tasks_completed,
        "clusters_dispatched": stats.clusters_dispatched,
        "cluster_size_sum": stats.cluster_size_sum,
        "blocked_events": stats.blocked_events,
        "unblock_events": stats.unblock_events,
        "max_step_spread": stats.max_step_spread,
        "time_clustering": stats.time_clustering,
        "time_graph": stats.time_graph,
        "time_dispatch": stats.time_dispatch,
        "controller_rounds": stats.controller_rounds,
        "extra": stats.extra,
        "n_calls": metrics.completed,
        "prompt_tokens": metrics.total_prompt_tokens,
        "output_tokens": metrics.total_output_tokens,
        "parallelism_integral": metrics._outstanding_integral,
        "busy_integral": engine.busy_fraction(completion) * completion,
        "kv_stats": engine.kv_stats(),
        # Crash-consistency evidence: the parent verifies every member
        # actually drained to the final step before merging.
        "final_steps": list(driver.graph.step),
        "calls": calls,
    }


def _worker_main(worker_id: int, inbox, outbox) -> None:
    """Persistent worker loop: tasks in, ledgers out, ``None`` to quit."""
    while True:
        task = inbox.get()
        if task is None:
            return
        if task.get("crash_times", 0) > 0:
            # Test hook: simulate a hard worker crash mid-task (the
            # parent decrements the counter before redispatching).
            os._exit(17)
        try:
            outbox.put((worker_id, task["task_id"], "ok",
                        _run_worker_task(task)))
        except BaseException:
            outbox.put((worker_id, task["task_id"], "error",
                        traceback.format_exc()))


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


def _mp_context():
    import multiprocessing as mp
    try:
        # Fork shares the imported interpreter state, so worker startup
        # is milliseconds; spawn is the portable fallback.
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platform
        return mp.get_context("spawn")


class ShardWorkerPool:
    """A pool of persistent shard-worker processes.

    Reusable across runs (the equivalence fuzz shares one pool over a
    hundred worlds); each worker owns a private inbox so tasks pin to
    the worker whose shard slice they describe, and all workers share
    one outbox. A dead worker is detected by liveness polling, replaced
    with a fresh process *and a fresh inbox* (so a task that died
    before or after ``get()`` is re-run exactly once), and its task
    redispatched against the faults-layer budget.
    """

    def __init__(self, n_workers: int,
                 faults: FaultPolicy | None = None) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self.faults = faults or FaultPolicy()
        self._ctx = _mp_context()
        self._outbox = self._ctx.Queue()
        self._procs: list = [None] * n_workers
        self._inboxes: list = [None] * n_workers
        for wid in range(n_workers):
            self._respawn(wid)

    def _respawn(self, worker_id: int) -> None:
        old = self._procs[worker_id]
        if old is not None and old.is_alive():  # pragma: no cover
            old.terminate()
            old.join(1.0)
        inbox = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, inbox, self._outbox),
            name=f"repro-shard-worker-{worker_id}", daemon=True)
        proc.start()
        self._procs[worker_id] = proc
        self._inboxes[worker_id] = inbox

    def run_tasks(self, tasks: dict[int, dict]) -> tuple[dict, int]:
        """Dispatch ``tasks`` (worker id -> task) and collect ledgers.

        Returns ``(task_id -> ledger, redispatches)``. Raises
        :class:`SchedulingError` when a worker reports an error or a
        task exhausts its crash-redispatch budget.
        """
        import queue as queue_mod
        outstanding = dict(tasks)
        for wid, task in outstanding.items():
            self._inboxes[wid].put(task)
        results: dict[int, dict] = {}
        redispatches = 0
        while outstanding:
            try:
                wid, task_id, status, payload = self._outbox.get(
                    timeout=_POLL_S)
            except queue_mod.Empty:
                redispatches += self._redispatch_dead(outstanding)
                continue
            if status == "error":
                raise SchedulingError(
                    f"parallel worker {wid} failed:\n{payload}")
            results[task_id] = payload
            outstanding.pop(wid, None)
        return results, redispatches

    def _redispatch_dead(self, outstanding: dict[int, dict]) -> int:
        """Replace dead workers; re-run their tasks. Returns the count."""
        redispatched = 0
        for wid in list(outstanding):
            proc = self._procs[wid]
            if proc.is_alive():
                continue
            task = outstanding[wid]
            attempts = task["redispatched"] = \
                task.get("redispatched", 0) + 1
            if attempts > self.faults.max_redispatches:
                raise SchedulingError(
                    "parallel worker crash budget exhausted "
                    f"(worker {wid} died {attempts} times, budget "
                    f"{self.faults.max_redispatches})\n  "
                    + scheduler_diagnostics(
                        done=0, total=int(len(task["members"])),
                        redispatches=attempts - 1))
            if task.get("crash_times", 0) > 0:
                task["crash_times"] -= 1
            self._respawn(wid)
            self._inboxes[wid].put(task)
            redispatched += 1
        return redispatched

    def close(self) -> None:
        """Drain the pool: polite sentinel, then terminate stragglers."""
        for wid, proc in enumerate(self._procs):
            if proc is None:
                continue
            try:
                self._inboxes[wid].put(None)
            except Exception:  # pragma: no cover - queue torn down
                pass
        deadline = time.monotonic() + self.faults.worker_join_grace
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(1.0)
        self._outbox.close()
        for inbox in self._inboxes:
            if inbox is not None:
                inbox.close()

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _build_tasks(trace: Trace, scheduler: SchedulerConfig,
                 serving: ServingConfig, shard_plan: list[list[int]],
                 groups: list[list[int]], store: SharedPositionStore,
                 collect_calls: bool,
                 crash_plan: dict[int, int] | None) -> dict[int, dict]:
    """One task per worker: its member slice of the global shard plan."""
    meta_dict = asdict(trace.meta)
    # Workers run their slice unsharded-or-sharded per the local plan;
    # re-planning or re-parallelizing inside a worker is never right.
    worker_scheduler = replace(scheduler, shards=0, parallel_workers=0)
    call_agent = trace.call_agent
    tasks: dict[int, dict] = {}
    for wid, shard_idxs in enumerate(groups):
        members = np.unique(np.concatenate(
            [np.asarray(shard_plan[si], dtype=np.int64)
             for si in shard_idxs]))
        # Shard member lists are sorted global ids, so searchsorted is
        # an exact global->local translation on both plan and calls.
        local_plan = [
            np.searchsorted(members, np.asarray(shard_plan[si],
                                                dtype=np.int64)).tolist()
            for si in shard_idxs]
        mask = np.isin(call_agent, members)
        tasks[wid] = {
            "task_id": wid,
            "shm_name": store.name,
            "shm_shape": store.shape,
            "shm_dtype": store.dtype.str,
            "meta": meta_dict,
            "members": members,
            "local_plan": local_plan,
            "call_step": trace.call_step[mask],
            "call_agent": np.searchsorted(
                members, call_agent[mask]).astype(call_agent.dtype),
            "call_func": trace.call_func[mask],
            "call_in": trace.call_in[mask],
            "call_out": trace.call_out[mask],
            "scheduler": worker_scheduler,
            "serving": serving,
            "collect_calls": collect_calls,
            "crash_times": (crash_plan or {}).get(wid, 0),
        }
    return tasks


def _merge_results(trace: Trace, scheduler: SchedulerConfig,
                   ledgers: list[dict], n_workers: int,
                   redispatches: int, wall_s: float,
                   collect_timeline: bool) -> SimulationResult:
    """Fold the workers' ledgers into one :class:`SimulationResult`."""
    n_steps = trace.meta.n_steps
    for led in ledgers:
        if any(s != n_steps for s in led["final_steps"]):
            raise SchedulingError(
                "parallel replay: a worker ledger reports members not "
                "drained to the final step")
    stats = DriverStats()
    # Headline controller times come from the critical-path worker: the
    # parallel run is as slow as its slowest worker, and per-worker CPU
    # time is what that worker would cost wall-clock on its own core.
    critical = max(ledgers, key=lambda led: (
        led["time_clustering"] + led["time_graph"] + led["time_dispatch"]))
    stats.time_clustering = critical["time_clustering"]
    stats.time_graph = critical["time_graph"]
    stats.time_dispatch = critical["time_dispatch"]
    for field in ("tasks_completed", "clusters_dispatched",
                  "cluster_size_sum", "blocked_events", "unblock_events",
                  "controller_rounds"):
        setattr(stats, field, sum(led[field] for led in ledgers))
    stats.max_step_spread = max(led["max_step_spread"] for led in ledgers)
    stats.extra = merge_extra_counters([led["extra"] for led in ledgers])
    stats.extra["parallel_workers"] = n_workers
    stats.extra["worker_redispatches"] = redispatches
    stats.extra["parallel_wall_s"] = wall_s
    stats.extra["worker_controller_times"] = [
        led["time_clustering"] + led["time_graph"] + led["time_dispatch"]
        for led in ledgers]
    completion = max(led["completion_time"] for led in ledgers)
    metrics = EngineMetrics()
    metrics.total_prompt_tokens = sum(led["prompt_tokens"]
                                      for led in ledgers)
    metrics.total_output_tokens = sum(led["output_tokens"]
                                      for led in ledgers)
    kv_stats: dict = {}
    for led in ledgers:
        for key, value in led["kv_stats"].items():
            kv_stats[key] = kv_stats.get(key, 0) + value
    timeline = None
    if collect_timeline:
        timeline = TimelineRecorder()
        events = [ev for led in ledgers for ev in (led["calls"] or [])]
        events.sort(key=lambda ev: (ev[3], ev[4], ev[0], ev[1]))
        for agent, step, func_id, submit, finish in events:
            timeline.record(agent, step, func_id, submit, finish)
    parallelism = sum(led["parallelism_integral"] for led in ledgers) \
        / completion if completion > 0 else 0.0
    busy = sum(led["busy_integral"] for led in ledgers) \
        / (n_workers * completion) if completion > 0 else 0.0
    return SimulationResult(
        policy=scheduler.policy,
        scenario=scheduler.scenario or trace.meta.scenario,
        completion_time=completion,
        achieved_parallelism=parallelism,
        n_calls_completed=sum(led["n_calls"] for led in ledgers),
        n_tasks_completed=stats.tasks_completed,
        driver_stats=stats,
        engine_metrics=metrics,
        gpu_busy_fraction=busy,
        timeline=timeline,
        kv_stats=kv_stats,
    )


def run_parallel_replay(trace: Trace,
                        scheduler: SchedulerConfig | None = None,
                        serving: ServingConfig | None = None,
                        collect_timeline: bool = False,
                        pool: ShardWorkerPool | None = None,
                        _crash_plan: dict[int, int] | None = None
                        ) -> SimulationResult | None:
    """Replay ``trace`` with shard-worker processes; ``None`` = fall back.

    Returns ``None`` — the caller should keep the in-process path —
    when ``parallel_workers < 2``, the policy is not a metropolis
    variant, the workload yields fewer than two independent regions,
    interactive agents are configured (their ids are global, their
    latency ledger is cross-region), or the platform lacks POSIX shared
    memory. ``pool`` optionally reuses persistent workers across runs;
    ``_crash_plan`` (worker id -> crash count) is the chaos/test hook
    exercising the redispatch path.
    """
    scheduler = scheduler or SchedulerConfig()
    serving = serving or ServingConfig()
    if scheduler.parallel_workers < 2 and pool is None:
        return None
    if scheduler.policy not in ("metropolis", "metropolis-spec"):
        return None
    if scheduler.interactive_agents:
        return None
    rules = rules_for(scheduler, trace.meta)
    max_shards = scheduler.shards if scheduler.shards >= 2 \
        else max(2, scheduler.parallel_workers)
    shard_plan = plan_regions(trace, rules, max_shards)
    if shard_plan is None or len(shard_plan) < 2:
        return None
    want = scheduler.parallel_workers if scheduler.parallel_workers >= 2 \
        else (pool.n_workers if pool is not None else 0)
    if pool is not None:
        want = min(want, pool.n_workers)
    n_workers = min(want, len(shard_plan))
    if n_workers < 2:
        return None
    groups = assign_shards([len(m) for m in shard_plan], n_workers)
    try:
        store = trace.share_positions()
    except Exception:
        return None  # platform lacks POSIX shared memory
    wall0 = time.perf_counter()
    own_pool = pool is None
    try:
        tasks = _build_tasks(trace, scheduler, serving, shard_plan,
                             groups, store, collect_timeline, _crash_plan)
        if own_pool:
            pool = ShardWorkerPool(n_workers, faults=scheduler.faults)
        try:
            results, redispatches = pool.run_tasks(tasks)
        finally:
            if own_pool:
                pool.close()
    finally:
        store.unlink()
        store.close()
    wall_s = time.perf_counter() - wall0
    ledgers = [results[tid] for tid in sorted(results)]
    return _merge_results(trace, scheduler, ledgers, n_workers,
                          redispatches, wall_s, collect_timeline)
