"""Shared machinery for running policy comparisons on traces."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..config import (STEPS_PER_HOUR, SchedulerConfig, ServingConfig)
from ..core import run_replay
from ..core.engine import critical_time_for
from ..errors import ConfigError
from ..trace import Trace

#: Hardware/model platforms benchmarked in the paper (§4.1). ``tp`` is the
#: tensor-parallel degree of one replica; DP fills the remaining GPUs.
PLATFORMS: dict[str, dict] = {
    "l4-8b": {"model": "llama3-8b", "gpu": "l4", "tp": 1},
    "a100-70b": {"model": "llama3-70b", "gpu": "a100", "tp": 4},
    "a100-mixtral": {"model": "mixtral-8x7b", "gpu": "a100", "tp": 2},
}


def serving_for(platform: str, num_gpus: int,
                fidelity: str = "fluid") -> ServingConfig:
    """Deployment shape for ``num_gpus`` of a platform (DP x TP)."""
    try:
        spec = PLATFORMS[platform]
    except KeyError:
        raise ConfigError(
            f"unknown platform {platform!r}; available: "
            f"{sorted(PLATFORMS)}") from None
    tp = spec["tp"]
    if num_gpus % tp:
        raise ConfigError(
            f"{platform}: {num_gpus} GPUs not divisible by tp={tp}")
    return ServingConfig(model=spec["model"], gpu=spec["gpu"],
                         dp=num_gpus // tp, tp=tp, fidelity=fidelity)


@dataclass(frozen=True)
class PolicyOutcome:
    """One (policy, platform, gpus, trace) measurement."""

    policy: str
    completion_time: float
    achieved_parallelism: float
    n_calls: int
    mean_cluster_size: float
    max_step_spread: int


def run_policies(trace: Trace, platform: str, num_gpus: int,
                 policies: Sequence[str],
                 priority: bool = True,
                 fidelity: str = "fluid",
                 num_workers: int = 0,
                 scenario: str | None = None) -> dict[str, PolicyOutcome]:
    """Replay ``trace`` under each policy on the given deployment.

    ``scenario`` labels the run's workload in the scheduler config; it
    defaults to the scenario recorded in the trace metadata.
    """
    serving = serving_for(platform, num_gpus, fidelity)
    scenario = scenario or trace.meta.scenario
    out: dict[str, PolicyOutcome] = {}
    for policy in policies:
        result = run_replay(
            trace, SchedulerConfig(policy=policy, priority=priority,
                                   num_workers=num_workers,
                                   scenario=scenario), serving)
        out[policy] = PolicyOutcome(
            policy=policy,
            completion_time=result.completion_time,
            achieved_parallelism=result.achieved_parallelism,
            n_calls=result.n_calls_completed,
            mean_cluster_size=result.driver_stats.mean_cluster_size,
            max_step_spread=result.driver_stats.max_step_spread,
        )
    return out


def bounds_for(trace: Trace, platform: str, num_gpus: int,
               include_no_dependency: bool = True) -> dict[str, float]:
    """The reference bounds: ``critical``, ``no-dependency``, ``gpu-limit``.

    Both are lower bounds on any schedule, so the binding one — the
    maximum — is reported as ``gpu-limit`` (the paper plots the binding
    bound for each scale).
    """
    serving = serving_for(platform, num_gpus)
    critical = critical_time_for(trace, serving)
    bounds = {"critical": critical}
    if include_no_dependency:
        nodep = run_replay(
            trace, SchedulerConfig(policy="no-dependency"), serving)
        bounds["no-dependency"] = nodep.completion_time
        bounds["gpu-limit"] = max(critical, nodep.completion_time)
    else:
        bounds["gpu-limit"] = critical
    return bounds


def hour_window(day: Trace, hour: int, n_hours: int = 1) -> Trace:
    """Slice simulated hours ``[hour, hour + n_hours)`` out of a day."""
    return day.window(hour * STEPS_PER_HOUR,
                      (hour + n_hours) * STEPS_PER_HOUR)
