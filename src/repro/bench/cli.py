"""``repro-bench`` command line: regenerate any paper figure/table.

Examples::

    repro-bench list
    repro-bench run fig4a
    repro-bench run fig5 --full
    repro-bench run all --out results/
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .experiments import EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's evaluation figures/tables.")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=[*sorted(EXPERIMENTS), "all"])
    run.add_argument("--full", action="store_true",
                     help="paper-scale workloads (slow)")
    run.add_argument("--out", type=Path, default=None,
                     help="also write tables to this directory")
    args = parser.parse_args(argv)

    if args.command == "list":
        for name, fn in sorted(EXPERIMENTS.items()):
            doc_lines = (fn.__doc__ or "").strip().splitlines() or [""]
            print(f"{name:<20} {doc_lines[0]}")
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        started = time.monotonic()
        result = run_experiment(name, full=args.full)
        elapsed = time.monotonic() - started
        print(result.table)
        print(f"[{name} completed in {elapsed:.1f}s]\n")
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{name}.txt").write_text(result.table + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
