"""``repro-bench`` command line: regenerate any paper figure/table.

Examples::

    repro-bench list
    repro-bench scenarios
    repro-bench run fig4a
    repro-bench run fig5 --full --scenario metro-grid
    repro-bench run all --out results/
    repro-bench smoke --out smoke-report.json
    repro-bench hotpath --out BENCH_hotpath.json --check
    repro-bench serving --list-profiles
    repro-bench serving --out BENCH_serving.json --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from ..errors import ScenarioError
from ..scenarios import get_scenario, scenario_names
from .experiments import EXPERIMENTS, run_experiment
from .hotpath import (AGENT_COUNTS, BASELINE_PATH,
                      MAX_FALLBACK_SCANS, MAX_KERNEL_EVENTS_PER_CLUSTER,
                      MIN_PARALLEL_RATIO, MIN_SCALE_RATIO, MIN_SPEC_RATIO,
                      MIN_SPEEDUP, MIN_THROUGHPUT, PARALLEL_WORKERS,
                      SCALE_AGENTS, SCALE_SCENARIOS, TRAJECTORY,
                      check_report, check_scale_report,
                      format_report, format_scale_report, load_baseline,
                      retry_perf_cells, run_hotpath, run_scale,
                      scale_ratio_lines)
from .serving import (BASELINE_PATH as SERVING_BASELINE_PATH, CELLS,
                      MIN_TOKENS_RATIO, MIN_WALL_RATIO,
                      check_serving_report, format_profiles,
                      format_serving_report, run_serving)
from .chaos import check_chaos_report, format_chaos_report, run_chaos
from .smoke import run_smoke


def _agent_list(value: str) -> list[int]:
    """``--agents`` parser: comma-separated counts (also repeatable).

    ``repro-bench hotpath --agents 25,100,2000`` overrides the matrix
    without code edits; ad-hoc sweeps can mix styles
    (``--agents 500 --agents 1000,2000``).
    """
    try:
        counts = [int(tok) for tok in value.split(",") if tok.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid agent count list {value!r}") from None
    if not counts or any(c <= 0 for c in counts):
        raise argparse.ArgumentTypeError(
            f"agent counts must be positive integers, got {value!r}")
    return counts


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's evaluation figures/tables.")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    sub.add_parser("scenarios", help="list registered workload scenarios")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=[*sorted(EXPERIMENTS), "all"])
    run.add_argument("--full", action="store_true",
                     help="paper-scale workloads (slow)")
    run.add_argument("--scenario", default=None, choices=scenario_names(),
                     help="workload scenario (default: smallville, or "
                          "REPRO_BENCH_SCENARIO)")
    run.add_argument("--out", type=Path, default=None,
                     help="also write tables to this directory")
    smoke = sub.add_parser(
        "smoke", help="tiny per-scenario replay gate (speedup + live "
                      "OOO-equivalence); CI runs this for every scenario")
    smoke.add_argument("--scenario", action="append", default=None,
                       choices=scenario_names(), dest="scenarios",
                       help="limit to a scenario (repeatable)")
    smoke.add_argument("--out", type=Path, default=None,
                       help="write the JSON report here")
    smoke.add_argument("--skip-live", action="store_true",
                       help="skip the live-engine equivalence check")
    chaos = sub.add_parser(
        "chaos", help="fault-injection gate: seeded chaos schedules per "
                      "scenario must end bit-identical to clean "
                      "lock-step, with every recovery path exercised")
    chaos.add_argument("--scenario", action="append", default=None,
                       choices=scenario_names(), dest="scenarios",
                       help="limit to a scenario (repeatable)")
    chaos.add_argument("--seed", action="append", type=int, default=None,
                       dest="seeds",
                       help="chaos draw seed (repeatable; default 0)")
    chaos.add_argument("--out", type=Path, default=Path("BENCH_chaos.json"),
                       help="write the JSON report here")
    chaos.add_argument("--check", action="store_true",
                       help="exit 1 if any cell diverges from the "
                            "lock-step state, leaves a required fault "
                            "path unexercised, leaks workers, or the "
                            "watchdog/blackout cells fail")
    hot = sub.add_parser(
        "hotpath", help="controller hot-path throughput (§3.6): agent-"
                        "steps/sec per scenario at several agent scales")
    hot.add_argument("--scenario", action="append", default=None,
                     choices=scenario_names(), dest="scenarios",
                     help="limit to a scenario (repeatable)")
    hot.add_argument("--agents", action="append", type=_agent_list,
                     default=None, metavar="N[,N...]",
                     help="agent scales, comma-separated and/or "
                          f"repeatable (default {list(AGENT_COUNTS)})")
    hot.add_argument("--out", type=Path, default=Path("BENCH_hotpath.json"),
                     help="write the JSON report here")
    hot.add_argument("--baseline", type=Path, default=BASELINE_PATH,
                     help="committed baseline report to compare against")
    hot.add_argument("--history", type=Path, default=None,
                     help="extra older baseline for the "
                          "speedup_vs_preoverhaul trajectory column "
                          "(default: the committed pr2 + preoverhaul "
                          "records; missing files = skipped)")
    hot.add_argument("--check", action="store_true",
                     help="exit 1 if any entry misses the throughput "
                          "floor, regresses vs. the baseline, exceeds "
                          "the kernel-event or fallback-scan caps, or "
                          "a required matrix cell is absent")
    hot.add_argument("--min-throughput", type=float, default=MIN_THROUGHPUT,
                     help="absolute agent-steps/sec floor for --check")
    hot.add_argument("--min-speedup", type=float, default=MIN_SPEEDUP,
                     help="required throughput ratio vs. baseline "
                          "for --check")
    hot.add_argument("--max-kernel-events-per-cluster", type=float,
                     default=MAX_KERNEL_EVENTS_PER_CLUSTER,
                     help="cap on driver-scheduled kernel events per "
                          "dispatched cluster for --check")
    hot.add_argument("--max-fallback-scans", type=int,
                     default=MAX_FALLBACK_SCANS,
                     help="cap on linear fallback scans for --check "
                          "(0: the bucketed fast path must always run)")
    hot.add_argument("--require-agents", type=_agent_list, default=None,
                     metavar="N[,N...]",
                     help="matrix cells --check must find per scenario "
                          "(default: the benchmarked agent list)")
    hot.add_argument("--spec", action="store_true",
                     help="also replay every cell under metropolis-spec "
                          "and attach the speculative win/loss column "
                          "(spec_speedup + ledger counters); with "
                          "--check, speculative mode must stay within "
                          "--min-spec-ratio of plain OOO on every cell "
                          "and win on at least one")
    hot.add_argument("--min-spec-ratio", type=float,
                     default=MIN_SPEC_RATIO,
                     help="per-cell speculative/plain virtual-time "
                          "ratio floor for --spec --check")
    hot.add_argument("--scale", action="store_true",
                     help="run the scale matrix instead: a 2000-agent "
                          "reference cell plus serial and multiprocess "
                          "large tiled cells per scenario (default "
                          f"{list(SCALE_SCENARIOS)}) with the region-"
                          "sharded controller; --check gates each "
                          "cell's throughput ratio and the parallel/"
                          "serial ctrl-steps/s ratio")
    hot.add_argument("--scale-agents", type=int, default=SCALE_AGENTS,
                     help="population of the large scale cell "
                          f"(default {SCALE_AGENTS}; 1000000 adds the "
                          "nightly scale-large cell gated against the "
                          "100k parallel cell)")
    hot.add_argument("--min-scale-ratio", type=float,
                     default=MIN_SCALE_RATIO,
                     help="required scale-cell/reference-cell "
                          "throughput ratio for --scale --check")
    hot.add_argument("--parallel-workers", type=int,
                     default=PARALLEL_WORKERS,
                     help="worker processes for the multiprocess "
                          "scale cells (default "
                          f"{PARALLEL_WORKERS})")
    hot.add_argument("--min-parallel-ratio", type=float,
                     default=MIN_PARALLEL_RATIO,
                     help="required parallel/serial ctrl-steps/s "
                          "ratio for --scale --check")
    srv = sub.add_parser(
        "serving", help="end-to-end serving matrix: tokens/s + KV "
                        "counters per scenario on its declared "
                        "deployment profile")
    srv.add_argument("--scenario", action="append", default=None,
                     choices=scenario_names(), dest="scenarios",
                     help="limit to a scenario (repeatable)")
    srv.add_argument("--out", type=Path, default=Path("BENCH_serving.json"),
                     help="write the JSON report here")
    srv.add_argument("--baseline", type=Path, default=SERVING_BASELINE_PATH,
                     help="committed baseline report to compare against")
    srv.add_argument("--check", action="store_true",
                     help="exit 1 if any cell is missing, lacks a "
                          "baseline entry, regresses on end-to-end "
                          "tokens/s, falls through the wall-clock "
                          "floor, or invocation-distance eviction "
                          "beats LRU nowhere")
    srv.add_argument("--min-ratio", type=float, default=MIN_TOKENS_RATIO,
                     help="required tokens/s ratio vs. baseline "
                          "for --check")
    srv.add_argument("--min-wall-ratio", type=float,
                     default=MIN_WALL_RATIO,
                     help="calibration-normalized wall-clock floor "
                          "for --check")
    srv.add_argument("--list-profiles", action="store_true",
                     help="print each scenario's serving profile and "
                          "exit (no benchmarking)")
    args = parser.parse_args(argv)

    if args.command == "list":
        for name, fn in sorted(EXPERIMENTS.items()):
            doc_lines = (fn.__doc__ or "").strip().splitlines() or [""]
            print(f"{name:<20} {doc_lines[0]}")
        return 0

    if args.command == "scenarios":
        header = (f"{'name':<14}{'metric':<11}{'agents/seg':>10}  "
                  f"description")
        print(header)
        print("-" * len(header))
        for name in scenario_names():
            scn = get_scenario(name)
            print(f"{name:<14}{scn.metric:<11}"
                  f"{scn.agents_per_segment:>10}  {scn.description}")
        return 0

    if args.command == "smoke":
        try:
            report = run_smoke(out=args.out, scenarios=args.scenarios,
                               check_live=not args.skip_live)
        except ScenarioError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        print(json.dumps(report, indent=2))
        return 0

    if args.command == "chaos":
        seeds = tuple(args.seeds) if args.seeds else (0,)
        report = run_chaos(out=args.out, scenarios=args.scenarios,
                           seeds=seeds)
        print(format_chaos_report(report))
        if args.out is not None:
            print(f"[report written to {args.out}]")
        if args.check:
            failures = check_chaos_report(report)
            if failures:
                for failure in failures:
                    print(f"FAIL: {failure}", file=sys.stderr)
                return 1
            print("chaos gate: ok")
        return 0

    if args.command == "hotpath" and args.scale:
        out = args.out if args.out != Path("BENCH_hotpath.json") \
            else Path("BENCH_hotpath_scale.json")
        scenarios = tuple(args.scenarios) if args.scenarios \
            else SCALE_SCENARIOS
        report = run_scale(scenarios=scenarios,
                           scale_agents=args.scale_agents, out=out,
                           parallel_workers=args.parallel_workers)
        print(format_scale_report(report))
        if out is not None:
            print(f"[report written to {out}]")
        if args.check:
            for line in scale_ratio_lines(report):
                print(line)
            failures = check_scale_report(report, args.min_scale_ratio,
                                          min_parallel_ratio=(
                                              args.min_parallel_ratio))
            if failures:
                for failure in failures:
                    print(f"FAIL: {failure}", file=sys.stderr)
                return 1
            print("hotpath scale gate: ok")
        return 0

    if args.command == "hotpath":
        if args.check and load_baseline(args.baseline) is None:
            # A missing baseline must not silently degrade the gate to
            # floor-only: that is how a regression lands green.
            print(f"FAIL: baseline {args.baseline} not found "
                  f"(required for --check)", file=sys.stderr)
            return 1
        agent_counts = tuple(c for chunk in args.agents for c in chunk) \
            if args.agents else AGENT_COUNTS
        report = run_hotpath(
            scenarios=args.scenarios, agent_counts=agent_counts,
            baseline=args.baseline, history=args.history,
            trajectory=TRAJECTORY, out=args.out, spec=args.spec)
        print(format_report(report))
        if args.out is not None:
            print(f"[report written to {args.out}]")
        if args.check:
            required = tuple(args.require_agents) \
                if args.require_agents else agent_counts
            retried = retry_perf_cells(
                report, baseline=args.baseline, history=args.history,
                trajectory=TRAJECTORY,
                min_throughput=args.min_throughput,
                min_speedup=args.min_speedup, out=args.out)
            if retried:
                print(f"[re-measured {len(retried)} noisy cells: "
                      f"{', '.join(retried)}]")
                print(format_report(report))
            failures = check_report(
                report, args.min_throughput, args.min_speedup,
                required_counts=required,
                max_kernel_events_per_cluster=(
                    args.max_kernel_events_per_cluster),
                max_fallback_scans=args.max_fallback_scans,
                min_spec_ratio=args.min_spec_ratio if args.spec
                else None)
            if failures:
                for failure in failures:
                    print(f"FAIL: {failure}", file=sys.stderr)
                return 1
            print("hotpath gate: ok")
        return 0

    if args.command == "serving":
        if args.list_profiles:
            print(format_profiles())
            return 0
        if args.check and load_baseline(args.baseline) is None:
            # Same rule as the hotpath gate: a missing baseline must
            # fail loudly, not silently skip the regression comparison.
            print(f"FAIL: baseline {args.baseline} not found "
                  f"(required for --check)", file=sys.stderr)
            return 1
        report = run_serving(scenarios=args.scenarios,
                             baseline=args.baseline, out=args.out)
        print(format_serving_report(report))
        if args.out is not None:
            print(f"[report written to {args.out}]")
        if args.check:
            failures = check_serving_report(
                report, args.min_ratio, args.min_wall_ratio,
                required_cells=CELLS)
            if failures:
                for failure in failures:
                    print(f"FAIL: {failure}", file=sys.stderr)
                return 1
            print("serving gate: ok")
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        started = time.monotonic()
        result = run_experiment(name, full=args.full,
                                scenario=args.scenario)
        elapsed = time.monotonic() - started
        print(result.table)
        print(f"[{name} completed in {elapsed:.1f}s]\n")
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{name}.txt").write_text(result.table + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
