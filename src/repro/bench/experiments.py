"""Per-figure/table experiment definitions (the paper's §4 evaluation).

Every entry in :data:`EXPERIMENTS` regenerates one figure or table: same
workloads (SmallVille days, busy/quiet hours, concatenated villes), same
deployments (L4/Llama-3-8B, A100/Llama-3-70B TP4, A100/Mixtral TP2), same
comparisons (single-thread / parallel-sync / metropolis / oracle plus the
critical and no-dependency bounds). ``full=True`` runs paper scale;
the default quick scale keeps every comparison but shrinks windows and
agent counts so the whole suite fits in CI.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

from ..config import DependencyConfig, SchedulerConfig
from ..core import run_replay
from ..instrument import render_ascii_timeline
from ..scenarios import get_scenario
from ..trace import cached_day_trace, compute_stats, generate_concatenated_trace
from .report import format_series, format_table
from .runner import bounds_for, hour_window, run_policies, serving_for

def full_mode_default() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


def scenario_default() -> str:
    """Workload scenario, overridable via ``REPRO_BENCH_SCENARIO``."""
    return os.environ.get("REPRO_BENCH_SCENARIO", "smallville")


@dataclass
class ExperimentResult:
    name: str
    #: Human-readable table(s), printed by benches and the CLI.
    table: str
    #: Raw numbers for tests and EXPERIMENTS.md.
    data: dict = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Figure 4: full-day SmallVille (25 agents)
# ---------------------------------------------------------------------------

def _fullday_experiment(name: str, platform: str, gpu_counts_full,
                        gpu_counts_quick, full: bool,
                        scenario: str) -> ExperimentResult:
    gpus = gpu_counts_full if full else gpu_counts_quick
    scn = get_scenario(scenario)
    day = cached_day_trace(seed=0, scenario=scn)
    # Quick mode replays a 3-hour slice around the busy hour.
    trace = day if full else hour_window(day, scn.busy_hour - 1, n_hours=3)
    policies = ["single-thread", "parallel-sync", "metropolis", "oracle"]
    rows = []
    data: dict = {"gpus": list(gpus), "policies": {}, "bounds": {},
                  "scenario": scn.name}
    for policy in policies:
        data["policies"][policy] = {}
    for num_gpus in gpus:
        outcomes = run_policies(trace, platform, num_gpus, policies)
        bounds = bounds_for(trace, platform, num_gpus,
                            include_no_dependency=False)
        data["bounds"][num_gpus] = bounds
        for policy in policies:
            o = outcomes[policy]
            data["policies"][policy][num_gpus] = {
                "time": o.completion_time,
                "parallelism": o.achieved_parallelism,
            }
        m = outcomes["metropolis"]
        rows.extend(
            [num_gpus, p, round(outcomes[p].completion_time, 1),
             round(outcomes[p].achieved_parallelism, 2),
             f"{outcomes[p].completion_time / m.completion_time:.2f}x"]
            for p in policies)
        rows.append([num_gpus, "critical", round(bounds["critical"], 1),
                     "-", "-"])
    table = format_table(
        f"{name}: end-to-end completion time "
        f"({'full day' if full else '3-hour window'}, "
        f"{trace.meta.n_agents} agents, {scn.name}, {platform})",
        ["gpus", "policy", "time (s)", "parallelism", "vs metropolis"],
        rows,
        note="paper: metropolis 2.38-3.25x over single-thread, 1.44-1.67x "
             "over parallel-sync, 74.7-82.9% of oracle (L4); parallelism "
             "0.95 / 1.94 / 3.46 on 8 GPUs")
    return ExperimentResult(name, table, data)


def fig4a(full: bool = False,
          scenario: str | None = None) -> ExperimentResult:
    """Fig. 4a: Llama-3-8B on 1-8 NVIDIA L4 GPUs."""
    return _fullday_experiment("fig4a", "l4-8b", (1, 2, 4, 8), (1, 8), full,
                               scenario or scenario_default())


def fig4b(full: bool = False,
          scenario: str | None = None) -> ExperimentResult:
    """Fig. 4b: Llama-3-70B (TP4) on 4/8 NVIDIA A100 GPUs."""
    return _fullday_experiment("fig4b", "a100-70b", (4, 8), (4,), full,
                               scenario or scenario_default())


def fig4c(full: bool = False,
          scenario: str | None = None) -> ExperimentResult:
    """Fig. 4c: LLM query distribution over the simulated day."""
    scn = get_scenario(scenario or scenario_default())
    day = cached_day_trace(seed=0, scenario=scn)
    stats = compute_stats(day)
    per_hour = [int(x) for x in stats.calls_per_hour]
    rows = [[h, per_hour[h]] for h in range(24)]
    busy, quiet = scn.busy_hour, scn.quiet_hour
    table = format_table(
        f"fig4c: LLM calls per simulated hour "
        f"({day.meta.n_agents} agents, one {scn.name} day)",
        ["hour", "calls"], rows,
        note=f"total {stats.total_calls} (paper ~56.7k on smallville); "
             f"busy {busy}h {per_hour[busy]} (~5k); quiet {quiet}h "
             f"{per_hour[quiet]} (~800); 1am-4am asleep: {per_hour[1:4]}")
    return ExperimentResult("fig4c", table, {
        "calls_per_hour": per_hour,
        "total_calls": stats.total_calls,
        "mean_input_tokens": stats.mean_input_tokens,
        "mean_output_tokens": stats.mean_output_tokens,
        "scenario": scn.name,
    })


# ---------------------------------------------------------------------------
# Figures 5-7: scaling to 1000 agents (busy / quiet hours)
# ---------------------------------------------------------------------------

def _scaling_experiment(name: str, platform: str, gpu_counts,
                        full: bool, scenario: str) -> ExperimentResult:
    scn = get_scenario(scenario)
    override = os.environ.get("REPRO_BENCH_AGENTS", "")
    if override:
        agent_counts = tuple(int(x) for x in override.split(","))
    else:
        agent_counts = (25, 100, 500, 1000) if full else (25, 100)
    hours = {"busy": scn.busy_hour, "quiet": scn.quiet_hour}
    policies = ["parallel-sync", "metropolis", "oracle"]
    data: dict = {"agents": list(agent_counts), "series": {},
                  "scenario": scn.name}
    tables = []
    for label, hour in hours.items():
        for num_gpus in gpu_counts:
            series: dict[str, list[float]] = {p: [] for p in policies}
            series["gpu-limit"] = []
            speedups = []
            for n_agents in agent_counts:
                day = generate_concatenated_trace(n_agents, scenario=scn)
                trace = hour_window(day, hour)
                outcomes = run_policies(trace, platform, num_gpus, policies)
                bounds = bounds_for(trace, platform, num_gpus)
                for p in policies:
                    series[p].append(outcomes[p].completion_time)
                series["gpu-limit"].append(bounds["gpu-limit"])
                speedups.append(outcomes["parallel-sync"].completion_time
                                / outcomes["metropolis"].completion_time)
            key = f"{label}-{num_gpus}gpu"
            data["series"][key] = {k: list(v) for k, v in series.items()}
            data["series"][key]["metropolis_speedup"] = speedups
            tables.append(format_series(
                f"{name} ({label} hour, {num_gpus} GPUs, {scn.name}, "
                f"{platform}): completion time (s) vs agents",
                agent_counts, series))
            tables.append("metropolis speedup over parallel-sync: "
                          + ", ".join(f"{n}: {s:.2f}x" for n, s in
                                      zip(agent_counts, speedups)))
    return ExperimentResult(name, "\n\n".join(tables), data)


def fig5(full: bool = False,
         scenario: str | None = None) -> ExperimentResult:
    """Fig. 5: busy/quiet hour scaling, Llama-3-8B on L4s."""
    return _scaling_experiment("fig5", "l4-8b", (1, 8) if full else (1,),
                               full, scenario or scenario_default())


def fig6(full: bool = False,
         scenario: str | None = None) -> ExperimentResult:
    """Fig. 6: busy/quiet hour scaling, Llama-3-70B on 8 A100s."""
    return _scaling_experiment("fig6", "a100-70b", (8,), full,
                               scenario or scenario_default())


def fig7(full: bool = False,
         scenario: str | None = None) -> ExperimentResult:
    """Fig. 7: busy/quiet hour scaling, Mixtral-8x7B on 8 A100s."""
    return _scaling_experiment("fig7", "a100-mixtral", (8,), full,
                               scenario or scenario_default())


# ---------------------------------------------------------------------------
# Table 1: priority-scheduling ablation
# ---------------------------------------------------------------------------

def table1(full: bool = False,
           scenario: str | None = None) -> ExperimentResult:
    """Table 1: priority-scheduling on/off for metropolis and oracle.

    Priority acts through the contended resources of the paper's
    architecture: the finite worker pool (ready-queue order) and the
    serving engine's waiting queue. The pool is sized per §3.1 ("adjusted
    based on available CPU resources") so that it binds under the
    500-agent busy-hour load, as on the authors' testbed.
    """
    scn = get_scenario(scenario or scenario_default())
    n_agents = 500 if full else 100
    gpu_counts = (4, 8) if full else (4,)
    # Sized so the §3.1 worker pool just binds under the busy-hour load
    # (the regime of the authors' CPU-constrained testbed); see the scan
    # in EXPERIMENTS.md — an unbounded pool hides the priority effect.
    num_workers = 24 if full else 12
    day = generate_concatenated_trace(n_agents, scenario=scn)
    trace = hour_window(day, scn.busy_hour)
    rows = []
    data: dict = {}
    for policy in ("metropolis", "oracle"):
        for num_gpus in gpu_counts:
            with_priority = run_policies(
                trace, "l4-8b", num_gpus, [policy], priority=True,
                num_workers=num_workers)[policy]
            without = run_policies(
                trace, "l4-8b", num_gpus, [policy], priority=False,
                num_workers=num_workers)[policy]
            speedup = (without.completion_time
                       / with_priority.completion_time - 1.0) * 100.0
            data[f"{policy}-{num_gpus}"] = {
                "with": with_priority.completion_time,
                "without": without.completion_time,
                "speedup_pct": speedup,
                "parallelism_with": with_priority.achieved_parallelism,
                "parallelism_without": without.achieved_parallelism,
            }
            rows.append([policy, num_gpus,
                         round(with_priority.completion_time, 1),
                         round(without.completion_time, 1),
                         f"{speedup:.2f}%",
                         round(with_priority.achieved_parallelism, 1),
                         round(without.achieved_parallelism, 1)])
    table = format_table(
        f"table1: priority scheduling ({n_agents} agents, busy hour, "
        f"{scn.name}, L4)",
        ["policy", "gpus", "w/ priority (s)", "w/o priority (s)",
         "speedup", "par w/", "par w/o"],
        rows,
        note="paper (500 agents): metropolis gains 3.84% @4 GPUs, 15.7% "
             "@8 GPUs; oracle ~0%; parallelism 41.9->50.9 vs 69.4->69.9")
    return ExperimentResult("table1", table, data)


# ---------------------------------------------------------------------------
# Figures 1-2: trace anatomy
# ---------------------------------------------------------------------------

def fig1(full: bool = False,
         scenario: str | None = None) -> ExperimentResult:
    """Fig. 1: per-agent LLM invocation streams under parallel-sync."""
    scn = get_scenario(scenario or scenario_default())
    day = cached_day_trace(seed=0, scenario=scn)
    start = scn.busy_hour * 360
    trace = day.window(start, start + (60 if not full else 180))
    result = run_replay(trace, SchedulerConfig(policy="parallel-sync",
                                               scenario=scn.name),
                        serving_for("l4-8b", 1), collect_timeline=True)
    art = render_ascii_timeline(
        result.timeline.events, trace.meta.n_agents, width=100,
        step_marks=result.step_completion_times)
    note = (f"achieved parallelism {result.achieved_parallelism:.2f} "
            f"(paper: ~1.94 average concurrent LLM queries)")
    return ExperimentResult("fig1", art + "\n" + note, {
        "parallelism": result.achieved_parallelism,
        "events": len(result.timeline.events),
    })


def fig2(full: bool = False,
         scenario: str | None = None) -> ExperimentResult:
    """§2.2 dependency statistics behind Figure 2."""
    from ..core.oracle import mean_dependency_count
    scn = get_scenario(scenario or scenario_default())
    day = cached_day_trace(seed=0, scenario=scn)
    trace = day if full else hour_window(day, scn.busy_hour - 1, n_hours=3)
    mean_deps = mean_dependency_count(trace)
    table = format_table(
        "fig2: real vs enforced dependencies",
        ["quantity", "value"],
        [["agents (all-to-all under global sync)", trace.meta.n_agents],
         ["mean real dependency agents (incl. self)", round(mean_deps, 2)]],
        note="paper: 1.85 real dependency agents vs 25 enforced")
    return ExperimentResult("fig2", table, {"mean_dependency_agents": mean_deps})


# ---------------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md / §6)
# ---------------------------------------------------------------------------

def ablation_metric(full: bool = False,
                    scenario: str | None = None) -> ExperimentResult:
    """Distance-metric choice (§6 generality): effect on OOO replay."""
    scn = get_scenario(scenario or scenario_default())
    day = cached_day_trace(seed=0, scenario=scn)
    trace = hour_window(day, scn.busy_hour)
    rows = []
    data = {}
    for metric in ("euclidean", "chebyshev", "manhattan"):
        scheduler = SchedulerConfig(
            policy="metropolis", scenario=scn.name,
            dependency=DependencyConfig(metric=metric))
        result = run_replay(trace, scheduler, serving_for("l4-8b", 1))
        data[metric] = result.completion_time
        rows.append([metric, round(result.completion_time, 1),
                     round(result.achieved_parallelism, 2),
                     result.driver_stats.max_step_spread])
    table = format_table(
        "ablation: distance metric (metropolis, busy hour, 1 L4)",
        ["metric", "time (s)", "parallelism", "max spread"], rows,
        note="chebyshev under-approximates euclidean distance on the grid "
             "(stricter rules); manhattan over-approximates (looser)")
    return ExperimentResult("ablation_metric", table, data)


def ablation_radius(full: bool = False,
                    scenario: str | None = None) -> ExperimentResult:
    """Sensitivity of OOO benefit to the perception radius."""
    scn = get_scenario(scenario or scenario_default())
    day = cached_day_trace(seed=0, scenario=scn)
    trace = hour_window(day, scn.busy_hour)
    rows = []
    data = {}
    for radius in (2.0, 4.0, 8.0, 16.0):
        scheduler = SchedulerConfig(
            policy="metropolis", scenario=scn.name,
            dependency=DependencyConfig(radius_p=radius))
        result = run_replay(trace, scheduler, serving_for("l4-8b", 1))
        data[radius] = result.completion_time
        rows.append([radius, round(result.completion_time, 1),
                     round(result.achieved_parallelism, 2),
                     round(result.driver_stats.mean_cluster_size, 2)])
    table = format_table(
        "ablation: perception radius (metropolis, busy hour, 1 L4)",
        ["radius_p", "time (s)", "parallelism", "mean cluster"], rows,
        note="larger radii couple more agents -> less OOO headroom; the "
             "trace itself was generated at radius 4 (GenAgent)")
    return ExperimentResult("ablation_radius", table, data)


def ablation_fidelity(full: bool = False,
                      scenario: str | None = None) -> ExperimentResult:
    """Fluid vs per-iteration serving simulation agreement."""
    scn = get_scenario(scenario or scenario_default())
    day = cached_day_trace(seed=0, scenario=scn)
    start = scn.busy_hour * 360
    trace = day.window(start, start + (360 if full else 90))
    rows = []
    data = {}
    for fidelity in ("fluid", "iteration"):
        outcome = run_policies(trace, "l4-8b", 1, ["metropolis"],
                               fidelity=fidelity)["metropolis"]
        data[fidelity] = outcome.completion_time
        rows.append([fidelity, round(outcome.completion_time, 2),
                     round(outcome.achieved_parallelism, 2)])
    gap = abs(data["fluid"] - data["iteration"]) / data["iteration"] * 100
    table = format_table(
        "ablation: serving-simulation fidelity (metropolis)",
        ["fidelity", "time (s)", "parallelism"], rows,
        note=f"relative completion-time gap {gap:.2f}% (fluid mode is the "
             f"O(log n) fast path used at 1000-agent scale)")
    data["gap_pct"] = gap
    return ExperimentResult("ablation_fidelity", table, data)


def ablation_workers(full: bool = False,
                     scenario: str | None = None) -> ExperimentResult:
    """Worker-pool cap (§3.6 scalability of the controller/worker split)."""
    scn = get_scenario(scenario or scenario_default())
    day = cached_day_trace(seed=0, scenario=scn)
    trace = hour_window(day, scn.busy_hour)
    rows = []
    data = {}
    for workers in (1, 2, 8, 0):
        scheduler = SchedulerConfig(policy="metropolis", num_workers=workers,
                                    scenario=scn.name)
        result = run_replay(trace, scheduler, serving_for("l4-8b", 1))
        label = workers if workers else "unbounded"
        data[str(label)] = result.completion_time
        rows.append([label, round(result.completion_time, 1),
                     round(result.achieved_parallelism, 2)])
    table = format_table(
        "ablation: worker pool size (metropolis, busy hour, 1 L4)",
        ["workers", "time (s)", "parallelism"], rows,
        note="too few workers serialize clusters and waste the GPU")
    return ExperimentResult("ablation_workers", table, data)


def ablation_interactive(full: bool = False,
                         scenario: str | None = None) -> ExperimentResult:
    """§6 hybrid deployment: latency for a player-adjacent agent.

    Marks one agent latency-critical: its clusters and LLM requests
    preempt step-priority order. Reports that agent's per-step latency
    distribution against the plain OOO run, and the throughput cost to
    the background simulation — the interactive/offline balance the
    paper's future-work section describes.
    """
    import numpy as np

    # Interactive latency only matters under contention: saturate the
    # worker pool and GPU with many background agents.
    scn = get_scenario(scenario or scenario_default())
    n_agents = 500 if full else 100
    num_workers = 32 if full else 12
    day = generate_concatenated_trace(n_agents, scenario=scn)
    trace = hour_window(day, scn.busy_hour)
    serving = serving_for("l4-8b", 1)
    rows = []
    data = {}
    for label, boost in (("background", False), ("interactive", True)):
        scheduler = SchedulerConfig(policy="metropolis",
                                    interactive_agents=(0,),
                                    interactive_boost=boost,
                                    num_workers=num_workers,
                                    scenario=scn.name)
        result = run_replay(trace, scheduler, serving)
        lat = result.driver_stats.extra["interactive_latencies"] or [0.0]
        mean_lat = float(np.mean(lat))
        p95 = float(np.percentile(lat, 95))
        data[label] = {"completion": result.completion_time,
                       "mean_latency": mean_lat, "p95_latency": p95}
        rows.append([label, round(result.completion_time, 1),
                     round(mean_lat, 3), round(p95, 3)])
    table = format_table(
        "ablation: interactive agent priority (metropolis, busy hour, 1 L4)",
        ["mode", "total time (s)", "mean step lat (s)", "p95 (s)"],
        rows,
        note="§6: latency-critical foreground agents preempt background "
             "throughput scheduling")
    return ExperimentResult("ablation_interactive", table, data)


def ablation_prefix_cache(full: bool = False,
                          scenario: str | None = None) -> ExperimentResult:
    """§4.1's note: SGLang's prefix cache gives ~20% throughput.

    Replays the busy hour with the common-prefix cache modelled at
    several hit rates (GenAgent prompts share persona/world preambles).
    """
    from dataclasses import replace as dc_replace

    scn = get_scenario(scenario or scenario_default())
    day = cached_day_trace(seed=0, scenario=scn)
    trace = hour_window(day, scn.busy_hour)
    rows = []
    data = {}
    base = serving_for("l4-8b", 1)
    for hit in (0.0, 0.3, 0.6):
        serving = dc_replace(base, prefix_cache_hit_rate=hit)
        result = run_replay(trace, SchedulerConfig(policy="metropolis",
                                                   scenario=scn.name),
                            serving)
        data[hit] = result.completion_time
        rows.append([f"{hit:.0%}", round(result.completion_time, 1),
                     f"{data[0.0] / result.completion_time:.2f}x"])
    table = format_table(
        "ablation: common-prefix cache hit rate (metropolis, busy hour, "
        "1 L4)",
        ["hit rate", "time (s)", "speedup"], rows,
        note="paper: enabling SGLang's cache gave ~20% throughput across "
             "settings (they benchmark with it off for stability)")
    return ExperimentResult("ablation_prefix_cache", table, data)


def ablation_speculative(full: bool = False,
                         scenario: str | None = None) -> ExperimentResult:
    """§6 speculative execution: how much of the oracle gap it closes.

    Compares plain metropolis, speculative metropolis (several budgets)
    and the oracle on the busy hour. The race detector is a replay-mode
    lookahead; misspeculations and squashes re-execute at full cost.
    """
    scn = get_scenario(scenario or scenario_default())
    day = cached_day_trace(seed=0, scenario=scn)
    trace = hour_window(day, scn.busy_hour)
    serving = serving_for("l4-8b", 1)
    rows = []
    data = {}
    metro = run_replay(trace, SchedulerConfig(policy="metropolis",
                                              scenario=scn.name), serving)
    oracle = run_replay(trace, SchedulerConfig(policy="oracle",
                                               scenario=scn.name), serving)
    data["metropolis"] = metro.completion_time
    data["oracle"] = oracle.completion_time
    rows.append(["metropolis", metro.completion_time, "-", "-", "-"])
    for budget in (4, 8, 16):
        result = run_replay(
            trace, SchedulerConfig(policy="metropolis-spec",
                                   speculation_budget=budget,
                                   scenario=scn.name), serving)
        extra = result.driver_stats.extra
        gap_closed = ((metro.completion_time - result.completion_time)
                      / max(metro.completion_time - oracle.completion_time,
                            1e-9) * 100)
        data[f"spec-{budget}"] = result.completion_time
        data[f"gap_closed_{budget}_pct"] = gap_closed
        rows.append([f"spec (budget {budget})",
                     round(result.completion_time, 1),
                     extra["speculations"], extra["squashes"],
                     f"{gap_closed:.0f}%"])
    rows.append(["oracle", round(oracle.completion_time, 1), "-", "-",
                 "100%"])
    table = format_table(
        "ablation: speculative execution (busy hour, 1 L4)",
        ["policy", "time (s)", "speculations", "squashes",
         "oracle gap closed"],
        rows,
        note="§6: speculation overlaps blocked waiting with execution; "
             "commits retire in order so outcomes are unchanged")
    return ExperimentResult("ablation_speculative", table, data)


EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig1": fig1,
    "fig2": fig2,
    "fig4a": fig4a,
    "fig4b": fig4b,
    "fig4c": fig4c,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "table1": table1,
    "ablation_metric": ablation_metric,
    "ablation_radius": ablation_radius,
    "ablation_fidelity": ablation_fidelity,
    "ablation_workers": ablation_workers,
    "ablation_interactive": ablation_interactive,
    "ablation_prefix_cache": ablation_prefix_cache,
    "ablation_speculative": ablation_speculative,
}


def run_experiment(name: str, full: bool | None = None,
                   scenario: str | None = None) -> ExperimentResult:
    """Run one named experiment (quick scale unless ``full``).

    ``scenario`` selects the registered workload; ``None`` falls back to
    ``REPRO_BENCH_SCENARIO`` and then ``smallville``.
    """
    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}")
    if full is None:
        full = full_mode_default()
    return EXPERIMENTS[name](full, scenario=scenario)
