"""Benchmark harness: experiment definitions for every paper figure/table.

Each experiment in :mod:`repro.bench.experiments` regenerates the rows or
series of one figure/table from the paper's evaluation (§4); the
``benchmarks/`` pytest-benchmark suite and the ``repro-bench`` CLI both
drive these functions. Set ``REPRO_BENCH_FULL=1`` for paper-scale runs
(full days, up to 1000 agents); the default "quick" scale preserves every
comparison's shape at CI-friendly cost.
"""

from .experiments import (EXPERIMENTS, ExperimentResult, run_experiment)
from .hotpath import (bench_one, check_report, format_report, gate_hotpath,
                      hotpath_trace, run_hotpath)
from .runner import PolicyOutcome, bounds_for, hour_window, run_policies
from .report import format_table, format_ratio
from .serving import (bench_cell, check_serving_report, format_profiles,
                      format_serving_report, gate_serving, run_serving)
from .smoke import run_smoke, scenario_window_trace, smoke_one

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "run_experiment",
    "run_policies",
    "PolicyOutcome",
    "bounds_for",
    "hour_window",
    "format_table",
    "format_ratio",
    "run_smoke",
    "smoke_one",
    "scenario_window_trace",
    "run_hotpath",
    "bench_one",
    "hotpath_trace",
    "check_report",
    "gate_hotpath",
    "format_report",
    "run_serving",
    "bench_cell",
    "check_serving_report",
    "gate_serving",
    "format_serving_report",
    "format_profiles",
]
