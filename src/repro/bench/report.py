"""Plain-text tables for bench output (the paper's rows/series)."""

from __future__ import annotations

from typing import Sequence


def format_ratio(value: float) -> str:
    return f"{value:.2f}x"


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 note: str | None = None) -> str:
    """Fixed-width table with a title rule, GitHub-style."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([
            f"{v:.1f}" if isinstance(v, float) else str(v) for v in row])
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = [title, "=" * len(title)]
    header_line = " | ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
    if note:
        lines.append(f"({note})")
    return "\n".join(lines)


def format_series(title: str, xs: Sequence[object],
                  series: dict[str, Sequence[float]]) -> str:
    """A figure's line series as a table with one column per x value."""
    headers = ["series", *[str(x) for x in xs]]
    rows = [[name, *[f"{v:.1f}" for v in values]]
            for name, values in series.items()]
    return format_table(title, headers, rows)
