"""Per-scenario smoke replays: the CI gate behind ``repro-bench smoke``.

For every registered scenario this generates a tiny trace over the
scenario's active window, replays it under ``parallel-sync`` and
``metropolis`` on a simulated 1x L4 / Llama-3-8B deployment, and checks
the two properties a scenario must hold to ship:

* **speedup** — metropolis completes the window strictly faster than
  parallel-sync (the OOO scheduler has headroom to exploit);
* **equivalence** — the live threaded engine, run OOO over the same
  window, ends in the identical world state as lock-step execution.

The JSON report is uploaded as a CI artifact so regressions are easy to
bisect from the workflow page.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..config import SchedulerConfig
from ..core import run_replay
from ..errors import ScenarioError
from ..scenarios import get_scenario, scenario_names
from ..trace import generate_trace
from .runner import serving_for

#: Agents used for the smoke replay (capped per scenario segment size).
SMOKE_AGENTS = 10
SMOKE_SEED = 0


def scenario_window_trace(scenario, n_agents: int = SMOKE_AGENTS,
                          seed: int = SMOKE_SEED):
    """The canonical smoke workload: a small trace over the scenario's
    active window. The CI gate, the per-scenario microbenchmarks and the
    equivalence tests all replay exactly this, so their numbers compare.
    """
    scn = get_scenario(scenario)
    start, end = scn.active_window
    n_agents = min(n_agents, scn.agents_per_segment)
    return generate_trace(n_agents, end, seed=seed,
                          scenario=scn).window(start, end)


def smoke_one(name: str, check_live: bool = True) -> dict:
    """Run the smoke gate for one scenario; returns its report entry."""
    scn = get_scenario(name)
    scn.validate()
    start, end = scn.active_window
    trace = scenario_window_trace(scn)
    n_agents = trace.meta.n_agents
    serving = serving_for("l4-8b", 1)
    times = {}
    for policy in ("parallel-sync", "metropolis"):
        result = run_replay(
            trace, SchedulerConfig(policy=policy, scenario=scn.name),
            serving)
        times[policy] = result.completion_time
    entry = {
        "scenario": scn.name,
        "n_agents": n_agents,
        "window": [start, end],
        "n_calls": trace.n_calls,
        "parallel_sync_time": times["parallel-sync"],
        "metropolis_time": times["metropolis"],
        "speedup": times["parallel-sync"] / times["metropolis"],
        "metropolis_beats_sync": times["metropolis"] < times["parallel-sync"],
    }
    if check_live:
        entry["live_state_identical"] = _live_equivalent(scn, n_agents,
                                                         start, end)
    return entry


def _live_equivalent(scn, n_agents: int, start: int, end: int) -> bool:
    """Live OOO vs lock-step over the active window: identical state?"""
    from ..live import EchoLLMClient, LiveSimulation
    from ..live.environment import BehaviorProgram

    ref = scn.model(n_agents, SMOKE_SEED)
    for step in range(end):
        ref.step_all(step)
    ref_state = [(a.pos, a.awake, a.activity, len(a.memory))
                 for a in ref.agents]

    ooo = scn.model(n_agents, SMOKE_SEED)
    for step in range(start):
        ooo.step_all(step)
    # scenario= routes graph-metric worlds to their own space.
    sim = LiveSimulation(BehaviorProgram(ooo), EchoLLMClient(),
                         scheduler=SchedulerConfig(scenario=scn.name),
                         num_workers=4)
    sim.run(target_step=end, start_step=start)
    ooo_state = [(a.pos, a.awake, a.activity, len(a.memory))
                 for a in ooo.agents]
    return ooo_state == ref_state


def run_smoke(out: Path | None = None, scenarios: list[str] | None = None,
              check_live: bool = True, strict: bool = True) -> dict:
    """Smoke-gate every registered scenario (or the given subset).

    With ``strict`` (the default and what CI runs), any scenario that
    fails either property raises :class:`ScenarioError` after the full
    report is written.
    """
    names = scenarios or scenario_names()
    report = {"scenarios": [smoke_one(name, check_live=check_live)
                            for name in names]}
    failures = [e["scenario"] for e in report["scenarios"]
                if not e["metropolis_beats_sync"]
                or not e.get("live_state_identical", True)]
    report["ok"] = not failures
    if out is not None:
        out = Path(out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2) + "\n")
    if strict and failures:
        raise ScenarioError(
            f"smoke gate failed for: {failures} (see report)")
    return report
