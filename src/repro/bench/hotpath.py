"""Controller hot-path throughput benchmark (§3.6 light critical path).

OOO scheduling only pays off while the controller's per-decision cost
stays far below LLM latency, so this benchmark measures the controller
itself: replay each registered scenario's active window under
``metropolis`` at several agent scales and report **controller
agent-steps per second** — agent-steps retired divided by the wall-clock
seconds the controller spent clustering, updating the dependency graph,
and dispatching (the :attr:`DriverStats.controller_time` accounting).
LLM/serving time is virtual and therefore excluded; the number tracks
pure scheduler overhead.

``repro-bench hotpath`` writes the report to ``BENCH_hotpath.json`` and
— given the committed baseline (``benchmarks/baselines/
hotpath_pr2.json``, the PR 2 scheduler's numbers over the full matrix)
— a ``speedup_vs_baseline`` per entry. The older pre-overhaul record
(``benchmarks/baselines/hotpath_baseline.json``) rides along as
``speedup_vs_preoverhaul`` where its cells exist, extending the
perf-trajectory history. ``--check`` turns the report into a CI gate:
every matrix cell (including the 2000-agent column) must be present,
must clear an absolute throughput floor, must have a baseline
counterpart (a baseline missing a cell fails loudly), and must not
regress below ``min_speedup`` x its baseline.

Baselines travel across machines: every report carries a
``calibration_ops_per_sec`` score from a fixed scheduler-shaped
workload (dict/set churn + small numpy ops), and the speedup columns
are normalized by the calibration ratio, so a CI runner slower than
the machine that recorded the baseline is not misread as a code
regression (``raw_speedup_vs_baseline`` keeps the unnormalized ratio).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from ..config import SchedulerConfig
from ..core import run_replay
from ..errors import ScenarioError
from ..scenarios import get_scenario, scenario_names
from ..trace import generate_concatenated_trace

#: Agent scales benchmarked (the paper's §4.3 scaling axis; the
#: 2000-agent cell pins the flattened scaling curve of the zero-rescan
#: scheduler).
AGENT_COUNTS = (25, 100, 500, 1000, 2000)
HOTPATH_SEED = 0
#: Committed baselines: the PR 2 scheduler over the full matrix (the
#: regression reference) and the pre-overhaul record kept for the
#: trajectory history.
BASELINE_PATH = Path("benchmarks/baselines/hotpath_pr2.json")
PREOVERHAUL_PATH = Path("benchmarks/baselines/hotpath_baseline.json")
#: Default CI gates: an absolute floor every entry must clear, and the
#: minimum (calibration-normalized) throughput ratio vs. the committed
#: baseline. Post-zero-rescan cells measure 30k-43k agent-steps/s on a
#: dev machine, 1.4x-2x the committed PR 2 baseline; the floor sits
#: far below the slowest cell and the ratio bar of 1.0 means "never
#: slower than the PR 2 scheduler", leaving >=40% headroom for
#: calibration noise across runners while any real regression fails.
MIN_THROUGHPUT = 5_000.0
MIN_SPEEDUP = 1.0


def hotpath_trace(scenario, n_agents: int, seed: int = HOTPATH_SEED):
    """The benchmark workload: the scenario's active window at scale.

    Mirrors the §4.3 scaling methodology — independently-seeded map
    segments concatenated side by side — so clustering pressure per
    segment matches the real workload at every agent count.
    """
    scn = get_scenario(scenario)
    start, end = scn.active_window
    day = generate_concatenated_trace(n_agents, end, base_seed=seed,
                                      scenario=scn)
    return day.window(start, end)


def bench_one(scenario: str, n_agents: int,
              policy: str = "metropolis") -> dict:
    """Replay one (scenario, scale) cell; returns its report entry."""
    scn = get_scenario(scenario)
    trace = hotpath_trace(scn, n_agents)
    wall0 = time.perf_counter()
    result = run_replay(
        trace, SchedulerConfig(policy=policy, scenario=scn.name))
    wall = time.perf_counter() - wall0
    stats = result.driver_stats
    agent_steps = trace.meta.n_agents * trace.meta.n_steps
    controller = stats.controller_time
    return {
        "scenario": scn.name,
        "n_agents": trace.meta.n_agents,
        "n_steps": trace.meta.n_steps,
        "agent_steps": agent_steps,
        "policy": policy,
        "wall_time_s": wall,
        "controller_time_s": controller,
        "time_clustering_s": stats.time_clustering,
        "time_graph_s": stats.time_graph,
        "time_dispatch_s": stats.time_dispatch,
        "controller_rounds": stats.controller_rounds,
        "clusters_dispatched": stats.clusters_dispatched,
        "mean_cluster_size": stats.mean_cluster_size,
        "agent_steps_per_sec": agent_steps / controller if controller
        else float("inf"),
        "wall_agent_steps_per_sec": agent_steps / wall if wall
        else float("inf"),
    }


def _entry_key(entry: dict) -> tuple:
    return (entry["scenario"], entry["n_agents"], entry["policy"])


def calibration_score(rounds: int = 5, iters: int = 100_000) -> float:
    """Machine-speed proxy (ops/sec, higher = faster hardware).

    A fixed, deterministic workload with the controller's op mix —
    dict/set churn plus small numpy reductions — timed best-of-N so a
    baseline recorded on one machine can be compared on another.
    """
    best = 0.0
    arr = np.arange(256, dtype=np.int64)
    for _ in range(rounds):
        t0 = time.perf_counter()
        acc = 0
        d: dict[int, int] = {}
        s: set[int] = set()
        for i in range(iters):
            k = (i * 2654435761) & 1023
            d[k] = i
            s.add(k & 255)
            acc += d.get((k * 7) & 1023, 0)
            if not i & 1023:
                acc += int((np.abs(arr - (k & 255)) <= 16).sum())
        elapsed = time.perf_counter() - t0
        if elapsed > 0:
            best = max(best, iters / elapsed)
    return best


def _annotate_speedups(entries: list[dict], cal: float,
                       reference: dict, suffix: str) -> None:
    """Attach ``speedup_vs_<suffix>`` columns against ``reference``.

    Normalized for hardware speed: the reference throughput is scaled
    by (this machine's calibration / the reference machine's).
    """
    ref_cal = reference.get("calibration_ops_per_sec")
    scale = (ref_cal / cal) if (ref_cal and cal) else 1.0
    by_key = {_entry_key(e): e for e in reference["entries"]}
    for entry in entries:
        ref = by_key.get(_entry_key(entry))
        if ref and ref["agent_steps_per_sec"] > 0:
            entry[f"{suffix}_agent_steps_per_sec"] = \
                ref["agent_steps_per_sec"]
            raw = entry["agent_steps_per_sec"] / ref["agent_steps_per_sec"]
            entry[f"raw_speedup_vs_{suffix}"] = raw
            entry[f"speedup_vs_{suffix}"] = raw * scale


def run_hotpath(scenarios: list[str] | None = None,
                agent_counts: tuple[int, ...] = AGENT_COUNTS,
                policy: str = "metropolis",
                baseline: Path | str | None = None,
                history: Path | str | None = None,
                out: Path | str | None = None) -> dict:
    """Benchmark every (scenario, scale) cell; write/return the report.

    ``baseline`` is the committed regression reference (the PR 2
    scheduler); ``history`` optionally adds ``speedup_vs_preoverhaul``
    against the pre-overhaul record for the trajectory view.
    """
    names = scenarios or scenario_names()
    # Calibrate before the bench loop heats the machine up; best-of-N
    # approximates the unthrottled speed either way.
    calibration = calibration_score()
    entries = [bench_one(name, n, policy=policy)
               for name in names for n in sorted(agent_counts)]
    report = {
        "benchmark": "hotpath",
        "policy": policy,
        "agent_counts": sorted(agent_counts),
        "scenarios": list(names),
        "calibration_ops_per_sec": calibration,
        "entries": entries,
    }
    baseline_report = load_baseline(baseline)
    if baseline_report is not None:
        _annotate_speedups(entries, calibration, baseline_report,
                           "baseline")
    history_report = load_baseline(history)
    if history_report is not None:
        _annotate_speedups(entries, calibration, history_report,
                           "preoverhaul")
    if out is not None:
        out = Path(out)
        if out.parent != Path(""):
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2) + "\n")
    return report


def load_baseline(path: Path | str | None) -> dict | None:
    """Load a committed baseline report; None if absent/not given."""
    if path is None:
        return None
    path = Path(path)
    if not path.exists():
        return None
    return json.loads(path.read_text())


def check_report(report: dict,
                 min_throughput: float = MIN_THROUGHPUT,
                 min_speedup: float = MIN_SPEEDUP,
                 required_counts: tuple[int, ...] = ()) -> list[str]:
    """The CI gate: returns human-readable failures (empty = pass).

    ``required_counts`` additionally demands a report entry per
    (scenario, count) — the 2000-agent scaling cell cannot silently
    drop out of the matrix.
    """
    failures = []
    present = {(e["scenario"], e["n_agents"]) for e in report["entries"]}
    for scenario in report.get("scenarios", []):
        for count in required_counts:
            if (scenario, count) not in present:
                failures.append(
                    f"{scenario}@{count}: required matrix cell missing "
                    f"from the report")
    for entry in report["entries"]:
        label = (f"{entry['scenario']}@{entry['n_agents']} "
                 f"({entry['policy']})")
        tput = entry["agent_steps_per_sec"]
        if tput < min_throughput:
            failures.append(
                f"{label}: {tput:.0f} agent-steps/s below the "
                f"{min_throughput:.0f} floor")
        speedup = entry.get("speedup_vs_baseline")
        if speedup is None:
            # A cell with no baseline counterpart must not silently
            # degrade to floor-only (e.g. a new scenario or agent count
            # added without regenerating the committed baseline).
            failures.append(
                f"{label}: no baseline entry — regenerate the report "
                f"passed via --baseline (default {BASELINE_PATH})")
        elif speedup < min_speedup:
            failures.append(
                f"{label}: {speedup:.2f}x vs baseline, below the "
                f"required {min_speedup:.2f}x")
    return failures


def gate_hotpath(report: dict,
                 min_throughput: float = MIN_THROUGHPUT,
                 min_speedup: float = MIN_SPEEDUP) -> None:
    """Raise :class:`ScenarioError` when the gate fails."""
    failures = check_report(report, min_throughput, min_speedup)
    if failures:
        raise ScenarioError(
            "hotpath gate failed:\n  " + "\n  ".join(failures))


def format_report(report: dict) -> str:
    """Fixed-width table for terminal output."""
    header = (f"{'scenario':<14}{'agents':>7}{'steps':>7}"
              f"{'ctrl-steps/s':>14}{'wall-steps/s':>14}"
              f"{'clustering':>11}{'graph':>9}{'dispatch':>9}"
              f"{'rounds':>8}{'vs-base':>9}{'vs-pre':>8}")
    lines = [header, "-" * len(header)]
    for e in report["entries"]:
        speedup = e.get("speedup_vs_baseline")
        pre = e.get("speedup_vs_preoverhaul")
        lines.append(
            f"{e['scenario']:<14}{e['n_agents']:>7}{e['n_steps']:>7}"
            f"{e['agent_steps_per_sec']:>14.0f}"
            f"{e['wall_agent_steps_per_sec']:>14.0f}"
            f"{e['time_clustering_s']:>10.3f}s"
            f"{e['time_graph_s']:>8.3f}s"
            f"{e['time_dispatch_s']:>8.3f}s"
            f"{e['controller_rounds']:>8}"
            + (f"{speedup:>8.2f}x" if speedup is not None else
               f"{'-':>9}")
            + (f"{pre:>7.2f}x" if pre is not None else f"{'-':>8}"))
    return "\n".join(lines)
