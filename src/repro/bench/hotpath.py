"""Controller hot-path throughput benchmark (§3.6 light critical path).

OOO scheduling only pays off while the controller's per-decision cost
stays far below LLM latency, so this benchmark measures the controller
itself: replay each registered scenario's active window under
``metropolis`` at several agent scales and report **controller
agent-steps per second** — agent-steps retired divided by the wall-clock
seconds the controller spent clustering, updating the dependency graph,
and dispatching (the :attr:`DriverStats.controller_time` accounting).
LLM/serving time is virtual and therefore excluded; the number tracks
pure scheduler overhead.

``repro-bench hotpath`` writes the report to ``BENCH_hotpath.json`` and
— given the committed baseline (``benchmarks/baselines/
hotpath_pr6.json``, the PR 6 scheduler's numbers over the full matrix)
— a ``speedup_vs_baseline`` per entry. The older records ride along as
perf-trajectory columns where their cells exist: ``speedup_vs_pr4``
(``hotpath_pr4.json``), ``speedup_vs_pr2`` (``hotpath_pr2.json``) and
``speedup_vs_preoverhaul``
(``hotpath_baseline.json``). ``--check`` turns the report into a CI
gate: every matrix cell (including the 2000-agent column) must be
present, must clear an absolute throughput floor, must have a baseline
counterpart (a baseline missing a cell fails loudly), must not regress
below ``min_speedup`` x its baseline — and the controller's event churn
must stay flat: ``fallback_scans`` (linear scans outside the bucketed
fast path) must stay at zero and ``kernel_events_per_cluster`` (driver-
scheduled kernel events per dispatched cluster; the single-event round
loop amortizes dispatch + commit + round to ``2 * rounds / clusters``,
strictly below the old chain's two-per-cluster floor) must stay under
``--max-kernel-events-per-cluster``.

Baselines travel across machines: every report carries a
``calibration_ops_per_sec`` score from a fixed scheduler-shaped
workload (dict/set churn + small numpy ops), and the speedup columns
are normalized by the calibration ratio, so a CI runner slower than
the machine that recorded the baseline is not misread as a code
regression (``raw_speedup_vs_baseline`` keeps the unnormalized ratio).

``repro-bench hotpath --scale`` runs the separate **scale matrix**
instead: for each of :data:`SCALE_SCENARIOS`, a 2000-agent reference
cell and a 100k-agent cell (1M best-effort locally via
``--scale-agents``), both built by the tiled
:func:`~repro.trace.generator.generate_scale_trace` workload (widened
inter-segment gutters so the region planner can actually shard) and
replayed with a region-sharded controller. The gate is *relative*:
per-agent-step controller throughput at scale must stay within
:data:`MIN_SCALE_RATIO` of the same scenario's 2000-agent cell — a
flat curve is precisely the banded-scan + sharding claim — plus a
calibration-normalized absolute floor, and every entry reports
``peak_rss_mb`` so memory blowups surface in the report.
"""

from __future__ import annotations

import json
import resource
import time
from pathlib import Path

import numpy as np

from ..config import SchedulerConfig
from ..core import run_replay
from ..errors import ScenarioError
from ..scenarios import get_scenario, scenario_names
from ..trace import generate_concatenated_trace
from ..trace.generator import generate_scale_trace

#: Agent scales benchmarked (the paper's §4.3 scaling axis; the
#: 2000-agent cell pins the flattened scaling curve of the zero-rescan
#: scheduler).
AGENT_COUNTS = (25, 100, 500, 1000, 2000)
HOTPATH_SEED = 0
#: Committed baselines: the PR 6 scheduler over the full matrix (the
#: regression reference) plus the PR 4, PR 2 and pre-overhaul records
#: kept as trajectory columns.
BASELINE_PATH = Path("benchmarks/baselines/hotpath_pr6.json")
PR4_PATH = Path("benchmarks/baselines/hotpath_pr4.json")
PR2_PATH = Path("benchmarks/baselines/hotpath_pr2.json")
PREOVERHAUL_PATH = Path("benchmarks/baselines/hotpath_baseline.json")
#: Default trajectory annotations: suffix -> committed report.
TRAJECTORY: tuple[tuple[str, Path], ...] = (
    ("pr4", PR4_PATH),
    ("pr2", PR2_PATH),
    ("preoverhaul", PREOVERHAUL_PATH),
)
#: The scale matrix (``--scale``): one coordinate-metric and one
#: graph-metric scenario, a shared small-scale reference cell, and the
#: CI-gated large cell. 1M is the documented best-effort local run.
SCALE_SCENARIOS = ("smallville", "social-graph")
SCALE_REFERENCE_AGENTS = 2_000
SCALE_AGENTS = 100_000
SCALE_STEPS = 30
#: Shard sizing rule for scale cells: one controller shard per this
#: many agents (both cells of a scenario use the same rule, so the
#: per-shard working set — and with it the cache behavior of the
#: per-shard dependency graphs — is identical at 2k and 1M agents;
#: only global-structure effects remain in the ratio).
SCALE_AGENTS_PER_SHARD = 250
#: Scale gate: the large cell's controller agent-steps/s must stay
#: within this ratio of the same scenario's reference cell. O(live)
#: scans or controller structures that grow with the population would
#: collapse the ratio; O(local) work keeps the curve flat.
MIN_SCALE_RATIO = 0.7
#: Absolute floor for scale cells, calibration-normalized: the floor is
#: scaled by (runner calibration / SCALE_NOMINAL_CALIBRATION), capped
#: at 1x, so a slow CI runner lowers the bar proportionally instead of
#: flaking. The nominal calibration is the machine that set the floor.
SCALE_MIN_THROUGHPUT = 2_000.0
SCALE_NOMINAL_CALIBRATION = 2_000_000.0
#: Default CI gates: an absolute floor every entry must clear, and the
#: minimum (calibration-normalized) throughput ratio vs. the committed
#: baseline. The flat-round controller measures 40k-47k agent-steps/s
#: on coordinate worlds (1.2x-2x the committed PR 4 baseline at the
#: 500+ cells); the floor sits far below the slowest cell and the
#: ratio bar of 0.9 means "never slower than the PR 4 scheduler"
#: modulo calibration noise across runners — the worst committed cell
#: sits at 0.98x (metro-grid@25), so the bar keeps ~8% headroom while
#: any real regression fails.
MIN_THROUGHPUT = 5_000.0
MIN_SPEEDUP = 0.9
#: Kernel-event churn cap: the single-event round loop schedules one
#: dispatch event per round and one commit/round event per finish
#: instant — 0.3-1.5 events per dispatched cluster across the matrix
#: (exactly 2x rounds / clusters, deterministic in virtual time; low
#: coalescing pushes it up), versus a strict >=2 per cluster for the
#: pre-PR 5 per-cluster event chain. The 1.6 bar sits above today's
#: worst cell (1.47) and fails any return of per-cluster scheduling.
MAX_KERNEL_EVENTS_PER_CLUSTER = 1.6
#: Linear scans outside the step-bucketed fast path: every built-in
#: scenario's space offers cell bucketing, so any nonzero count means
#: the fast-path gate broke.
MAX_FALLBACK_SCANS = 0
#: Speculation gate: speculative mode's virtual completion time may
#: never trail plain OOO by more than 2% on any cell (the ratio is a
#: deterministic virtual-time quantity — no retries, no calibration)
#: and must strictly win on at least one cell of the report, or the
#: mode has regressed into dead weight.
MIN_SPEC_RATIO = 0.98
#: Worker processes for the multiprocess scale cells.
PARALLEL_WORKERS = 4
#: Parallel gate: the multiprocess 100k cell's controller agent-steps/s
#: (critical-path accounting — the merged controller time is the
#: slowest worker's CPU time, i.e. the wall time on dedicated cores)
#: must beat the same run's in-process sharded cell by this factor.
#: With 4 workers over ~400 balanced shards the critical path is ~1/4
#: of the serial walk; 1.5x keeps >2x headroom for skew and merge
#: overhead while still failing any serialization regression. A
#: within-run ratio, so machine-normalized by construction.
MIN_PARALLEL_RATIO = 1.5


def hotpath_trace(scenario, n_agents: int, seed: int = HOTPATH_SEED):
    """The benchmark workload: the scenario's active window at scale.

    Mirrors the §4.3 scaling methodology — independently-seeded map
    segments concatenated side by side — so clustering pressure per
    segment matches the real workload at every agent count.
    """
    scn = get_scenario(scenario)
    start, end = scn.active_window
    day = generate_concatenated_trace(n_agents, end, base_seed=seed,
                                      scenario=scn)
    return day.window(start, end)


def bench_one(scenario: str, n_agents: int,
              policy: str = "metropolis", spec: bool = False) -> dict:
    """Replay one (scenario, scale) cell; returns its report entry.

    ``spec=True`` additionally replays the *same* trace under the
    ``metropolis-spec`` policy and attaches the speculative win/loss
    column: ``spec_speedup`` is the base policy's virtual completion
    time over speculative mode's — a pure virtual-time ratio, so it is
    deterministic and machine-independent — plus the speculation
    ledger counters (``speculations`` / ``misspeculations`` /
    ``squashes`` / ``spec_retires`` / ``spec_rollback_rows``).
    """
    scn = get_scenario(scenario)
    trace = hotpath_trace(scn, n_agents)
    wall0 = time.perf_counter()
    result = run_replay(
        trace, SchedulerConfig(policy=policy, scenario=scn.name))
    wall = time.perf_counter() - wall0
    stats = result.driver_stats
    agent_steps = trace.meta.n_agents * trace.meta.n_steps
    controller = stats.controller_time
    kernel_events = stats.extra.get("kernel_events", 0)
    entry = {
        "scenario": scn.name,
        "n_agents": trace.meta.n_agents,
        "n_steps": trace.meta.n_steps,
        "agent_steps": agent_steps,
        "policy": policy,
        "wall_time_s": wall,
        "controller_time_s": controller,
        "time_clustering_s": stats.time_clustering,
        "time_graph_s": stats.time_graph,
        "time_dispatch_s": stats.time_dispatch,
        "controller_rounds": stats.controller_rounds,
        "clusters_dispatched": stats.clusters_dispatched,
        "mean_cluster_size": stats.mean_cluster_size,
        "kernel_events": kernel_events,
        "kernel_events_per_cluster": kernel_events
        / max(stats.clusters_dispatched, 1),
        "fallback_scans": stats.extra.get("graph_fallback_scans", 0),
        "scanned_slots": stats.extra.get("graph_scanned_slots", 0),
        "scanned_slots_per_scan": stats.extra.get("graph_scanned_slots", 0)
        / max(stats.extra.get("graph_scans", 0), 1),
        "agent_steps_per_sec": agent_steps / controller if controller
        else float("inf"),
        "wall_agent_steps_per_sec": agent_steps / wall if wall
        else float("inf"),
        "completion_time_s": result.completion_time,
    }
    if spec:
        wall1 = time.perf_counter()
        spec_result = run_replay(
            trace, SchedulerConfig(policy="metropolis-spec",
                                   scenario=scn.name))
        extra = spec_result.driver_stats.extra
        entry.update({
            "spec_completion_time_s": spec_result.completion_time,
            "spec_speedup": result.completion_time
            / spec_result.completion_time
            if spec_result.completion_time else float("inf"),
            "spec_wall_time_s": time.perf_counter() - wall1,
            "speculations": extra["speculations"],
            "misspeculations": extra["misspeculations"],
            "squashes": extra["squashes"],
            "spec_retires": extra["spec_retires"],
            "spec_rollback_rows": extra["rollback_rows"],
        })
    return entry


def _peak_rss_mb() -> float:
    """Process high-water RSS in MiB (``ru_maxrss`` is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def bench_scale_one(scenario: str, n_agents: int,
                    n_steps: int = SCALE_STEPS,
                    shards: int | None = None,
                    parallel_workers: int = 0) -> dict:
    """One tiled scale cell with the region-sharded controller.

    With ``parallel_workers >= 2`` the replay routes through the
    multiprocess pool; ``controller_time_s`` is then the merged
    critical-path (slowest-worker CPU) time, so the derived
    ``agent_steps_per_sec`` reflects throughput on dedicated cores
    even when the bench host timeshares one.
    """
    if shards is None:
        shards = max(2, n_agents // SCALE_AGENTS_PER_SHARD)
    scn = get_scenario(scenario)
    trace = generate_scale_trace(n_agents, n_steps=n_steps,
                                 base_seed=HOTPATH_SEED, scenario=scn)
    wall0 = time.perf_counter()
    result = run_replay(
        trace, SchedulerConfig(policy="metropolis", scenario=scn.name,
                               shards=shards,
                               parallel_workers=parallel_workers))
    wall = time.perf_counter() - wall0
    stats = result.driver_stats
    agent_steps = trace.meta.n_agents * trace.meta.n_steps
    controller = stats.controller_time
    return {
        "scenario": scn.name,
        "n_agents": trace.meta.n_agents,
        "n_steps": trace.meta.n_steps,
        "agent_steps": agent_steps,
        "policy": "metropolis",
        "shards": stats.extra.get("shards", 1),
        "parallel_workers": stats.extra.get("parallel_workers", 0),
        "worker_redispatches": stats.extra.get("worker_redispatches", 0),
        "wall_time_s": wall,
        "controller_time_s": controller,
        "clusters_dispatched": stats.clusters_dispatched,
        "fallback_scans": stats.extra.get("graph_fallback_scans", 0),
        "scanned_slots": stats.extra.get("graph_scanned_slots", 0),
        "scanned_slots_per_scan": stats.extra.get("graph_scanned_slots", 0)
        / max(stats.extra.get("graph_scans", 0), 1),
        "peak_rss_mb": _peak_rss_mb(),
        "agent_steps_per_sec": agent_steps / controller if controller
        else float("inf"),
        "wall_agent_steps_per_sec": agent_steps / wall if wall
        else float("inf"),
    }


def run_scale(scenarios: tuple[str, ...] = SCALE_SCENARIOS,
              scale_agents: int = SCALE_AGENTS,
              reference_agents: int = SCALE_REFERENCE_AGENTS,
              n_steps: int = SCALE_STEPS,
              out: Path | str | None = None,
              parallel_workers: int = PARALLEL_WORKERS) -> dict:
    """The scale matrix: reference, serial, and parallel cells.

    Per scenario: a small reference cell, the 100k serial sharded
    cell, and the same 100k workload through the multiprocess pool.
    When ``scale_agents`` exceeds the 100k tier (the 1M nightly), one
    extra ``scale-large`` parallel cell runs at ``scale_agents`` and
    is gated against the 100k parallel cell.

    Each gated cell carries ``scale_ratio`` — its controller
    throughput over its baseline cell — and each parallel cell
    carries ``parallel_ratio`` — parallel over serial ctrl-steps/s on
    the identical workload. Both are within-run ratios, so
    machine-normalized by construction.
    """
    calibration = calibration_score()
    mid_agents = min(scale_agents, SCALE_AGENTS)
    entries = []
    for name in scenarios:
        ref = bench_scale_one(name, reference_agents, n_steps)
        ref["role"] = "reference"
        entries.append(ref)
        big = bench_scale_one(name, mid_agents, n_steps)
        big["role"] = "scale"
        if ref["agent_steps_per_sec"] > 0:
            big["scale_ratio"] = (big["agent_steps_per_sec"]
                                  / ref["agent_steps_per_sec"])
        entries.append(big)
        par = bench_scale_one(name, mid_agents, n_steps,
                              parallel_workers=parallel_workers)
        par["role"] = "scale-parallel"
        if ref["agent_steps_per_sec"] > 0:
            par["scale_ratio"] = (par["agent_steps_per_sec"]
                                  / ref["agent_steps_per_sec"])
        if big["agent_steps_per_sec"] > 0:
            par["parallel_ratio"] = (par["agent_steps_per_sec"]
                                     / big["agent_steps_per_sec"])
        entries.append(par)
        if scale_agents > mid_agents:
            large = bench_scale_one(name, scale_agents, n_steps,
                                    parallel_workers=parallel_workers)
            large["role"] = "scale-large"
            if par["agent_steps_per_sec"] > 0:
                large["scale_ratio"] = (large["agent_steps_per_sec"]
                                        / par["agent_steps_per_sec"])
            entries.append(large)
    report = {
        "benchmark": "hotpath-scale",
        "scenarios": list(scenarios),
        "scale_agents": scale_agents,
        "reference_agents": reference_agents,
        "n_steps": n_steps,
        "agents_per_shard": SCALE_AGENTS_PER_SHARD,
        "parallel_workers": parallel_workers,
        "calibration_ops_per_sec": calibration,
        "entries": entries,
    }
    if out is not None:
        out = Path(out)
        if out.parent != Path(""):
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2) + "\n")
    return report


def check_scale_report(report: dict,
                       min_ratio: float = MIN_SCALE_RATIO,
                       min_throughput: float = SCALE_MIN_THROUGHPUT,
                       min_parallel_ratio: float = MIN_PARALLEL_RATIO
                       ) -> list[str]:
    """CI gate for the scale matrix (empty = pass).

    Every scenario must have its reference, serial-scale, and
    parallel-scale cells (plus the large cell when the report was run
    above the 100k tier); each gated cell must hold ``scale_ratio >=
    min_ratio`` against its baseline and clear the
    calibration-normalized absolute floor; sharding must have engaged
    (a planner fallback at scale means the widened-gutter workload
    broke). Parallel cells must additionally have actually routed
    through the worker pool and beat the serial cell by
    ``min_parallel_ratio`` on ctrl-steps/s.
    """
    failures = []
    cal = report.get("calibration_ops_per_sec") or 0.0
    floor = min_throughput * min(1.0, cal / SCALE_NOMINAL_CALIBRATION) \
        if cal else min_throughput
    required = ["reference", "scale", "scale-parallel"]
    if report.get("scale_agents", SCALE_AGENTS) > SCALE_AGENTS:
        required.append("scale-large")
    roles = {(e["scenario"], e.get("role")) for e in report["entries"]}
    for scenario in report.get("scenarios", []):
        for role in required:
            if (scenario, role) not in roles:
                failures.append(
                    f"{scenario}: {role} cell missing from the report")
    for entry in report["entries"]:
        role = entry.get("role")
        if role not in ("scale", "scale-parallel", "scale-large"):
            continue
        label = f"{entry['scenario']}@{entry['n_agents']}[{role}]"
        baseline = ("the 100k parallel cell" if role == "scale-large"
                    else "the reference cell")
        ratio = entry.get("scale_ratio")
        if ratio is None:
            failures.append(f"{label}: scale_ratio missing")
        elif ratio < min_ratio:
            failures.append(
                f"{label}: {ratio:.2f}x of {baseline}'s "
                f"throughput, below the {min_ratio:.2f}x scale gate")
        if entry["agent_steps_per_sec"] < floor:
            failures.append(
                f"{label}: {entry['agent_steps_per_sec']:.0f} "
                f"agent-steps/s below the calibration-normalized "
                f"{floor:.0f} floor")
        if entry.get("shards", 1) < 2:
            failures.append(
                f"{label}: region sharding did not engage "
                f"(shards={entry.get('shards')})")
        if entry.get("fallback_scans", 0) > 0:
            failures.append(
                f"{label}: {entry['fallback_scans']} linear fallback "
                f"scans at scale")
        if role in ("scale-parallel", "scale-large"):
            if entry.get("parallel_workers", 0) < 2:
                failures.append(
                    f"{label}: multiprocess path did not engage "
                    f"(parallel_workers="
                    f"{entry.get('parallel_workers', 0)})")
        if role == "scale-parallel":
            pratio = entry.get("parallel_ratio")
            if pratio is None:
                failures.append(f"{label}: parallel_ratio missing")
            elif pratio < min_parallel_ratio:
                failures.append(
                    f"{label}: parallel/serial ctrl-steps/s ratio "
                    f"{pratio:.2f}x below the "
                    f"{min_parallel_ratio:.2f}x gate")
    return failures


def scale_ratio_lines(report: dict) -> list[str]:
    """Human-readable parallel/serial ctrl-steps/s lines, one per
    parallel cell — printed by the CLI under ``--scale --check``."""
    serial = {(e["scenario"], e["n_agents"]): e["agent_steps_per_sec"]
              for e in report["entries"] if e.get("role") == "scale"}
    lines = []
    for e in report["entries"]:
        if "parallel_ratio" not in e:
            continue
        base = serial.get((e["scenario"], e["n_agents"]), 0.0)
        lines.append(
            f"{e['scenario']}@{e['n_agents']}: parallel "
            f"{e['agent_steps_per_sec']:.0f} ctrl-steps/s "
            f"({e['parallel_workers']} workers) vs serial {base:.0f} "
            f"-> {e['parallel_ratio']:.2f}x")
    return lines


def format_scale_report(report: dict) -> str:
    """Fixed-width table for the scale matrix."""
    header = (f"{'scenario':<14}{'agents':>9}{'steps':>7}{'shards':>7}"
              f"{'workers':>8}{'ctrl-steps/s':>14}{'wall-steps/s':>14}"
              f"{'slots/scan':>11}{'rss-mb':>9}{'ratio':>8}"
              f"{'par-ratio':>10}")
    lines = [header, "-" * len(header)]
    for e in report["entries"]:
        ratio = e.get("scale_ratio")
        pratio = e.get("parallel_ratio")
        lines.append(
            f"{e['scenario']:<14}{e['n_agents']:>9}{e['n_steps']:>7}"
            f"{e['shards']:>7}"
            f"{e.get('parallel_workers', 0):>8}"
            f"{e['agent_steps_per_sec']:>14.0f}"
            f"{e['wall_agent_steps_per_sec']:>14.0f}"
            f"{e['scanned_slots_per_scan']:>11.1f}"
            f"{e['peak_rss_mb']:>9.0f}"
            + (f"{ratio:>7.2f}x" if ratio is not None else f"{'-':>8}")
            + (f"{pratio:>9.2f}x" if pratio is not None
               else f"{'-':>10}"))
    return "\n".join(lines)


def _entry_key(entry: dict) -> tuple:
    return (entry["scenario"], entry["n_agents"], entry["policy"])


def calibration_score(rounds: int = 5, iters: int = 100_000) -> float:
    """Machine-speed proxy (ops/sec, higher = faster hardware).

    A fixed, deterministic workload with the controller's op mix —
    dict/set churn plus small numpy reductions — timed best-of-N so a
    baseline recorded on one machine can be compared on another.
    """
    best = 0.0
    arr = np.arange(256, dtype=np.int64)
    for _ in range(rounds):
        t0 = time.perf_counter()
        acc = 0
        d: dict[int, int] = {}
        s: set[int] = set()
        for i in range(iters):
            k = (i * 2654435761) & 1023
            d[k] = i
            s.add(k & 255)
            acc += d.get((k * 7) & 1023, 0)
            if not i & 1023:
                acc += int((np.abs(arr - (k & 255)) <= 16).sum())
        elapsed = time.perf_counter() - t0
        if elapsed > 0:
            best = max(best, iters / elapsed)
    return best


def _annotate_speedups(entries: list[dict], cal: float,
                       reference: dict, suffix: str) -> None:
    """Attach ``speedup_vs_<suffix>`` columns against ``reference``.

    Normalized for hardware speed: the reference throughput is scaled
    by (this machine's calibration / the reference machine's).
    """
    ref_cal = reference.get("calibration_ops_per_sec")
    scale = (ref_cal / cal) if (ref_cal and cal) else 1.0
    by_key = {_entry_key(e): e for e in reference["entries"]}
    for entry in entries:
        ref = by_key.get(_entry_key(entry))
        if ref and ref["agent_steps_per_sec"] > 0:
            entry[f"{suffix}_agent_steps_per_sec"] = \
                ref["agent_steps_per_sec"]
            raw = entry["agent_steps_per_sec"] / ref["agent_steps_per_sec"]
            entry[f"raw_speedup_vs_{suffix}"] = raw
            entry[f"speedup_vs_{suffix}"] = raw * scale


def run_hotpath(scenarios: list[str] | None = None,
                agent_counts: tuple[int, ...] = AGENT_COUNTS,
                policy: str = "metropolis",
                baseline: Path | str | None = None,
                history: Path | str | None = None,
                trajectory: tuple[tuple[str, Path], ...] = (),
                out: Path | str | None = None,
                spec: bool = False) -> dict:
    """Benchmark every (scenario, scale) cell; write/return the report.

    ``baseline`` is the committed regression reference (the PR 4
    scheduler); ``history`` optionally adds ``speedup_vs_preoverhaul``
    against the pre-overhaul record, and ``trajectory`` attaches any
    further ``(suffix, path)`` history columns (missing files are
    skipped) — the CLI passes :data:`TRAJECTORY` so the vs-PR2 and
    vs-preoverhaul columns persist across baselines. ``spec`` attaches
    the speculative-mode win/loss column to every cell (see
    :func:`bench_one`).
    """
    names = scenarios or scenario_names()
    # Calibrate before the bench loop heats the machine up; best-of-N
    # approximates the unthrottled speed either way.
    calibration = calibration_score()
    entries = [bench_one(name, n, policy=policy, spec=spec)
               for name in names for n in sorted(agent_counts)]
    report = {
        "benchmark": "hotpath",
        "policy": policy,
        "agent_counts": sorted(agent_counts),
        "scenarios": list(names),
        "calibration_ops_per_sec": calibration,
        "spec": spec,
        "entries": entries,
    }
    baseline_report = load_baseline(baseline)
    if baseline_report is not None:
        _annotate_speedups(entries, calibration, baseline_report,
                           "baseline")
    # A caller-supplied history overrides the committed preoverhaul
    # record outright — one suffix must never mix two references.
    histories = dict(trajectory)
    if history is not None:
        histories["preoverhaul"] = Path(history)
    for suffix, path in histories.items():
        history_report = load_baseline(path)
        if history_report is not None:
            _annotate_speedups(entries, calibration, history_report,
                               suffix)
    if out is not None:
        out = Path(out)
        if out.parent != Path(""):
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2) + "\n")
    return report


def load_baseline(path: Path | str | None) -> dict | None:
    """Load a committed baseline report; None if absent/not given."""
    if path is None:
        return None
    path = Path(path)
    if not path.exists():
        return None
    return json.loads(path.read_text())


#: How many times ``--check`` re-measures a cell that failed a perf bar
#: before believing the regression. A 30-cell matrix at a 0.9x bar
#: flakes when single short cells can swing 20% on a noisy runner; a
#: genuine regression fails every attempt, noise does not.
PERF_RETRIES = 2


def _perf_failing(report: dict, min_throughput: float,
                  min_speedup: float) -> list[dict]:
    """Entries failing the throughput floor or the baseline ratio."""
    bad = []
    for entry in report["entries"]:
        speedup = entry.get("speedup_vs_baseline")
        if (entry["agent_steps_per_sec"] < min_throughput
                or (speedup is not None and speedup < min_speedup)):
            bad.append(entry)
    return bad


def retry_perf_cells(report: dict,
                     baseline: Path | str | None = None,
                     history: Path | str | None = None,
                     trajectory: tuple[tuple[str, Path], ...] = (),
                     min_throughput: float = MIN_THROUGHPUT,
                     min_speedup: float = MIN_SPEEDUP,
                     retries: int = PERF_RETRIES,
                     out: Path | str | None = None) -> list[str]:
    """Re-measure entries failing the perf bars; the best run stands.

    Only the *timing* bars are retryable — fallback scans, event churn,
    and matrix-cell presence are deterministic, so re-running them
    would only mask a real break. Mutates ``report`` in place (keeping
    the original measurement when the re-run is slower), re-annotates
    the touched entries against the same references ``run_hotpath``
    used, rewrites ``out`` when given so the artifact matches the gate
    decision, and returns the labels of the cells it re-measured.
    """
    references = []
    baseline_report = load_baseline(baseline)
    if baseline_report is not None:
        references.append(("baseline", baseline_report))
    histories = dict(trajectory)
    if history is not None:
        histories["preoverhaul"] = Path(history)
    for suffix, path in histories.items():
        history_report = load_baseline(path)
        if history_report is not None:
            references.append((suffix, history_report))
    calibration = report.get("calibration_ops_per_sec") or 0.0
    retried: list[str] = []
    for attempt in range(retries):
        failing = _perf_failing(report, min_throughput, min_speedup)
        if not failing:
            break
        for entry in failing:
            label = f"{entry['scenario']}@{entry['n_agents']}"
            print(f"[retry {attempt + 1}/{retries}] {label}: "
                  f"re-measuring (was "
                  f"{entry['agent_steps_per_sec']:.0f} agent-steps/s)")
            if label not in retried:
                retried.append(label)
            fresh = bench_one(entry["scenario"], entry["n_agents"],
                              policy=entry["policy"],
                              spec="spec_speedup" in entry)
            if fresh["agent_steps_per_sec"] > entry["agent_steps_per_sec"]:
                entry.clear()
                entry.update(fresh)
        for suffix, reference in references:
            _annotate_speedups(failing, calibration, reference, suffix)
    if retried and out is not None:
        Path(out).write_text(json.dumps(report, indent=2) + "\n")
    return retried


def check_report(report: dict,
                 min_throughput: float = MIN_THROUGHPUT,
                 min_speedup: float = MIN_SPEEDUP,
                 required_counts: tuple[int, ...] = (),
                 max_kernel_events_per_cluster: float | None = None,
                 max_fallback_scans: int | None = None,
                 min_spec_ratio: float | None = None) -> list[str]:
    """The CI gate: returns human-readable failures (empty = pass).

    ``required_counts`` additionally demands a report entry per
    (scenario, count) — the 2000-agent scaling cell cannot silently
    drop out of the matrix. ``max_kernel_events_per_cluster`` and
    ``max_fallback_scans`` (both optional) pin the controller's event
    churn and the bucketed fast path: entries missing the counters fail
    loudly rather than passing silently. ``min_spec_ratio`` gates the
    speculative-mode column: every cell's ``spec_speedup`` must clear
    the ratio (no cell may regress past it) and at least one cell must
    strictly beat 1.0 — speculation has to win somewhere or it is dead
    weight. Both spec checks are pure virtual-time comparisons, so
    they are exempt from perf retries.
    """
    failures = []
    spec_wins = 0
    present = {(e["scenario"], e["n_agents"]) for e in report["entries"]}
    for scenario in report.get("scenarios", []):
        for count in required_counts:
            if (scenario, count) not in present:
                failures.append(
                    f"{scenario}@{count}: required matrix cell missing "
                    f"from the report")
    for entry in report["entries"]:
        label = (f"{entry['scenario']}@{entry['n_agents']} "
                 f"({entry['policy']})")
        tput = entry["agent_steps_per_sec"]
        if tput < min_throughput:
            failures.append(
                f"{label}: {tput:.0f} agent-steps/s below the "
                f"{min_throughput:.0f} floor")
        speedup = entry.get("speedup_vs_baseline")
        if speedup is None:
            # A cell with no baseline counterpart must not silently
            # degrade to floor-only (e.g. a new scenario or agent count
            # added without regenerating the committed baseline).
            failures.append(
                f"{label}: no baseline entry — regenerate the report "
                f"passed via --baseline (default {BASELINE_PATH})")
        elif speedup < min_speedup:
            failures.append(
                f"{label}: {speedup:.2f}x vs baseline, below the "
                f"required {min_speedup:.2f}x")
        if max_kernel_events_per_cluster is not None:
            kepc = entry.get("kernel_events_per_cluster")
            if kepc is None:
                failures.append(
                    f"{label}: kernel_events_per_cluster missing from "
                    f"the report entry")
            elif kepc > max_kernel_events_per_cluster:
                failures.append(
                    f"{label}: {kepc:.2f} kernel events per cluster, "
                    f"above the {max_kernel_events_per_cluster:.2f} cap")
        if max_fallback_scans is not None:
            fb = entry.get("fallback_scans")
            if fb is None:
                failures.append(
                    f"{label}: fallback_scans missing from the report "
                    f"entry")
            elif fb > max_fallback_scans:
                failures.append(
                    f"{label}: {fb} linear fallback scans (cap "
                    f"{max_fallback_scans}) — the bucketed fast path "
                    f"gate broke")
        if min_spec_ratio is not None:
            ratio = entry.get("spec_speedup")
            if ratio is None:
                failures.append(
                    f"{label}: spec_speedup missing from the report "
                    f"entry — run the bench with speculation cells "
                    f"enabled (--spec)")
            elif ratio < min_spec_ratio:
                failures.append(
                    f"{label}: speculative mode at {ratio:.4f}x of "
                    f"plain OOO, below the {min_spec_ratio:.2f}x "
                    f"no-regression bar")
            elif ratio > 1.0:
                spec_wins += 1
    if min_spec_ratio is not None and report["entries"] and not spec_wins:
        failures.append(
            "speculative mode wins on no cell of the report "
            "(spec_speedup <= 1.0 everywhere) — the mode regressed "
            "into dead weight")
    return failures


def gate_hotpath(report: dict,
                 min_throughput: float = MIN_THROUGHPUT,
                 min_speedup: float = MIN_SPEEDUP) -> None:
    """Raise :class:`ScenarioError` when the gate fails."""
    failures = check_report(report, min_throughput, min_speedup)
    if failures:
        raise ScenarioError(
            "hotpath gate failed:\n  " + "\n  ".join(failures))


def format_report(report: dict) -> str:
    """Fixed-width table for terminal output.

    The ``spec`` column is speculative mode's virtual-time win ratio
    over plain OOO for the cell (>1 = speculation wins), shown when
    the report carries speculation cells.
    """
    with_spec = any("spec_speedup" in e for e in report["entries"])
    header = (f"{'scenario':<14}{'agents':>7}{'steps':>7}"
              f"{'ctrl-steps/s':>14}{'wall-steps/s':>14}"
              f"{'clustering':>11}{'graph':>9}{'dispatch':>9}"
              f"{'rounds':>8}{'ev/cl':>7}"
              + (f"{'spec':>9}" if with_spec else "")
              + f"{'vs-base':>9}{'vs-pr2':>8}{'vs-pre':>8}")
    lines = [header, "-" * len(header)]
    for e in report["entries"]:
        speedup = e.get("speedup_vs_baseline")
        pr2 = e.get("speedup_vs_pr2")
        pre = e.get("speedup_vs_preoverhaul")
        spec = e.get("spec_speedup")
        lines.append(
            f"{e['scenario']:<14}{e['n_agents']:>7}{e['n_steps']:>7}"
            f"{e['agent_steps_per_sec']:>14.0f}"
            f"{e['wall_agent_steps_per_sec']:>14.0f}"
            f"{e['time_clustering_s']:>10.3f}s"
            f"{e['time_graph_s']:>8.3f}s"
            f"{e['time_dispatch_s']:>8.3f}s"
            f"{e['controller_rounds']:>8}"
            f"{e.get('kernel_events_per_cluster', 0.0):>7.2f}"
            + ("" if not with_spec else
               f"{spec:>8.4f}x" if spec is not None else f"{'-':>9}")
            + (f"{speedup:>8.2f}x" if speedup is not None else
               f"{'-':>9}")
            + (f"{pr2:>7.2f}x" if pr2 is not None else f"{'-':>8}")
            + (f"{pre:>7.2f}x" if pre is not None else f"{'-':>8}"))
    return "\n".join(lines)
