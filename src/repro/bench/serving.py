"""End-to-end serving benchmark: tokens/s + KV counters per scenario.

Where ``repro-bench hotpath`` measures the controller alone, this matrix
measures what the paper actually reports (Fig. 4-7): end-to-end
throughput of the whole stack — OOO scheduler, cluster-granular fluid
executor, and the simulated serving engine — on each registered world's
declared deployment (its :class:`~repro.serving.ServingProfile`). Three
cells per scenario:

* ``fluid`` — the headline run: fluid replicas at the profile's full KV
  budget, invocation-distance retention on.
* ``kv-distance`` — the profile's ``kv_pressure_fraction`` shrinks the
  KV cache until retained segments compete for space; eviction keyed on
  the scheduler's invocation-distance prediction.
* ``kv-lru`` — the same starved cache with LRU eviction (what a
  scheduler-oblivious serving stack would do). The acceptance criterion
  is that ``kv-distance`` beats this cell somewhere: round-robin agent
  stepping is LRU's cyclic worst case (it evicts exactly the
  next-needed agent), while the wake-step signal protects near-wake
  agents.

The headline metric, **end-to-end tokens per virtual second**
(`tokens_per_s`), is deterministic — virtual completion times do not
depend on the machine — so the CI gate compares it tightly against the
committed ``benchmarks/baselines/serving_pr6.json``. Wall-clock replay
throughput rides along calibration-normalized (same scheme as the
hotpath gate) with a deliberately loose floor: it only catches
order-of-magnitude regressions in the executor's real cost.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from ..config import SchedulerConfig, ServingConfig
from ..core import run_replay
from ..errors import ScenarioError
from ..scenarios import get_scenario, scenario_names
from .hotpath import calibration_score, load_baseline
from .runner import PLATFORMS, serving_for
from .smoke import scenario_window_trace

SERVING_SEED = 0
BASELINE_PATH = Path("benchmarks/baselines/serving_pr6.json")
#: The per-scenario matrix cells (see module docstring).
CELLS = ("fluid", "kv-distance", "kv-lru")
#: Virtual tokens/s is deterministic; the ratio bar only absorbs float
#: noise across numpy/python versions, not machine speed.
MIN_TOKENS_RATIO = 0.95
#: Wall-clock floor vs. baseline (calibration-normalized): generous —
#: catches the executor falling off a cliff, not runner jitter.
MIN_WALL_RATIO = 0.25


def _cell_config(profile, cell: str) -> ServingConfig:
    """The deployment for one matrix cell of a scenario's profile."""
    base = serving_for(profile.platform, profile.gpus, profile.fidelity)
    if cell == "fluid":
        return ServingConfig(**{**base.__dict__, "kv_policy": "distance"})
    if cell == "kv-distance":
        return ServingConfig(**{**base.__dict__, "kv_policy": "distance",
                                "kv_memory_fraction":
                                profile.kv_pressure_fraction})
    if cell == "kv-lru":
        return ServingConfig(**{**base.__dict__, "kv_policy": "lru",
                                "kv_memory_fraction":
                                profile.kv_pressure_fraction})
    raise ScenarioError(f"unknown serving bench cell {cell!r}")


def bench_cell(scenario: str, cell: str,
               policy: str = "metropolis") -> dict:
    """Replay one (scenario, cell); returns its report entry."""
    scn = get_scenario(scenario)
    profile = scn.serving_profile
    if profile.platform not in PLATFORMS:
        raise ScenarioError(
            f"{scn.name}: serving profile names unknown platform "
            f"{profile.platform!r}")
    # Full segment population: distance spread across a whole segment is
    # what differentiates the eviction policies.
    trace = scenario_window_trace(scn, n_agents=scn.agents_per_segment,
                                  seed=SERVING_SEED)
    serving = _cell_config(profile, cell)
    wall0 = time.perf_counter()
    result = run_replay(
        trace, SchedulerConfig(policy=policy, scenario=scn.name), serving)
    wall = time.perf_counter() - wall0
    metrics = result.engine_metrics
    total_tokens = (metrics.total_prompt_tokens
                    + metrics.total_output_tokens)
    return {
        "scenario": scn.name,
        "cell": cell,
        "policy": policy,
        "platform": profile.platform,
        "gpus": profile.gpus,
        "kv_policy": serving.kv_policy,
        "kv_memory_fraction": serving.kv_memory_fraction,
        "n_agents": trace.meta.n_agents,
        "n_calls": trace.n_calls,
        "total_tokens": total_tokens,
        "completion_time_s": result.completion_time,
        #: The headline, deterministic end-to-end number.
        "tokens_per_s": metrics.throughput_tokens_per_s(),
        "achieved_parallelism": result.achieved_parallelism,
        "gpu_busy_fraction": result.gpu_busy_fraction,
        "wall_time_s": wall,
        "wall_tokens_per_s": total_tokens / wall if wall else float("inf"),
        "kv": result.kv_stats,
    }


def _entry_key(entry: dict) -> tuple:
    return (entry["scenario"], entry["cell"], entry["policy"])


def _annotate_vs_baseline(entries: list[dict], cal: float,
                          reference: dict) -> None:
    """Attach per-entry ratios against the committed baseline report."""
    ref_cal = reference.get("calibration_ops_per_sec")
    scale = (ref_cal / cal) if (ref_cal and cal) else 1.0
    by_key = {_entry_key(e): e for e in reference["entries"]}
    for entry in entries:
        ref = by_key.get(_entry_key(entry))
        if ref is None:
            continue
        if ref["tokens_per_s"] > 0:
            entry["baseline_tokens_per_s"] = ref["tokens_per_s"]
            entry["tokens_ratio_vs_baseline"] = (
                entry["tokens_per_s"] / ref["tokens_per_s"])
        if ref.get("wall_tokens_per_s", 0) > 0:
            raw = entry["wall_tokens_per_s"] / ref["wall_tokens_per_s"]
            entry["raw_wall_ratio_vs_baseline"] = raw
            entry["wall_ratio_vs_baseline"] = raw * scale


def run_serving(scenarios: list[str] | None = None,
                cells: tuple[str, ...] = CELLS,
                policy: str = "metropolis",
                baseline: Path | str | None = None,
                out: Path | str | None = None) -> dict:
    """Benchmark every (scenario, cell); write/return the report."""
    names = scenarios or scenario_names()
    calibration = calibration_score()
    entries = [bench_cell(name, cell, policy=policy)
               for name in names for cell in cells]
    report = {
        "benchmark": "serving",
        "policy": policy,
        "cells": list(cells),
        "scenarios": list(names),
        "calibration_ops_per_sec": calibration,
        "entries": entries,
    }
    baseline_report = load_baseline(baseline)
    if baseline_report is not None:
        _annotate_vs_baseline(entries, calibration, baseline_report)
    if out is not None:
        out = Path(out)
        if out.parent != Path(""):
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2) + "\n")
    return report


def check_serving_report(report: dict,
                         min_tokens_ratio: float = MIN_TOKENS_RATIO,
                         min_wall_ratio: float = MIN_WALL_RATIO,
                         required_cells: tuple[str, ...] = CELLS
                         ) -> list[str]:
    """The CI gate: returns human-readable failures (empty = pass).

    Checks, per scenario: every matrix cell present; every entry has a
    baseline counterpart (a baseline missing a cell fails loudly, so
    new scenarios force a baseline regeneration); end-to-end tokens/s
    within ``min_tokens_ratio`` of baseline; wall-clock throughput
    above the loose normalized floor; KV-constrained distance cells
    actually hit their retained segments; and invocation-distance
    eviction beats LRU on at least one KV-constrained cell overall.
    """
    failures = []
    entries = report["entries"]
    present = {(e["scenario"], e["cell"]) for e in entries}
    for scenario in report.get("scenarios", []):
        for cell in required_cells:
            if (scenario, cell) not in present:
                failures.append(
                    f"{scenario}/{cell}: required matrix cell missing "
                    f"from the report")
    for entry in entries:
        label = f"{entry['scenario']}/{entry['cell']}"
        ratio = entry.get("tokens_ratio_vs_baseline")
        if ratio is None:
            failures.append(
                f"{label}: no baseline entry — regenerate the report "
                f"passed via --baseline (default {BASELINE_PATH})")
        elif ratio < min_tokens_ratio:
            failures.append(
                f"{label}: {entry['tokens_per_s']:.0f} tokens/s is "
                f"{ratio:.3f}x baseline, below the required "
                f"{min_tokens_ratio:.2f}x")
        wall = entry.get("wall_ratio_vs_baseline")
        if wall is not None and wall < min_wall_ratio:
            failures.append(
                f"{label}: wall-clock replay at {wall:.2f}x baseline "
                f"(normalized), below the {min_wall_ratio:.2f}x floor")
        if entry["cell"] == "kv-distance" and \
                entry.get("kv", {}).get("hits", 0) <= 0:
            failures.append(
                f"{label}: zero KV retention hits — the "
                f"invocation-distance policy is not engaging")
    # The headline claim: distance-aware eviction must beat LRU on at
    # least one KV-constrained cell.
    by_cell = {(e["scenario"], e["cell"]): e for e in entries}
    wins = []
    for scenario in report.get("scenarios", []):
        dist = by_cell.get((scenario, "kv-distance"))
        lru = by_cell.get((scenario, "kv-lru"))
        if dist and lru and dist["tokens_per_s"] > lru["tokens_per_s"]:
            wins.append(scenario)
    if not wins and any(e["cell"] == "kv-distance" for e in entries):
        failures.append(
            "invocation-distance eviction beat LRU on no KV-constrained "
            "cell — the scheduler-aware policy lost its edge")
    return failures


def gate_serving(report: dict,
                 min_tokens_ratio: float = MIN_TOKENS_RATIO) -> None:
    """Raise :class:`ScenarioError` when the gate fails."""
    failures = check_serving_report(report, min_tokens_ratio)
    if failures:
        raise ScenarioError(
            "serving gate failed:\n  " + "\n  ".join(failures))


def format_serving_report(report: dict) -> str:
    """Fixed-width table for terminal output."""
    header = (f"{'scenario':<14}{'cell':<13}{'tokens/s':>10}"
              f"{'virt-time':>11}{'par':>6}{'busy':>6}"
              f"{'hits':>7}{'evict':>7}{'pins':>6}{'vs-base':>9}")
    lines = [header, "-" * len(header)]
    for e in report["entries"]:
        kv = e.get("kv", {})
        ratio = e.get("tokens_ratio_vs_baseline")
        lines.append(
            f"{e['scenario']:<14}{e['cell']:<13}"
            f"{e['tokens_per_s']:>10.0f}"
            f"{e['completion_time_s']:>10.0f}s"
            f"{e['achieved_parallelism']:>6.1f}"
            f"{e['gpu_busy_fraction']:>6.2f}"
            f"{kv.get('hits', 0):>7}{kv.get('evictions', 0):>7}"
            f"{kv.get('prefetch_pins', 0):>6}"
            + (f"{ratio:>8.2f}x" if ratio is not None else f"{'-':>9}"))
    return "\n".join(lines)


def format_profiles() -> str:
    """``repro-bench serving --list-profiles`` output."""
    header = (f"{'scenario':<14}{'platform':<13}{'gpus':>5}"
              f"{'fidelity':>10}{'prompt':>8}{'output':>8}"
              f"{'kv-press':>9}  description")
    lines = [header, "-" * len(header)]
    for name in scenario_names():
        p = get_scenario(name).serving_profile
        lines.append(
            f"{name:<14}{p.platform:<13}{p.gpus:>5}{p.fidelity:>10}"
            f"{p.mean_prompt_tokens:>8.0f}{p.mean_output_tokens:>8.0f}"
            f"{p.kv_pressure_fraction:>9.2f}  {p.description}")
    return "\n".join(lines)
