"""Chaos gate: fault-injected runs must end in the clean-run state.

The fault-tolerance claim behind ``repro.faults`` is *exactly-once
application under at-least-once execution*: whatever the chaos layer
injects — transient LLM errors, stragglers, hard call failures, forced
transaction conflicts, replica blackouts — the OOO engine must end in
the world state bit-identical to a clean lock-step run, because every
failed cluster is rolled back before any of its writes land and every
re-delivery is deduplicated by the program's per-``(step, agent)`` memo.

``repro-bench chaos --check`` proves it per registered scenario under
three seeded fault schedules (and checks each schedule actually
*exercised* its target recovery path, so a silently-disabled injector
cannot pass the gate):

* ``transient`` — retryable LLM errors + stragglers + a forced
  KV-transaction conflict storm: the seeded-backoff retry loops must
  absorb everything (``llm_retries``, ``tx_retries`` > 0);
* ``crash``     — hard LLM failures: clusters must be aborted
  (``abort_running``) and redispatched to success;
* ``breaker``   — a hard-failure burst: the circuit breaker must open
  and the run must complete on degraded fallback completions.

Two engine-level cells ride along: a replay-mode **replica blackout**
(retained KV lost, in-flight requests rerouted and re-prefilled, run
still completes with every call served) and a **watchdog** cell (a
synthetic lost-ack hang must surface as a diagnostic
:class:`SchedulingError` within the deadline, with no leaked worker
threads).
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

from ..config import FaultPolicy, SchedulerConfig
from ..core import run_replay
from ..errors import SchedulingError
from ..faults import ChaosClient, FaultSchedule
from ..scenarios import get_scenario, scenario_names
from .runner import serving_for
from .smoke import SMOKE_SEED, scenario_window_trace

#: The three per-scenario fault schedules the gate runs. Rates are per
#: LLM call; the smoke window issues hundreds, so every injector fires
#: many times under any seed.
SCHEDULES: tuple[str, ...] = ("transient", "crash", "breaker")

#: Forced KV-transaction conflicts injected per transient cell.
TX_STORM = 6

#: Virtual-time fraction of the clean run at which the blackout fires.
BLACKOUT_AT = 0.25

#: Watchdog deadline used by the synthetic-hang cell (seconds).
WATCHDOG_TIMEOUT = 0.4


def _policy(seed: int, **overrides) -> FaultPolicy:
    """Chaos-run fault policy: fast backoff so the gate stays quick."""
    defaults = dict(backoff_base=0.0005, backoff_max=0.008,
                    watchdog_timeout=30.0, worker_join_grace=2.0,
                    seed=seed)
    defaults.update(overrides)
    return FaultPolicy(**defaults)


def _schedule(kind: str, seed: int) -> FaultSchedule:
    if kind == "transient":
        return FaultSchedule(seed=seed, transient_rate=0.12,
                             straggler_rate=0.05, straggler_delay=0.001)
    if kind == "crash":
        return FaultSchedule(seed=seed, hard_rate=0.05,
                             straggler_rate=0.03, straggler_delay=0.001)
    if kind == "breaker":
        # A burst of consecutive hard failures trips the (lowered)
        # breaker threshold; the long cooldown keeps it open so the
        # rest of the run exercises the degraded-fallback path.
        return FaultSchedule(seed=seed, burst=6)
    raise ValueError(f"unknown chaos schedule {kind!r}")


#: Fault counters each schedule must have exercised (else the gate
#: fails even with identical state: the injector or the recovery path
#: silently did nothing).
REQUIRED_PATHS: dict[str, tuple[str, ...]] = {
    "transient": ("llm_retries", "tx_retries"),
    "crash": ("aborted_clusters", "redispatches"),
    "breaker": ("breaker_opens", "degraded_completions"),
}


def chaos_cell(scn, kind: str, seed: int) -> dict:
    """One (scenario, schedule) live run vs. the clean lock-step state."""
    from ..live import EchoLLMClient, LiveSimulation
    from ..live.environment import BehaviorProgram

    start, end = scn.active_window
    n_agents = min(10, scn.agents_per_segment)

    ref = scn.model(n_agents, SMOKE_SEED)
    for step in range(end):
        ref.step_all(step)
    ref_state = [(a.pos, a.awake, a.activity, len(a.memory))
                 for a in ref.agents]

    ooo = scn.model(n_agents, SMOKE_SEED)
    for step in range(start):
        ooo.step_all(step)
    overrides = {}
    if kind == "breaker":
        overrides = dict(breaker_threshold=3, breaker_cooldown=60.0)
    sim = LiveSimulation(
        BehaviorProgram(ooo),
        ChaosClient(EchoLLMClient(), _schedule(kind, seed)),
        scheduler=SchedulerConfig(scenario=scn.name,
                                  faults=_policy(seed, **overrides)),
        num_workers=4)
    if kind == "transient":
        # A forced WatchError burst: the next TX_STORM state commits
        # conflict and must be absorbed by the optimistic-retry loop.
        sim.store.force_conflicts(TX_STORM)
    result = sim.run(target_step=end, start_step=start)
    ooo_state = [(a.pos, a.awake, a.activity, len(a.memory))
                 for a in ooo.agents]

    faults = result.faults.as_dict()
    missing = [key for key in REQUIRED_PATHS[kind] if not faults.get(key)]
    identical = ooo_state == ref_state
    return {
        "scenario": scn.name,
        "schedule": kind,
        "seed": seed,
        "state_identical": identical,
        "required_paths": list(REQUIRED_PATHS[kind]),
        "unexercised_paths": missing,
        "faults": faults,
        "ok": identical and not missing and not faults.get("leaked_workers"),
    }


def blackout_cell(scn) -> dict:
    """Replay with a mid-run replica blackout on a DP-2 deployment."""
    trace = scenario_window_trace(scn)
    serving = serving_for("l4-8b", 2)
    scheduler = SchedulerConfig(policy="metropolis", scenario=scn.name)
    clean = run_replay(trace, scheduler, serving)

    blackout_time = clean.completion_time * BLACKOUT_AT

    def hook(kernel, engine) -> None:
        # The workload is bursty (calls cluster at dispatch instants),
        # so a blackout at a fixed virtual time can hit an idle
        # replica. Re-arm until the victim has in-flight work — that is
        # the case the gate must prove — with a bounded fuse so a
        # never-busy replica cannot keep the kernel alive forever.
        state = {"fuse": 2000}

        def fire() -> None:
            state["fuse"] -= 1
            if engine.replicas[1].outstanding == 0 and state["fuse"] > 0:
                kernel.call_in(clean.completion_time / 1000.0, fire)
                return
            engine.blackout_replica(1)

        kernel.call_at(blackout_time, fire)

    faulted = run_replay(trace, scheduler, serving, fault_hook=hook)
    extra = faulted.driver_stats.extra
    all_served = faulted.n_calls_completed == clean.n_calls_completed
    blackouts = int(extra.get("replica_blackouts", 0))
    rerouted = int(extra.get("rerouted_requests", 0))
    return {
        "scenario": scn.name,
        "schedule": "blackout",
        "blackout_time": blackout_time,
        "n_calls_clean": clean.n_calls_completed,
        "n_calls_faulted": faulted.n_calls_completed,
        "replica_blackouts": blackouts,
        "rerouted_requests": rerouted,
        "lost_retained_tokens": int(extra.get("lost_retained_tokens", 0)),
        "completion_time_clean": clean.completion_time,
        "completion_time_faulted": faulted.completion_time,
        "ok": all_served and blackouts >= 1 and rerouted >= 1,
    }


class _HangingClient:
    """First call blocks until released: a synthetic lost-ack hang."""

    def __init__(self) -> None:
        self.release = threading.Event()
        self._first = True
        self._lock = threading.Lock()

    def complete(self, prompt: str, max_tokens: int,
                 priority: float = 0.0) -> str:
        with self._lock:
            hang, self._first = self._first, False
        if hang:
            self.release.wait()
        return "ok"


class _TwoAgentProgram:
    """Two far-apart agents, one LLM call per step each."""

    n_agents = 2

    def position(self, aid: int):
        return (0.0, float(aid) * 1000.0)

    def execute(self, step: int, agent_ids, client) -> None:
        for aid in agent_ids:
            client.complete(f"agent {aid} step {step}", 8,
                            priority=float(step))


def watchdog_cell() -> dict:
    """A hung LLM call must become a diagnostic error, not a deadlock."""
    from ..live import LiveSimulation

    baseline_threads = threading.active_count()
    client = _HangingClient()
    policy = FaultPolicy(watchdog_timeout=WATCHDOG_TIMEOUT,
                         worker_join_grace=0.1,
                         call_timeout=3600.0)  # the watchdog must fire, not
    #                                            the per-call retry timeout
    sim = LiveSimulation(_TwoAgentProgram(), client,
                         scheduler=SchedulerConfig(faults=policy),
                         num_workers=2)
    started = time.monotonic()
    message = ""
    fired = False
    try:
        sim.run(target_step=3)
    except SchedulingError as exc:
        fired = True
        message = str(exc)
    elapsed = time.monotonic() - started
    client.release.set()  # unwedge the worker so its thread exits
    deadline = time.monotonic() + 5.0
    while (threading.active_count() > baseline_threads
           and time.monotonic() < deadline):
        time.sleep(0.01)
    leaked = threading.active_count() - baseline_threads
    diagnostic = "watchdog" in message and "progress:" in message
    within_deadline = elapsed < WATCHDOG_TIMEOUT * 10 + 2.0
    return {
        "schedule": "watchdog",
        "fired": fired,
        "diagnostic": diagnostic,
        "elapsed": elapsed,
        "leaked_threads": leaked,
        "message": message,
        "ok": fired and diagnostic and within_deadline and leaked == 0,
    }


def run_chaos(out: Path | None = None,
              scenarios: list[str] | None = None,
              seeds: tuple[int, ...] = (0,)) -> dict:
    """Run the full chaos matrix; write the JSON report if asked.

    Each scenario gets every schedule in :data:`SCHEDULES` per seed
    (the schedule kind is folded into the draw seed so cells are
    independent) plus one replay blackout cell; the watchdog cell is
    engine-global.
    """
    names = scenarios or scenario_names()
    cells = []
    for name in names:
        scn = get_scenario(name)
        for base_seed in seeds:
            for offset, kind in enumerate(SCHEDULES):
                cells.append(chaos_cell(scn, kind,
                                        seed=base_seed * 100 + offset))
        cells.append(blackout_cell(scn))
    watchdog = watchdog_cell()
    report = {
        "cells": cells,
        "watchdog": watchdog,
        "ok": all(c["ok"] for c in cells) and watchdog["ok"],
    }
    if out is not None:
        out = Path(out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2) + "\n")
    return report


def format_chaos_report(report: dict) -> str:
    header = (f"{'scenario':<14}{'schedule':<11}{'state':<7}"
              f"{'exercised':<28}ok")
    lines = [header, "-" * len(header)]
    for cell in report["cells"]:
        if cell["schedule"] == "blackout":
            exercised = (f"blackouts={cell['replica_blackouts']} "
                         f"rerouted={cell['rerouted_requests']}")
            state = "n/a" if cell["ok"] else "FAIL"
        else:
            faults = cell["faults"]
            exercised = " ".join(
                f"{key}={faults.get(key, 0)}"
                for key in cell["required_paths"])
            state = "same" if cell["state_identical"] else "DIFF"
        lines.append(f"{cell['scenario']:<14}{cell['schedule']:<11}"
                     f"{state:<7}{exercised:<28}"
                     f"{'ok' if cell['ok'] else 'FAIL'}")
    wd = report["watchdog"]
    lines.append(f"{'-':<14}{'watchdog':<11}{'-':<7}"
                 f"fired={wd['fired']} diag={wd['diagnostic']} "
                 f"leaked={wd['leaked_threads']:<3}"
                 f"{'ok' if wd['ok'] else 'FAIL'}")
    return "\n".join(lines)


def check_chaos_report(report: dict) -> list[str]:
    """Gate: every cell ok. Returns human-readable failure strings."""
    failures = []
    for cell in report["cells"]:
        if cell["ok"]:
            continue
        name = f"{cell['scenario']}/{cell['schedule']}"
        if cell["schedule"] == "blackout":
            failures.append(
                f"{name}: blackouts={cell['replica_blackouts']} "
                f"rerouted={cell['rerouted_requests']} calls "
                f"{cell['n_calls_faulted']}/{cell['n_calls_clean']}")
            continue
        reasons = []
        if not cell["state_identical"]:
            reasons.append("final state diverged from lock-step")
        if cell["unexercised_paths"]:
            reasons.append(
                f"unexercised fault paths: {cell['unexercised_paths']}")
        if cell["faults"].get("leaked_workers"):
            reasons.append(
                f"leaked workers: {cell['faults']['leaked_workers']}")
        failures.append(f"{name}: {'; '.join(reasons) or 'failed'}")
    wd = report["watchdog"]
    if not wd["ok"]:
        failures.append(
            f"watchdog: fired={wd['fired']} diagnostic={wd['diagnostic']} "
            f"elapsed={wd['elapsed']:.2f}s leaked={wd['leaked_threads']}")
    return failures
