"""Trace persistence: compressed npz (fast path) and jsonl (interchange).

The jsonl format mirrors the event records the paper describes collecting
("input prompt, configurations, LLM response, calling step, and caller's
identity" — here token counts stand in for the text), one JSON object per
call event, plus a header object and a movement record per agent.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from ..errors import TraceError
from .schema import Trace, TraceMeta, _alloc_positions


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write a trace as compressed npz."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        meta=json.dumps(asdict(trace.meta)),
        positions_sa=trace.positions_by_step,
        call_step=trace.call_step,
        call_agent=trace.call_agent,
        call_func=trace.call_func,
        call_in=trace.call_in,
        call_out=trace.call_out,
    )


def load_trace(path: str | Path) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"no trace at {path}")
    with np.load(path, allow_pickle=False) as data:
        meta = TraceMeta(**json.loads(str(data["meta"])))
        # Step-major is the canonical on-disk layout; files written
        # before the numpy position store carried agent-major arrays.
        if "positions_sa" in data.files:
            positions, step_major = data["positions_sa"], True
        else:
            positions, step_major = data["positions"], False
        # Route big stores through the size-thresholded allocator so a
        # million-agent load lands in the same (possibly memmap-backed)
        # kind of store the generator builds, instead of pinning the
        # decompressed npz array in anonymous RAM.
        backed = _alloc_positions(positions.shape, positions.dtype)
        if isinstance(backed, np.memmap):
            np.copyto(backed, positions)
            positions = backed
        trace = Trace(
            meta, positions,
            data["call_step"], data["call_agent"], data["call_func"],
            data["call_in"], data["call_out"], step_major=step_major)
    # Graph traces: the coordinate speed check does not apply, so the
    # untrusted boundary re-checks movement in hop distance.
    trace.validate_movement()
    return trace


def export_jsonl(trace: Trace, path: str | Path) -> None:
    """Write the interchange jsonl representation."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        fh.write(json.dumps({"type": "header", **asdict(trace.meta)}) + "\n")
        for aid in range(trace.meta.n_agents):
            fh.write(json.dumps({
                "type": "movement", "agent": aid,
                "path": trace.positions[aid].tolist()}) + "\n")
        for i in range(trace.n_calls):
            fh.write(json.dumps({
                "type": "call",
                "step": int(trace.call_step[i]),
                "agent": int(trace.call_agent[i]),
                "func": trace.func_name(int(trace.call_func[i])),
                "input_tokens": int(trace.call_in[i]),
                "output_tokens": int(trace.call_out[i]),
            }) + "\n")


def import_jsonl(path: str | Path) -> Trace:
    """Read the interchange jsonl representation."""
    from ..world.behavior import FUNC_INDEX

    path = Path(path)
    meta = None
    movements: dict[int, list] = {}
    steps, agents, funcs, ins, outs = [], [], [], [], []
    with path.open() as fh:
        for line in fh:
            rec = json.loads(line)
            kind = rec.pop("type")
            if kind == "header":
                meta = TraceMeta(**rec)
            elif kind == "movement":
                movements[rec["agent"]] = rec["path"]
            elif kind == "call":
                steps.append(rec["step"])
                agents.append(rec["agent"])
                funcs.append(FUNC_INDEX[rec["func"]])
                ins.append(rec["input_tokens"])
                outs.append(rec["output_tokens"])
            else:
                raise TraceError(f"unknown record type {kind!r}")
    if meta is None:
        raise TraceError("jsonl trace missing header record")
    positions = np.zeros((meta.n_agents, meta.n_steps + 1, 2), dtype=np.int32)
    for aid, pos_list in movements.items():
        positions[aid] = np.asarray(pos_list, dtype=np.int32)
    trace = Trace(
        meta, positions,
        np.asarray(steps, dtype=np.int32), np.asarray(agents, dtype=np.int32),
        np.asarray(funcs, dtype=np.int16), np.asarray(ins, dtype=np.int32),
        np.asarray(outs, dtype=np.int32))
    trace.validate_movement()
    return trace
