"""Trace schema, generation, persistence and statistics.

A *trace* is the complete record of one simulation run that the paper's
replay-mode benchmarking consumes: every agent's tile position at every
step, plus every LLM call (step, agent, function, prompt tokens, output
tokens, chain order). The paper collected 40 simulation-days of traces by
instrumenting the original GenAgent implementation against the GPT-3.5
API; we generate statistically equivalent traces by running the
:mod:`repro.world` simulation (see DESIGN.md for the substitution
rationale) and replay them identically.
"""

from .schema import Trace, TraceMeta
from .generator import (generate_trace, generate_concatenated_trace,
                        cached_day_trace)
from .io import save_trace, load_trace, export_jsonl, import_jsonl
from .stats import TraceStats, compute_stats

__all__ = [
    "Trace",
    "TraceMeta",
    "generate_trace",
    "generate_concatenated_trace",
    "cached_day_trace",
    "save_trace",
    "load_trace",
    "export_jsonl",
    "import_jsonl",
    "TraceStats",
    "compute_stats",
]
