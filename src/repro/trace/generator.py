"""Synthetic GenAgent trace generation, parameterized by scenario.

Runs the :mod:`repro.world` simulation of any registered scenario (see
:mod:`repro.scenarios`) lock-step for a day (or any number of steps),
recording positions and LLM calls into a :class:`Trace`. Generation is
deterministic in ``(scenario, seed)``. Day traces are cached on disk
(npz) because the scaling benchmarks slice many windows out of the same
days; the cache key includes the scenario name. Set ``REPRO_TRACE_CACHE``
to relocate or ``=0`` to disable.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import numpy as np

from ..config import STEPS_PER_DAY, DependencyConfig
from ..errors import TraceError
from ..scenarios import Scenario, get_scenario
from ..world.behavior import FUNC_INDEX
from .io import load_trace, save_trace
from .schema import Trace, TraceMeta, concat_traces

#: Bump to invalidate cached traces when generation logic changes.
GENERATOR_VERSION = 4


def generate_trace(n_agents: int | None = None,
                   n_steps: int = STEPS_PER_DAY,
                   seed: int = 0,
                   scenario: str | Scenario = "smallville") -> Trace:
    """Simulate one segment of ``scenario`` and record its trace.

    ``n_agents`` defaults to the scenario's per-segment population (25
    for SmallVille, as in the paper's setup).
    """
    scn = get_scenario(scenario)
    if n_agents is None:
        n_agents = scn.agents_per_segment
    if n_agents < 1:
        raise TraceError("need at least one agent")
    model = scn.model(n_agents, seed)
    world = model.world

    # Step-major from the start: generation appends one population row
    # per step, which is exactly the canonical trace layout.
    positions = np.zeros((n_steps + 1, n_agents, 2), dtype=np.int16)
    for agent in model.agents:
        positions[0, agent.agent_id] = agent.pos
    steps: list[int] = []
    agents: list[int] = []
    funcs: list[int] = []
    ins: list[int] = []
    outs: list[int] = []
    for step in range(n_steps):
        calls = model.step_all(step)
        for aid in range(n_agents):
            for call in calls[aid]:
                steps.append(step)
                agents.append(aid)
                funcs.append(FUNC_INDEX[call.func])
                ins.append(call.input_tokens)
                outs.append(call.output_tokens)
            positions[step + 1, aid] = model.agents[aid].pos

    dep = scn.dependency_config or DependencyConfig()
    meta = TraceMeta(
        n_agents=n_agents, n_steps=n_steps, seed=seed,
        width=world.width, height=world.height, scenario=scn.name,
        radius_p=dep.radius_p, max_vel=dep.max_vel, metric=dep.metric)
    return Trace(
        meta, positions,
        np.asarray(steps, dtype=np.int32), np.asarray(agents, dtype=np.int32),
        np.asarray(funcs, dtype=np.int16), np.asarray(ins, dtype=np.int32),
        np.asarray(outs, dtype=np.int32), step_major=True)


def _cache_dir() -> Path | None:
    env = os.environ.get("REPRO_TRACE_CACHE", "")
    if env == "0":
        return None
    if env:
        path = Path(env)
    else:
        path = Path(tempfile.gettempdir()) / "repro-traces"
    path.mkdir(parents=True, exist_ok=True)
    return path


def cached_day_trace(seed: int, n_agents: int | None = None,
                     n_steps: int = STEPS_PER_DAY,
                     scenario: str | Scenario = "smallville") -> Trace:
    """A (possibly cached) full-day single-segment trace."""
    scn = get_scenario(scenario)
    if n_agents is None:
        n_agents = scn.agents_per_segment
    cache = _cache_dir()
    if cache is None:
        return generate_trace(n_agents, n_steps, seed, scn)
    path = cache / (f"v{GENERATOR_VERSION}-{scn.name}-seed{seed}"
                    f"-a{n_agents}-s{n_steps}.npz")
    if path.exists():
        try:
            return load_trace(path)
        except Exception:
            path.unlink(missing_ok=True)
    trace = generate_trace(n_agents, n_steps, seed, scn)
    save_trace(trace, path)
    return trace


def generate_concatenated_trace(
        total_agents: int,
        n_steps: int = STEPS_PER_DAY,
        base_seed: int = 0,
        scenario: str | Scenario = "smallville") -> Trace:
    """The §4.3 large ville: independent map segments side-by-side.

    Each segment replays an independently-seeded day of the scenario's
    per-segment population; segments share the clock and the
    (concatenated) space, exactly as the paper scales from 25 to 1000
    agents.
    """
    scn = get_scenario(scenario)
    per_segment = scn.agents_per_segment
    if total_agents <= per_segment:
        return cached_day_trace(base_seed, total_agents, n_steps, scn)
    n_segments, remainder = divmod(total_agents, per_segment)
    segments = [
        cached_day_trace(base_seed + k, per_segment, n_steps, scn)
        for k in range(n_segments)
    ]
    if remainder:
        segments.append(
            cached_day_trace(base_seed + n_segments, remainder, n_steps, scn))
    # One-tile gutter between segments keeps the worlds disjoint.
    world, _ = scn.world()
    return concat_traces(segments, x_stride=world.width + 1)


def generate_scale_trace(
        total_agents: int,
        n_steps: int = 30,
        base_seed: int = 0,
        scenario: str | Scenario = "smallville",
        pool_size: int = 8) -> Trace:
    """Tiled large-population trace for the 100k/1M scale benchmarks.

    Like :func:`generate_concatenated_trace`, but built for populations
    where simulating thousands of independent day segments would cost
    more than the benchmark itself:

    * segments cycle through a small pool of ``pool_size``
      independently-seeded windows (``n_steps`` kept short for the same
      reason), so generation is O(pool) simulation + O(total) array
      writes — the writes stream into the preallocated (possibly
      memmap-backed) store of :func:`concat_traces`;
    * coordinate scenarios get a **widened gutter**: segments are
      strided ``2 * (radius_p + (n_steps + 1) * max_vel)`` tiles apart
      beyond the map width, putting them outside the worst-case
      blocking threshold for the whole window. The region-sharded
      controller (:mod:`repro.core.sharding`) can then prove the
      segments independent and actually shard; the default one-tile
      gutter is disjoint for *simulation* but within pessimistic
      blocking range, which forces the planner's single-region
      fallback. Graph scenarios keep the node-id stride convention —
      their segments are separate components already.
    """
    scn = get_scenario(scenario)
    per_segment = scn.agents_per_segment
    if total_agents <= per_segment:
        return cached_day_trace(base_seed, total_agents, n_steps, scn)
    pool = [cached_day_trace(base_seed + k, per_segment, n_steps, scn)
            for k in range(max(1, pool_size))]
    n_segments, remainder = divmod(total_agents, per_segment)
    segments = [pool[k % len(pool)] for k in range(n_segments)]
    if remainder:
        segments.append(
            cached_day_trace(base_seed + len(pool), remainder, n_steps, scn))
    world, _ = scn.world()
    dep = scn.dependency_config or DependencyConfig()
    if dep.metric == "graph":
        x_stride = world.width + 1
    else:
        margin = dep.radius_p + (n_steps + 1) * dep.max_vel
        x_stride = world.width + 1 + 2 * int(margin + 1)
    return concat_traces(segments, x_stride=x_stride)
