"""Synthetic GenAgent trace generation.

Runs the :mod:`repro.world` simulation lock-step for a day (or any number
of steps), recording positions and LLM calls into a :class:`Trace`.
Generation is deterministic in the seed. Day traces are cached on disk
(npz) because the scaling benchmarks slice many windows out of the same
days; set ``REPRO_TRACE_CACHE`` to relocate or ``=0`` to disable.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import numpy as np

from ..config import STEPS_PER_DAY
from ..errors import TraceError
from ..world.behavior import FUNC_INDEX, BehaviorModel
from ..world.pathfind import PathPlanner
from ..world.persona import make_personas
from ..world.smallville import (AGENTS_PER_VILLE, SMALLVILLE_HEIGHT,
                                SMALLVILLE_WIDTH, build_smallville)
from .io import load_trace, save_trace
from .schema import Trace, TraceMeta, concat_traces

#: Bump to invalidate cached traces when generation logic changes.
GENERATOR_VERSION = 3

_shared_planner: PathPlanner | None = None


def _planner() -> PathPlanner:
    """All villes share one map, so BFS distance fields are shared too."""
    global _shared_planner
    if _shared_planner is None:
        world, _ = build_smallville()
        _shared_planner = PathPlanner(world)
    return _shared_planner


def generate_trace(n_agents: int = AGENTS_PER_VILLE,
                   n_steps: int = STEPS_PER_DAY,
                   seed: int = 0) -> Trace:
    """Simulate one SmallVille and record its trace."""
    if n_agents < 1:
        raise TraceError("need at least one agent")
    planner = _planner()
    world = planner.world
    personas = make_personas(n_agents, seed, homes=[
        name for name in world.venues if name.startswith("House")])
    model = BehaviorModel(world, personas, seed=seed, planner=planner)

    positions = np.zeros((n_agents, n_steps + 1, 2), dtype=np.int16)
    for agent in model.agents:
        positions[agent.agent_id, 0] = agent.pos
    steps: list[int] = []
    agents: list[int] = []
    funcs: list[int] = []
    ins: list[int] = []
    outs: list[int] = []
    for step in range(n_steps):
        calls = model.step_all(step)
        for aid in range(n_agents):
            for call in calls[aid]:
                steps.append(step)
                agents.append(aid)
                funcs.append(FUNC_INDEX[call.func])
                ins.append(call.input_tokens)
                outs.append(call.output_tokens)
            positions[aid, step + 1] = model.agents[aid].pos

    meta = TraceMeta(
        n_agents=n_agents, n_steps=n_steps, seed=seed,
        width=SMALLVILLE_WIDTH, height=SMALLVILLE_HEIGHT)
    return Trace(
        meta, positions,
        np.asarray(steps, dtype=np.int32), np.asarray(agents, dtype=np.int32),
        np.asarray(funcs, dtype=np.int16), np.asarray(ins, dtype=np.int32),
        np.asarray(outs, dtype=np.int32))


def _cache_dir() -> Path | None:
    env = os.environ.get("REPRO_TRACE_CACHE", "")
    if env == "0":
        return None
    if env:
        path = Path(env)
    else:
        path = Path(tempfile.gettempdir()) / "repro-traces"
    path.mkdir(parents=True, exist_ok=True)
    return path


def cached_day_trace(seed: int, n_agents: int = AGENTS_PER_VILLE,
                     n_steps: int = STEPS_PER_DAY) -> Trace:
    """A (possibly cached) full-day single-ville trace."""
    cache = _cache_dir()
    if cache is None:
        return generate_trace(n_agents, n_steps, seed)
    path = cache / (f"v{GENERATOR_VERSION}-seed{seed}-a{n_agents}"
                    f"-s{n_steps}.npz")
    if path.exists():
        try:
            return load_trace(path)
        except Exception:
            path.unlink(missing_ok=True)
    trace = generate_trace(n_agents, n_steps, seed)
    save_trace(trace, path)
    return trace


def generate_concatenated_trace(total_agents: int,
                                n_steps: int = STEPS_PER_DAY,
                                base_seed: int = 0) -> Trace:
    """The §4.3 large ville: ceil(N/25) SmallVilles side-by-side.

    Each segment replays an independently-seeded 25-agent day; segments
    share the clock and the (concatenated) space, exactly as the paper
    scales from 25 to 1000 agents.
    """
    if total_agents <= AGENTS_PER_VILLE:
        return cached_day_trace(base_seed, total_agents, n_steps)
    n_segments, remainder = divmod(total_agents, AGENTS_PER_VILLE)
    segments = [
        cached_day_trace(base_seed + k, AGENTS_PER_VILLE, n_steps)
        for k in range(n_segments)
    ]
    if remainder:
        segments.append(
            cached_day_trace(base_seed + n_segments, remainder, n_steps))
    # One-tile gutter between segments keeps the worlds disjoint.
    return concat_traces(segments, x_stride=SMALLVILLE_WIDTH + 1)
