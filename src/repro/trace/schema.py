"""Columnar trace representation.

Positions and LLM calls are stored as dense numpy arrays so that thousand-
agent traces stay compact and slicing an hour window (the paper's busy/
quiet-hour benchmarks) is a cheap array operation. Positions are held
**step-major** — one ``(n_steps + 1, n_agents, 2)`` int array — so the
replay drivers gather a commit batch's rows in one fancy index, a step's
population slice is contiguous (bulk spatial-index loads, the oracle's
per-step clustering), and graph-metric traces expose their node-id
column without re-tupling; the agent-major orientation remains available
as a transposed view. A CSR-style index maps ``(agent, step)`` to that
agent's ordered call chain for the step, which is what the scheduler
drivers consume.
"""

from __future__ import annotations

import itertools
import os
import sys
import tempfile
from dataclasses import dataclass, replace as dc_replace
from typing import Sequence

import numpy as np

from ..errors import TraceError
from ..world.behavior import FUNCS

#: Position stores larger than this many MiB are backed by an unlinked
#: temp-file ``np.memmap`` instead of anonymous RAM — the million-agent
#: tiled traces are written once, streamed segment-wise, and mostly read
#: in step slices, so the page cache handles them better than a resident
#: allocation. Override with ``REPRO_TRACE_MEMMAP_MB`` (``-1`` disables).
_MEMMAP_MB_DEFAULT = 512.0


def _alloc_positions(shape: tuple[int, ...], dtype) -> np.ndarray:
    """Zeroed position store, memmap-backed above the size threshold."""
    env = os.environ.get("REPRO_TRACE_MEMMAP_MB", "")
    try:
        thresh_mb = float(env) if env else _MEMMAP_MB_DEFAULT
    except ValueError:
        thresh_mb = _MEMMAP_MB_DEFAULT
    nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
    if thresh_mb < 0 or nbytes <= thresh_mb * (1 << 20):
        return np.zeros(shape, dtype=dtype)
    fd, path = tempfile.mkstemp(prefix="repro-trace-", suffix=".pos")
    os.close(fd)
    arr = np.memmap(path, dtype=dtype, mode="w+", shape=shape)
    # The mapping keeps the inode alive; unlinking makes cleanup
    # automatic when the array is garbage-collected (POSIX).
    os.unlink(path)
    return arr


#: Distinct per-process suffix stream for shared-segment names.
_SHM_SEQ = itertools.count()


def _untrack_shm(shm) -> None:
    """Detach an *attached* segment from this process's resource tracker.

    CPython 3.12 registers POSIX shared memory with the resource
    tracker on attach as well as on create, so a worker that merely
    opened the segment would tear it down (or warn about a leak) when
    it exits. Only the creating process owns cleanup; attachments must
    untrack. On <= 3.11 attaching does not register — and forked
    workers share the parent's tracker process, so unregistering there
    would erase the *owner's* registration — hence the version gate.
    """
    if sys.version_info < (3, 12):
        return
    try:
        from multiprocessing import resource_tracker
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


class SharedPositionStore:
    """A step-major position array in named POSIX shared memory.

    The multiprocess replay driver's transport: the parent copies the
    trace's ``(n_steps + 1, n_agents, 2)`` store into one segment and
    every shard worker opens it **zero-copy** by name (each then
    gathers only its own members' columns). Workers never write the
    segment, which is what makes crashed-worker redispatch idempotent.

    Ownership: the creating process calls :meth:`unlink` (then
    :meth:`close`) after the run; attached processes only
    :meth:`close`. Attachments are unregistered from the resource
    tracker so a worker's exit cannot tear the segment down under the
    other readers.
    """

    def __init__(self, shm, shape: tuple[int, ...], dtype,
                 owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self.array: np.ndarray | None = np.ndarray(
            self.shape, dtype=self.dtype, buffer=shm.buf)

    @property
    def name(self) -> str:
        return self._shm.name

    @classmethod
    def create(cls, array: np.ndarray) -> "SharedPositionStore":
        """New owned segment initialized with a copy of ``array``.

        Raises whatever the platform raises when POSIX shared memory is
        unavailable — callers fall back to in-process execution.
        """
        from multiprocessing import shared_memory
        arr = np.ascontiguousarray(array)
        shm = None
        for _ in range(8):
            name = f"repro-pos-{os.getpid()}-{next(_SHM_SEQ)}"
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=max(1, arr.nbytes))
                break
            except FileExistsError:
                continue
        if shm is None:  # pragma: no cover - 8 collisions
            shm = shared_memory.SharedMemory(
                create=True, size=max(1, arr.nbytes))
        store = cls(shm, arr.shape, arr.dtype, owner=True)
        np.copyto(store.array, arr)
        return store

    @classmethod
    def open(cls, name: str, shape: Sequence[int],
             dtype) -> "SharedPositionStore":
        """Attach to an existing segment by name (reader side)."""
        from multiprocessing import shared_memory
        try:
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # pre-3.13: no track kwarg; untrack manually
            shm = shared_memory.SharedMemory(name=name)
            _untrack_shm(shm)
        return cls(shm, tuple(shape), dtype, owner=False)

    def close(self) -> None:
        """Drop the array view and unmap the segment (every process)."""
        self.array = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - stray exported view
            pass

    def unlink(self) -> None:
        """Remove the segment name (owner only; attachments no-op)."""
        if not self._owner:
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "SharedPositionStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass(frozen=True)
class TraceMeta:
    """Descriptive metadata carried alongside the arrays."""

    n_agents: int
    n_steps: int
    seed: int
    width: int
    height: int
    radius_p: float = 4.0
    max_vel: float = 1.0
    #: Distance metric of the generating scenario (see
    #: ``DependencyConfig.metric``). ``graph`` means positions are
    #: ``(node_id, 0)`` pairs measured in hop distance, so coordinate-
    #: based checks (the movement speed limit) do not apply.
    metric: str = "euclidean"
    #: Absolute step-of-day at which this trace window begins.
    base_step: int = 0
    #: Number of concatenated map segments (1 = the original map).
    segments: int = 1
    #: Registered scenario this trace was generated from.
    scenario: str = "smallville"


class Trace:
    """One simulation's positions and LLM calls.

    Attributes
    ----------
    positions_by_step:
        ``int[n_steps + 1, n_agents, 2]`` — the canonical step-major
        store: tile at the *start* of each step;
        ``positions_by_step[s + 1, a]`` is where agent ``a`` ended step
        ``s``. Per-step displacement never exceeds ``meta.max_vel``.
        ``positions`` is the agent-major transposed view of the same
        array (``int[n_agents, n_steps + 1, 2]``).
    call_step / call_agent / call_func / call_in / call_out:
        Parallel arrays of the call events, sorted by ``(agent, step)``
        with chain order preserved. ``call_func`` indexes
        :data:`repro.world.behavior.FUNCS`.
    """

    def __init__(self, meta: TraceMeta, positions: np.ndarray,
                 call_step: np.ndarray, call_agent: np.ndarray,
                 call_func: np.ndarray, call_in: np.ndarray,
                 call_out: np.ndarray, step_major: bool = False) -> None:
        self.meta = meta
        positions = np.asarray(positions)
        if step_major:
            if positions.shape != (meta.n_steps + 1, meta.n_agents, 2):
                raise TraceError(
                    f"step-major positions shape {positions.shape} != "
                    f"{(meta.n_steps + 1, meta.n_agents, 2)}")
            self._pos_sa = np.ascontiguousarray(positions)
        else:
            if positions.shape != (meta.n_agents, meta.n_steps + 1, 2):
                raise TraceError(
                    f"positions shape {positions.shape} != "
                    f"{(meta.n_agents, meta.n_steps + 1, 2)}")
            self._pos_sa = np.ascontiguousarray(
                positions.transpose(1, 0, 2))
        self._pos_flat: np.ndarray | None = None
        n = len(call_step)
        for name, arr in (("call_agent", call_agent),
                          ("call_func", call_func), ("call_in", call_in),
                          ("call_out", call_out)):
            if len(arr) != n:
                raise TraceError(f"{name} length {len(arr)} != {n}")
        # Normalize to (agent, step, original order) so chains are CSR rows.
        order = np.lexsort((np.arange(n), call_step, call_agent))
        self.call_step = np.ascontiguousarray(call_step[order])
        self.call_agent = np.ascontiguousarray(call_agent[order])
        self.call_func = np.ascontiguousarray(call_func[order])
        self.call_in = np.ascontiguousarray(call_in[order])
        self.call_out = np.ascontiguousarray(call_out[order])
        self._validate()
        self._build_index()

    # -- construction helpers ------------------------------------------

    def _validate(self) -> None:
        meta = self.meta
        if len(self.call_step) and (
                self.call_step.min() < 0
                or self.call_step.max() >= meta.n_steps):
            raise TraceError("call step out of range")
        if len(self.call_agent) and (
                self.call_agent.min() < 0
                or self.call_agent.max() >= meta.n_agents):
            raise TraceError("call agent out of range")
        if len(self.call_out) and self.call_out.min() < 1:
            raise TraceError("output token counts must be >= 1")
        # Movement speed limit (the dependency rules assume it). Graph
        # metrics carry node ids, not coordinates, so the coordinate
        # check does not apply — untrusted entry points (load_trace /
        # import_jsonl) run :meth:`validate_movement` with the
        # scenario's space instead; in-process generation is covered by
        # the scenario test suite.
        if meta.metric == "graph":
            return
        # Chunked over steps: the naive full-trace int32 copy + diff
        # peaks at ~3x the position store — prohibitive at million-agent
        # scale, and the check is a pure reduction anyway.
        pos = self._pos_sa
        n_rows = pos.shape[0]
        chunk = max(2, 4_000_000 // max(1, pos.shape[1]))
        for s0 in range(0, n_rows - 1, chunk - 1):
            s1 = min(n_rows, s0 + chunk)
            deltas = np.diff(pos[s0:s1].astype(np.int32), axis=0)
            speed = np.abs(deltas).sum(axis=2)  # Manhattan per step
            if speed.size and speed.max() > meta.max_vel:
                raise TraceError(
                    f"an agent moved {speed.max()} tiles in one step "
                    f"(max_vel={meta.max_vel})")

    def validate_movement(self) -> None:
        """Check the per-step speed bound in the trace's *own* metric.

        For graph traces this measures hop distance through the
        scenario's space (resolved via ``rules_for``); coordinate
        traces already validated at construction. Costs one distance
        lookup per agent-step, so it runs at the untrusted boundaries
        (trace load/import), not on every window slice.
        """
        if self.meta.metric != "graph":
            return
        from ..core.rules import rules_for  # lazy: avoid import cycle
        space = rules_for(None, self.meta).space
        max_vel = self.meta.max_vel
        for aid in range(self.meta.n_agents):
            for step in range(self.meta.n_steps):
                d = space.dist(self.pos(aid, step), self.pos(aid, step + 1))
                if d > max_vel:
                    raise TraceError(
                        f"agent {aid} moved {d} hops at step {step} "
                        f"(max_vel={max_vel})")

    def _build_index(self) -> None:
        """CSR row pointers: row = agent * n_steps + step."""
        n_rows = self.meta.n_agents * self.meta.n_steps
        keys = (self.call_agent.astype(np.int64) * self.meta.n_steps
                + self.call_step)
        if len(keys) and np.any(np.diff(keys) < 0):
            raise TraceError("internal: calls not sorted")  # pragma: no cover
        self._row_ptr = np.zeros(n_rows + 1, dtype=np.int64)
        counts = np.bincount(keys, minlength=n_rows) if len(keys) else \
            np.zeros(n_rows, dtype=np.int64)
        np.cumsum(counts, out=self._row_ptr[1:])

    # -- accessors ----------------------------------------------------------

    @property
    def positions(self) -> np.ndarray:
        """Agent-major ``int[n_agents, n_steps + 1, 2]`` view."""
        return self._pos_sa.transpose(1, 0, 2)

    @property
    def positions_by_step(self) -> np.ndarray:
        """The canonical step-major ``int[n_steps + 1, n_agents, 2]``."""
        return self._pos_sa

    @property
    def positions_flat(self) -> np.ndarray:
        """``int[(n_steps + 1) * n_agents, 2]`` row view of the store.

        Row ``step * n_agents + agent`` is that agent's tile at the
        start of ``step`` — the replay drivers' commit gathers and the
        speculative driver's per-record row snapshots index this one
        shared array instead of each rebuilding their own copy.
        """
        flat = self._pos_flat
        if flat is None:
            self._pos_flat = flat = self._pos_sa.reshape(-1, 2)
        return flat

    def step_positions(self, step: int) -> np.ndarray:
        """Contiguous ``int[n_agents, 2]`` slice at the start of ``step``."""
        return self._pos_sa[step]

    def node_ids(self, step: int) -> np.ndarray:
        """Graph-metric node-id column at ``step`` (``int[n_agents]``).

        Graph traces store positions as ``(node_id, 0)`` pairs; this is
        the id column without re-tupling.
        """
        return self._pos_sa[step, :, 0]

    @property
    def n_calls(self) -> int:
        return len(self.call_step)

    def chain_slice(self, agent: int, step: int) -> slice:
        """Index range of agent's calls within ``step`` (chain order)."""
        row = agent * self.meta.n_steps + step
        return slice(int(self._row_ptr[row]), int(self._row_ptr[row + 1]))

    def chain_bounds(self, agents: Sequence[int] | np.ndarray,
                     step: int) -> tuple[np.ndarray, np.ndarray]:
        """CSR ``(starts, ends)`` of each agent's call chain at ``step``.

        One fancy index over the row-pointer table for a whole cluster —
        the executor's per-dispatch-round lookup. ``call_func[starts[i]:
        ends[i]]`` (and ``call_in`` / ``call_out``) is member ``i``'s
        chain in order.
        """
        rows = np.asarray(agents, dtype=np.int64) * self.meta.n_steps + step
        return self._row_ptr[rows], self._row_ptr[rows + 1]

    def chain(self, agent: int, step: int) -> list[tuple[int, int, int]]:
        """``[(func_id, prompt_tokens, output_tokens), ...]`` for the step."""
        sl = self.chain_slice(agent, step)
        return list(zip(self.call_func[sl].tolist(),
                        self.call_in[sl].tolist(),
                        self.call_out[sl].tolist()))

    def chain_lengths(self) -> np.ndarray:
        """``int64[n_agents, n_steps]`` — number of calls per agent-step."""
        return np.diff(self._row_ptr).reshape(
            self.meta.n_agents, self.meta.n_steps)

    def pos(self, agent: int, step: int) -> tuple[int, int]:
        """Tile of ``agent`` at the start of ``step``."""
        x, y = self._pos_sa[step, agent]
        return int(x), int(y)

    def func_name(self, func_id: int) -> str:
        return FUNCS[func_id]

    def share_positions(self) -> SharedPositionStore:
        """Publish the step-major store as a named shared-memory segment.

        Returns an *owned* :class:`SharedPositionStore` holding a copy
        of the positions; the trace itself keeps its original array
        (which may be a temp-file memmap), so it stays valid after the
        segment is unlinked. Worker processes attach by name and read
        zero-copy. The caller owns the segment's lifetime:
        ``unlink()`` + ``close()`` when the run drains.
        """
        return SharedPositionStore.create(self._pos_sa)

    # -- transformations --------------------------------------------------

    def window(self, start_step: int, end_step: int) -> "Trace":
        """Sub-trace covering ``[start_step, end_step)``, steps renumbered."""
        if not 0 <= start_step < end_step <= self.meta.n_steps:
            raise TraceError(
                f"bad window [{start_step}, {end_step}) of "
                f"{self.meta.n_steps} steps")
        mask = (self.call_step >= start_step) & (self.call_step < end_step)
        meta = dc_replace(self.meta, n_steps=end_step - start_step,
                          base_step=self.meta.base_step + start_step)
        return Trace(
            meta,
            self._pos_sa[start_step:end_step + 1].copy(),
            self.call_step[mask] - start_step,
            self.call_agent[mask],
            self.call_func[mask],
            self.call_in[mask],
            self.call_out[mask],
            step_major=True,
        )


def concat_traces(traces: Sequence[Trace], x_stride: int) -> Trace:
    """Place ``traces`` side-by-side in space (the §4.3 large ville).

    Segment ``k`` keeps its own agents and calls but its x coordinates are
    offset by ``k * x_stride``; agent ids are renumbered contiguously.
    Segments share the clock, so inter-segment distances are real — they
    are simply always too large for interaction, which is the point of the
    paper's concatenation methodology.
    """
    if not traces:
        raise TraceError("need at least one trace")
    first = traces[0].meta
    for t in traces:
        if t.meta.n_steps != first.n_steps:
            raise TraceError("all segments must cover the same steps")
        if t.meta.height != first.height:
            raise TraceError("all segments must share map height")
    # Stream segment-wise into one preallocated store (memmap-backed
    # above the threshold — see :func:`_alloc_positions`): the old
    # per-segment int32 copies + concatenate peaked at 2-3x the final
    # array, the difference between a million-agent build fitting in
    # memory or not. Segments repeat from a small pool at scale, so the
    # per-segment work is a cheap widen-shift-store slice write.
    total_agents = sum(t.meta.n_agents for t in traces)
    out = _alloc_positions((first.n_steps + 1, total_agents, 2), np.int32)
    steps, agents, funcs, ins, outs = [], [], [], [], []
    agent_base = 0
    for k, t in enumerate(traces):
        n = t.meta.n_agents
        dst = out[:, agent_base:agent_base + n]
        np.copyto(dst, t.positions_by_step, casting="same_kind")
        dst[:, :, 0] += k * x_stride
        steps.append(t.call_step)
        agents.append(t.call_agent + agent_base)
        funcs.append(t.call_func)
        ins.append(t.call_in)
        outs.append(t.call_out)
        agent_base += n
    meta = dc_replace(
        first, n_agents=agent_base, segments=len(traces),
        width=(len(traces) - 1) * x_stride + first.width)
    return Trace(
        meta, out,
        np.concatenate(steps), np.concatenate(agents),
        np.concatenate(funcs), np.concatenate(ins), np.concatenate(outs),
        step_major=True)
