"""Trace statistics (the paper's §4.1 trace characterization and Fig 4c).

The paper reports, per 25-agent simulated day: ~56.7k LLM calls, mean
input 642.6 tokens, mean output 21.9 tokens, an hourly call distribution
with a 1am-4am sleep trough, a ~5k-call busy hour (12-1pm) and a ~800-call
quiet hour (6-7am), and an average of 1.85 dependency agents (including
self). :func:`compute_stats` derives all of these from a trace so the
calibration can be asserted in tests and printed by the benches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import STEPS_PER_HOUR
from ..world.behavior import FUNCS
from .schema import Trace


@dataclass(frozen=True)
class TraceStats:
    n_agents: int
    n_steps: int
    total_calls: int
    mean_input_tokens: float
    mean_output_tokens: float
    #: Calls per simulated hour-of-day (length = ceil(steps/360)).
    calls_per_hour: np.ndarray
    #: Call counts per function name.
    calls_per_func: dict[str, int]
    #: Mean agents (including self) within the interaction threshold at
    #: each agent-step — the paper's "1.85 dependency agents" metric.
    mean_dependency_agents: float
    #: Mean calls per agent-step among steps that issue any call.
    mean_chain_length: float
    #: Fraction of agent-steps that issue no LLM call at all.
    idle_fraction: float

    def calls_in_hour(self, hour: int) -> int:
        return int(self.calls_per_hour[hour])


def _mean_dependency_agents(trace: Trace, sample_stride: int = 7) -> float:
    """Average cluster-mate count under the paper's oracle criterion.

    For sampled steps, counts for each agent how many agents (itself
    included) sit within ``radius_p + max_vel`` — i.e. how many actually
    constrain it across consecutive steps.
    """
    threshold = trace.meta.radius_p + trace.meta.max_vel
    if trace.meta.metric == "graph":
        # Hop-distance worlds: measure in the scenario's graph space
        # (pairwise loops; graph traces are small-world scale).
        from ..core.rules import rules_for  # lazy: avoid import cycle
        space = rules_for(None, trace.meta).space
        totals = 0.0
        count = 0
        n = trace.meta.n_agents
        for step in range(0, trace.meta.n_steps, sample_stride):
            positions = [trace.pos(aid, step) for aid in range(n)]
            within = sum(
                1 for a in positions for b in positions
                if space.dist(a, b) <= threshold)
            totals += within / n
            count += 1
        return totals / max(count, 1)
    thr2 = threshold * threshold
    pos = trace.positions.astype(np.float64)
    totals = 0.0
    count = 0
    for step in range(0, trace.meta.n_steps, sample_stride):
        p = pos[:, step, :]
        diff = p[:, None, :] - p[None, :, :]
        within = (diff ** 2).sum(axis=2) <= thr2
        totals += within.sum(axis=1).mean()
        count += 1
    return totals / max(count, 1)


def compute_stats(trace: Trace, dependency_sample_stride: int = 7
                  ) -> TraceStats:
    """Derive the §4.1 characterization of a trace."""
    n_hours = (trace.meta.n_steps + STEPS_PER_HOUR - 1) // STEPS_PER_HOUR
    hour_of_call = trace.call_step // STEPS_PER_HOUR
    calls_per_hour = np.bincount(hour_of_call, minlength=n_hours)
    func_counts = np.bincount(trace.call_func, minlength=len(FUNCS))
    chain_lengths = trace.chain_lengths()
    nonzero = chain_lengths[chain_lengths > 0]
    return TraceStats(
        n_agents=trace.meta.n_agents,
        n_steps=trace.meta.n_steps,
        total_calls=trace.n_calls,
        mean_input_tokens=float(trace.call_in.mean()) if trace.n_calls else 0.0,
        mean_output_tokens=float(trace.call_out.mean()) if trace.n_calls else 0.0,
        calls_per_hour=calls_per_hour,
        calls_per_func={FUNCS[i]: int(func_counts[i])
                        for i in range(len(FUNCS)) if func_counts[i]},
        mean_dependency_agents=_mean_dependency_agents(
            trace, dependency_sample_stride),
        mean_chain_length=float(nonzero.mean()) if len(nonzero) else 0.0,
        idle_fraction=float((chain_lengths == 0).mean()),
    )
