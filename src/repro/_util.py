"""Small shared helpers."""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, Sequence

import numpy as np


def stable_seed(*parts: int | str) -> int:
    """Derive a 63-bit seed deterministically from heterogeneous parts.

    Used to key counter-based RNG streams per (seed, agent, step) so that
    agent decisions are independent of scheduling order.
    """
    h = hashlib.blake2b(digest_size=8)
    for p in parts:
        h.update(str(p).encode())
        h.update(b"\x1f")
    return int.from_bytes(h.digest(), "little") & (2**63 - 1)


def rng_for(*parts: int | str) -> np.random.Generator:
    """A numpy Generator keyed by ``parts`` (order-independent replay)."""
    return np.random.Generator(np.random.PCG64(stable_seed(*parts)))


class FastRng:
    """SplitMix64-based RNG with the small API the behavior model needs.

    Behavior decisions draw a fresh stream per (agent, step); constructing
    a numpy Generator that often dominates trace generation time, so this
    lightweight equivalent (same ``random()`` / ``integers()`` shape) is
    used on that hot path. SplitMix64 passes BigCrush for this use.
    """

    __slots__ = ("_state",)

    _MASK = (1 << 64) - 1

    def __init__(self, seed: int) -> None:
        self._state = seed & self._MASK

    def _next(self) -> int:
        self._state = (self._state + 0x9E3779B97F4A7C15) & self._MASK
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & self._MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & self._MASK
        return z ^ (z >> 31)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._next() / 2.0**64

    def integers(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi) — numpy ``Generator.integers`` shape."""
        if hi <= lo:
            raise ValueError(f"empty range [{lo}, {hi})")
        return lo + self._next() % (hi - lo)


def fast_rng_for(*parts: int | str) -> FastRng:
    """A :class:`FastRng` keyed by ``parts``."""
    return FastRng(stable_seed(*parts))


class UnionFind:
    """Union-find over dense integer ids with path compression."""

    __slots__ = ("parent", "rank")

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.rank = [0] * n

    def find(self, x: int) -> int:
        parent = self.parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        return True

    def groups(self, items: Iterable[int]) -> Iterator[list[int]]:
        """Yield the member lists of each connected component of ``items``."""
        by_root: dict[int, list[int]] = {}
        for it in items:
            by_root.setdefault(self.find(it), []).append(it)
        yield from by_root.values()


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    total = float(sum(weights))
    if total == 0.0:
        return 0.0
    return float(sum(v * w for v, w in zip(values, weights)) / total)
