"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """Invalid configuration value or inconsistent combination of options."""


class SchedulingError(ReproError):
    """The scheduler reached an inconsistent state (e.g. deadlock or a
    temporal-causality violation detected at runtime)."""


class CausalityViolation(SchedulingError):
    """The §3.2 validity condition was violated between two agents.

    This is never expected to happen for the shipped schedulers; it exists
    so tests and the runtime validator can fail loudly instead of silently
    producing a wrong simulation.
    """

    def __init__(self, agent_a: int, step_a: int, agent_b: int, step_b: int,
                 distance: float, threshold: float) -> None:
        self.agent_a = agent_a
        self.step_a = step_a
        self.agent_b = agent_b
        self.step_b = step_b
        self.distance = distance
        self.threshold = threshold
        super().__init__(
            f"causality violation: agent {agent_a}@{step_a} vs agent "
            f"{agent_b}@{step_b}: dist {distance:.3f} <= required "
            f"{threshold:.3f}"
        )


class ServingError(ReproError):
    """Errors from the simulated LLM serving engine."""


class CapacityError(ServingError):
    """A request can never fit in the configured KV-cache capacity."""


class TransactionError(ReproError):
    """Optimistic transaction aborted after exhausting retries."""


class WatchError(TransactionError):
    """A watched key changed between WATCH and EXEC (single attempt)."""


class FaultError(ReproError):
    """Base class for injected or surfaced execution-layer faults."""


class TransientLLMError(FaultError):
    """A retryable LLM-call failure (timeout, connection reset...)."""


class LLMCallError(FaultError):
    """A non-retryable LLM-call failure (or a call whose bounded retry
    budget was exhausted); the worker acks failure and the controller
    aborts and redispatches the cluster."""


class TraceError(ReproError):
    """Malformed or inconsistent trace data."""


class WorldError(ReproError):
    """Invalid world-model operation (bad tile, unreachable target...)."""


class ScenarioError(ReproError):
    """Unknown scenario name, duplicate registration, or a scenario whose
    world/personas violate the invariants the schedulers rely on."""


class KernelError(ReproError):
    """Discrete-event kernel misuse (e.g. scheduling in the past)."""
