"""Live (wall-clock, multi-threaded) execution engine.

The replay engine in :mod:`repro.core` measures schedulers in virtual
time; this package is the *deployable* counterpart: a real implementation
of Algorithm 3 with a controller, a pool of worker threads, priority
ready/ack queues, agent state kept in the transactional KV store (the
paper keeps it in Redis), and LLM calls issued to a pluggable
:class:`LLMClient`. Use it to drive an actual simulation — the gym-like
:class:`Environment` wraps a user world program the way the paper's
interfaces wrap ``agent.proceed`` / ``world.step``.
"""

from .clients import EchoLLMClient, LLMClient, ThrottledLLMClient
from .engine import LiveResult, LiveSimulation
from .environment import Environment, WorldProgram, program_for_scenario

__all__ = [
    "LLMClient",
    "EchoLLMClient",
    "ThrottledLLMClient",
    "LiveSimulation",
    "LiveResult",
    "Environment",
    "WorldProgram",
    "program_for_scenario",
]
