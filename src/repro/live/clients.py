"""LLM client protocol for live execution.

The live engine is deliberately agnostic about where completions come
from (§3.6 decouples simulation from serving): anything implementing
:class:`LLMClient` works — an OpenAI-compatible HTTP shim, a local
serving engine, or the testing clients below.
"""

from __future__ import annotations

import threading
import time
from typing import Protocol


class LLMClient(Protocol):
    """Minimal completion interface the workers call (thread-safe)."""

    def complete(self, prompt: str, max_tokens: int,
                 priority: float = 0.0) -> str:
        """Generate up to ``max_tokens`` for ``prompt``.

        ``priority`` carries the issuing agent's simulation step; clients
        backed by priority-aware servers should serve smaller values
        first (§3.5).
        """
        ...


class EchoLLMClient:
    """Returns canned text instantly — for tests and dry runs."""

    def __init__(self) -> None:
        self.calls = 0
        self._lock = threading.Lock()

    def complete(self, prompt: str, max_tokens: int,
                 priority: float = 0.0) -> str:
        with self._lock:
            self.calls += 1
        return f"ok({min(max_tokens, 16)})"

    def completed_calls(self) -> int:
        with self._lock:
            return self.calls


class ThrottledLLMClient:
    """Simulates a serving deployment in wall-clock time.

    Latency = base + per_token * max_tokens, with at most ``slots``
    concurrent requests (beyond that, callers queue on a semaphore) —
    a coarse stand-in for a DP deployment when demonstrating that OOO
    scheduling shortens real makespans.
    """

    def __init__(self, base_latency: float = 0.002,
                 per_token: float = 0.00002, slots: int = 8) -> None:
        self.base_latency = base_latency
        self.per_token = per_token
        self._sem = threading.Semaphore(slots)
        self._lock = threading.Lock()
        self.calls = 0
        self.busy_time = 0.0

    def complete(self, prompt: str, max_tokens: int,
                 priority: float = 0.0) -> str:
        duration = self.base_latency + self.per_token * max_tokens
        with self._sem:
            time.sleep(duration)
        with self._lock:
            self.calls += 1
            self.busy_time += duration
        return "x " * min(max_tokens, 8)
