"""World-program protocol and the gym-like Environment wrapper.

A *world program* is the developer-defined side of the paper's
architecture: given a step and a coupling-closed set of agents, it runs
their ``proceed`` logic (issuing LLM calls through the engine's client)
and applies their writes at commit. The engine guarantees the set it
passes is closed under the §3.2 coupling relation and causally safe to
run — the world program never needs locks of its own.

:class:`BehaviorProgram` adapts the full :class:`repro.world` simulation;
:class:`Environment` is the small façade mirroring the reset/run surface
of RL-style frameworks the paper compares its interface to.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from ..config import SchedulerConfig
from ..core.space import Position
from ..world.behavior import BehaviorModel
from .clients import LLMClient


class WorldProgram(Protocol):
    """Developer-defined world + agents, executed cluster-by-cluster.

    Programs may additionally provide a ``positions(aids) -> dict``
    batch hook: the engine prefers it for its one-read-per-commit (and
    one-read-at-startup) bulk position fetches, falling back to
    per-agent :meth:`position` calls when absent. Worlds whose position
    reads are expensive (remote state, derived coordinates) should
    implement it.
    """

    @property
    def n_agents(self) -> int: ...

    def position(self, aid: int) -> Position:
        """Agent's current position (read by the dependency tracker)."""
        ...

    def execute(self, step: int, agent_ids: Sequence[int],
                client: LLMClient) -> None:
        """Run one step for a coupling-closed set of agents.

        Called from a worker thread; may issue blocking LLM calls.
        Delivery is *at-least-once*: after a mid-cluster failure (an LLM
        call raising) the engine aborts the cluster and re-executes it,
        possibly re-clustered, so programs must make the world mutation
        idempotent per ``(step, agent)`` — see :class:`BehaviorProgram`
        for the memo pattern.
        """
        ...


class BehaviorProgram:
    """Adapts :class:`BehaviorModel` (the SmallVille world) to live runs."""

    def __init__(self, model: BehaviorModel) -> None:
        self.model = model
        #: Crash-consistent redispatch memo: ``aid -> (step, calls)`` of
        #: the last world step applied for the agent. ``execute`` is
        #: delivered at-least-once (a failed cluster is aborted and
        #: re-run), but ``step_agents`` mutates the world *before* the
        #: LLM calls are issued — so re-delivery must replay the cached
        #: calls without stepping again, or agents double-step and the
        #: state diverges from lock-step. Disjoint clusters touch
        #: disjoint keys (the engine never runs an agent twice
        #: concurrently), so plain dict ops are safe across workers.
        self._applied: dict[int, tuple[int, list]] = {}

    @property
    def n_agents(self) -> int:
        return len(self.model.agents)

    def position(self, aid: int) -> Position:
        return self.model.agents[aid].pos

    def positions(self, aids: Sequence[int]) -> dict[int, Position]:
        """Batch position read (one pass; the engine calls this once per
        cluster commit instead of one :meth:`position` per member)."""
        agents = self.model.agents
        return {aid: agents[aid].pos for aid in aids}

    def execute(self, step: int, agent_ids: Sequence[int],
                client: LLMClient) -> None:
        fresh = []
        calls: dict[int, list] = {}
        for aid in agent_ids:
            applied = self._applied.get(aid)
            if applied is not None and applied[0] == step:
                calls[aid] = applied[1]  # redispatch: replay, don't re-step
            else:
                fresh.append(aid)
        if fresh:
            stepped = self.model.step_agents(step, fresh)
            for aid in fresh:
                agent_calls = stepped.get(aid, [])
                self._applied[aid] = (step, agent_calls)
                calls[aid] = agent_calls
        for aid in sorted(calls):
            for call in calls[aid]:
                client.complete(
                    prompt=f"[{call.func}] agent {aid} step {step} "
                           f"({call.input_tokens} tokens)",
                    max_tokens=call.output_tokens,
                    priority=float(step))


def program_for_scenario(scenario: str, n_agents: int,
                         seed: int = 0) -> "BehaviorProgram":
    """A ready-to-run world program for any registered scenario.

    Example::

        program = program_for_scenario("metro-grid", n_agents=10)
        result = Environment(program, EchoLLMClient()).run(target_step=50)
    """
    from ..scenarios import get_scenario
    return BehaviorProgram(get_scenario(scenario).model(n_agents, seed))


class Environment:
    """Gym-flavoured façade over :class:`repro.live.LiveSimulation`.

    Example::

        world, homes = build_smallville()
        personas = make_personas(5, seed=0, homes=homes)
        program = BehaviorProgram(BehaviorModel(world, personas, seed=0))
        env = Environment(program, EchoLLMClient())
        result = env.run(target_step=50)
    """

    def __init__(self, program: WorldProgram, client: LLMClient,
                 scheduler: SchedulerConfig | None = None,
                 num_workers: int = 4) -> None:
        from .engine import LiveSimulation  # avoid import cycle
        self.program = program
        self.client = client
        self.scheduler = scheduler or SchedulerConfig()
        self.num_workers = num_workers
        self._sim: LiveSimulation | None = None

    def run(self, target_step: int):
        """Run the simulation to ``target_step`` and return its result."""
        from .engine import LiveSimulation
        self._sim = LiveSimulation(
            self.program, self.client, scheduler=self.scheduler,
            num_workers=self.num_workers)
        return self._sim.run(target_step)
