"""The live, multi-threaded Algorithm 3.

Faithful to the paper's architecture at thread granularity:

* the **controller** (caller's thread) owns the spatiotemporal dependency
  graph, geo-clusters ready agents, and feeds dispatchable clusters into
  a priority ``ready_queue`` (ordered by step, §3.5);
* **workers** (a thread pool) pull clusters, run the world program's
  ``execute`` for the members — which issues blocking LLM calls — read
  the members' positions once in bulk, commit the new state to the KV
  store in one optimistic transaction (§3.6 keeps this state in Redis)
  and acknowledge — positions included — through the ``ack_queue``;
* the controller drains every pending ack, retires the whole batch
  through one vectorized graph commit (the ack payload already carries
  the positions, so the controller never re-derives
  ``program.position()``), and dispatches whatever became ready,
  exactly like the virtual-time driver. Coupling components are
  memoized inside the dependency graph itself (``component_for``),
  invalidated by its own ``mark_running``/``commit`` transitions — the
  engine runs no cache-invalidation protocol.

**Fault tolerance** (see :mod:`repro.faults`): workers call the LLM
through a :class:`~repro.faults.ResilientClient` (bounded seeded-backoff
retries, circuit breaker, fallback on open) and never die on an
exception — they send a structured *failure ack* instead. The controller
rolls the failed cluster back via ``SpatioTemporalGraph.abort_running``
(the exact inverse of ``mark_running``) and redispatches it up to the
:class:`~repro.config.FaultPolicy` budget, degrading the final attempt to
the scenario's fallback client; a no-progress watchdog converts a lost
ack into a diagnostic :class:`SchedulingError` instead of hanging, and
shutdown always joins the worker pool — a failed run leaks no threads.

``policy="parallel-sync"`` degrades the controller to one global cluster
per step (Algorithm 1), which is both a baseline and the reference for
the OOO-equivalence tests: a correct OOO run must produce the identical
world state.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from ..config import FaultPolicy, SchedulerConfig
from ..core.dependency_graph import SpatioTemporalGraph
from ..core.rules import rules_for
from ..errors import ScenarioError, SchedulingError
from ..faults import (FallbackLLMClient, FaultStats, ResilientClient,
                      scheduler_diagnostics)
from ..kvstore import KVStore
from .clients import LLMClient
from .environment import WorldProgram

_SHUTDOWN = object()


@dataclass
class LiveResult:
    """Outcome of a live run."""

    target_step: int
    wall_time: float
    clusters_executed: int
    cluster_size_sum: int
    max_step_spread: int
    #: §3.6 critical-path accounting: wall-clock seconds the controller
    #: thread spent clustering, updating the dependency graph on acks,
    #: and submitting ready clusters to the worker queue.
    time_clustering: float = 0.0
    time_graph: float = 0.0
    time_dispatch: float = 0.0
    #: Controller rounds executed; with ack coalescing one round can
    #: retire several worker acks.
    controller_rounds: int = 0
    #: Final per-agent positions, as stored in the KV store.
    final_positions: dict[int, tuple] = field(default_factory=dict)
    #: Fault-handling accounting (retries, redispatches, breaker
    #: transitions, degraded completions...); all zero on a clean run.
    faults: FaultStats = field(default_factory=FaultStats)

    @property
    def mean_cluster_size(self) -> float:
        if not self.clusters_executed:
            return 0.0
        return self.cluster_size_sum / self.clusters_executed

    @property
    def controller_time(self) -> float:
        """Total wall-clock seconds on the controller's critical path."""
        return self.time_clustering + self.time_graph + self.time_dispatch


class LiveSimulation:
    """One live run of a world program under OOO (or lock-step) control."""

    def __init__(self, program: WorldProgram, client: LLMClient,
                 scheduler: SchedulerConfig | None = None,
                 num_workers: int = 4,
                 store: KVStore | None = None,
                 fallback_client: LLMClient | None = None) -> None:
        self.program = program
        self.client = client
        self.scheduler = scheduler or SchedulerConfig()
        self.num_workers = max(num_workers, 1)
        self.store = store or KVStore()
        self.faults_policy = self.scheduler.faults or FaultPolicy()
        # Degraded-mode plan: an explicit client wins, then the
        # scenario's fallback_client() hook, then canned completions.
        self._fallback = fallback_client if fallback_client is not None \
            else self._scenario_fallback()
        self._resilient = ResilientClient(client, self.faults_policy,
                                          fallback=self._fallback)
        # Scenario-aware: SchedulerConfig.scenario routes graph-metric
        # worlds to their GraphSpace; plain configs behave as before.
        self.rules = rules_for(self.scheduler)
        self._ready_queue: queue.PriorityQueue = queue.PriorityQueue()
        self._ack_queue: queue.Queue = queue.Queue()
        self._seq = 0
        self._attempts: dict[int, int] = {}
        self._degraded: set[int] = set()
        self._last_ack = time.monotonic()
        self._stats = LiveResult(target_step=0, wall_time=0.0,
                                 clusters_executed=0, cluster_size_sum=0,
                                 max_step_spread=0)

    def _scenario_fallback(self) -> LLMClient:
        if self.scheduler.scenario:
            from ..scenarios import get_scenario  # lazy: import cycle
            try:
                return get_scenario(self.scheduler.scenario).fallback_client()
            except ScenarioError:
                pass
        return FallbackLLMClient()

    # -- workers ------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._ready_queue.get()
            if item[2] is _SHUTDOWN:
                return
            _, _, cluster, step, degraded = item
            # Degraded dispatch (redispatch budget exhausted) bypasses
            # the primary client entirely: the fallback plan must not
            # depend on the failing dependency.
            client = self._fallback if degraded else self._resilient
            try:
                self.program.execute(step, cluster, client)
                # One bulk position read per commit; the ack carries it
                # so the controller never re-derives positions.
                positions = self._positions_of(cluster)
                self._commit_to_store(step, cluster, positions)
                self._ack_queue.put(("ok", step, cluster, positions))
            except BaseException as exc:
                # Structured failure ack: the worker survives, the
                # controller decides (abort + redispatch or raise).
                self._ack_queue.put(("fail", step, cluster, exc))

    def _positions_of(self, aids) -> dict:
        """Bulk position read: the program's batch hook, or per-agent."""
        reader = getattr(self.program, "positions", None)
        if reader is not None:
            return dict(reader(aids))
        position = self.program.position
        return {aid: position(aid) for aid in aids}

    def _commit_to_store(self, step: int, cluster: list[int],
                         positions: dict) -> None:
        """Transactionally persist the members' post-step state."""

        def body(txn) -> None:
            for aid in cluster:
                txn.hset(f"agent:{aid}", "step", step + 1)
                txn.hset(f"agent:{aid}", "pos", positions[aid])
            txn.incr("commits")

        self.store.transaction(body)

    # -- controller ---------------------------------------------------------

    def run(self, target_step: int, start_step: int = 0) -> LiveResult:
        """Advance the world program from ``start_step`` to ``target_step``.

        When ``start_step > 0`` the program must already be in its
        step-``start_step`` state (e.g. warmed up lock-step) — useful for
        jumping straight into an active window of the simulated day.
        """
        if target_step <= start_step:
            raise SchedulingError("target_step must exceed start_step")
        # A LiveSimulation object is reusable: every run starts from
        # fresh queues, counters, and KV state (a second run would
        # otherwise accumulate stale keys and inflated stats).
        self._ready_queue = queue.PriorityQueue()
        self._ack_queue = queue.Queue()
        self._seq = 0
        self._attempts = {}
        self._degraded = set()
        self._last_ack = time.monotonic()
        self._stats = LiveResult(target_step=0, wall_time=0.0,
                                 clusters_executed=0, cluster_size_sum=0,
                                 max_step_spread=0)
        self._resilient = ResilientClient(self.client, self.faults_policy,
                                          fallback=self._fallback)
        fallback_calls0 = getattr(self._fallback, "calls", 0)
        tx_retries0 = self.store.tx_retries
        injected0 = dict(getattr(self.client, "injected", {}))
        conflicts0 = self.store.injected_conflicts
        # Only the simulation's own keys: a caller-supplied store may
        # hold unrelated application data.
        self.store.delete(*self.store.keys("agent:"), "commits")
        n = self.program.n_agents
        pos0 = self._positions_of(list(range(n)))
        for aid in range(n):
            self.store.hset(f"agent:{aid}", "step", start_step)
            self.store.hset(f"agent:{aid}", "pos", pos0[aid])
        graph = SpatioTemporalGraph(self.rules, pos0,
                                    start_step=start_step)
        workers = [threading.Thread(target=self._worker_loop, daemon=True)
                   for _ in range(self.num_workers)]
        start = time.monotonic()
        for w in workers:
            w.start()
        try:
            if self.scheduler.policy == "parallel-sync":
                self._run_lockstep(target_step, n, start_step)
            else:
                self._run_ooo(target_step, n, graph)
        finally:
            # Shutdown must run on *every* exit path — controller raise
            # included — so a failed run never leaks live threads. The
            # workers never die on task failure, so each sentinel stops
            # exactly one of them; the join grace bounds the wait on a
            # worker stuck inside a hung LLM call (daemon threads, so
            # abandoning one cannot hang interpreter exit — it is
            # counted instead).
            for _ in workers:
                self._ready_queue.put((float("inf"), self._next_seq(),
                                       _SHUTDOWN, -1, False))
            for w in workers:
                w.join(timeout=self.faults_policy.worker_join_grace)
            leaked = sum(1 for w in workers if w.is_alive())
            self._collect_faults(fallback_calls0, tx_retries0, injected0,
                                 conflicts0, leaked)
        self._stats.target_step = target_step
        self._stats.wall_time = time.monotonic() - start
        self._stats.final_positions = {
            aid: self.store.hget(f"agent:{aid}", "pos") for aid in range(n)}
        return self._stats

    def _collect_faults(self, fallback_calls0: int, tx_retries0: int,
                        injected0: dict, conflicts0: int,
                        leaked: int) -> None:
        """Fold the run's fault counters into the result record."""
        faults = self._stats.faults
        resilient = self._resilient
        faults.llm_retries = resilient.retries
        faults.llm_failures = resilient.failures
        faults.llm_timeouts = resilient.timeouts
        faults.degraded_completions = \
            getattr(self._fallback, "calls", 0) - fallback_calls0 \
            if hasattr(self._fallback, "calls") else resilient.degraded
        faults.breaker_opens = resilient.breaker.opens
        faults.breaker_closes = resilient.breaker.closes
        faults.tx_retries = self.store.tx_retries - tx_retries0
        faults.leaked_workers = leaked
        injected = dict(getattr(self.client, "injected", {}))
        for kind, count in injected.items():
            delta = count - injected0.get(kind, 0)
            if delta:
                faults.injected[kind] = delta
        delta = self.store.injected_conflicts - conflicts0
        if delta:
            faults.injected["tx_conflicts"] = delta

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _submit(self, step: int, cluster: list[int],
                degraded: bool = False) -> None:
        priority = float(step) if self.scheduler.priority else 0.0
        self._ready_queue.put((priority, self._next_seq(), cluster, step,
                               degraded))
        self._stats.clusters_executed += 1
        self._stats.cluster_size_sum += len(cluster)

    # -- acks + watchdog ----------------------------------------------------

    def _await_ack(self, diag: Callable[[], str]) -> tuple:
        """Block for one ack; the watchdog bounds the wait.

        No worker ack within ``watchdog_timeout`` of the previous one
        (while work is in flight — the caller only blocks when it is)
        means a hang: a lost ack, a stuck client, a wedged worker. The
        watchdog raises a diagnostic :class:`SchedulingError` instead of
        blocking forever.
        """
        remaining = self.faults_policy.watchdog_timeout \
            - (time.monotonic() - self._last_ack)
        try:
            item = self._ack_queue.get(timeout=max(remaining, 0.005))
        except queue.Empty:
            raise SchedulingError(
                f"watchdog: no worker ack within "
                f"{self.faults_policy.watchdog_timeout}s\n  {diag()}"
            ) from None
        self._last_ack = time.monotonic()
        return item

    def _poll_ack(self) -> tuple | None:
        """A non-blocking ack, or None when the queue is drained."""
        try:
            item = self._ack_queue.get_nowait()
        except queue.Empty:
            return None
        self._last_ack = time.monotonic()
        return item

    def _diagnostics(self, graph: SpatioTemporalGraph | None, n: int,
                     done: int) -> str:
        blocked: dict[int, list[int]] = {}
        running: list[int] | None = None
        if graph is not None:
            running = [aid for aid in range(n) if graph.running[aid]]
            for aid in range(n):
                if not graph.running[aid] and graph.blocked_by[aid]:
                    blocked[aid] = sorted(graph.blockers_of(aid))
                    if len(blocked) >= 50:
                        break
        return scheduler_diagnostics(
            done=done, total=n, blocked=blocked or None, running=running,
            ready_depth=self._ready_queue.qsize(),
            ack_depth=self._ack_queue.qsize(),
            last_ack_age=time.monotonic() - self._last_ack,
            redispatches=self._stats.faults.redispatches)

    # -- failure handling ---------------------------------------------------

    def _handle_failure(self, graph: SpatioTemporalGraph | None, step: int,
                        cluster: list[int], exc: BaseException) -> None:
        """Roll a failed cluster back and charge its redispatch budget.

        ``abort_running`` is the exact inverse of the dispatch-time
        ``mark_running``: members return to the ready pool with steps,
        positions, and blocked edges untouched (nothing was committed).
        Attempt counts are per-agent so re-formed clusters with shifted
        membership keep their history; past ``max_redispatches`` the
        member's next dispatch is degraded to the fallback client, and
        one failure beyond that surfaces the original exception.
        """
        if graph is not None:
            graph.abort_running(cluster)
        faults = self._stats.faults
        faults.aborted_clusters += 1
        policy = self.faults_policy
        worst = 0
        for m in cluster:
            count = self._attempts.get(m, 0) + 1
            self._attempts[m] = count
            if count > policy.max_redispatches:
                self._degraded.add(m)
            if count > worst:
                worst = count
        if worst > policy.max_redispatches + 1:
            raise SchedulingError(
                f"cluster {cluster} at step {step} failed after "
                f"{policy.max_redispatches} redispatches and a degraded "
                f"dispatch: {exc!r}") from exc

    def _clear_attempts(self, members: list[int]) -> None:
        for m in members:
            self._attempts.pop(m, None)
            self._degraded.discard(m)

    # -- run loops ----------------------------------------------------------

    def _run_lockstep(self, target_step: int, n: int,
                      start_step: int = 0) -> None:
        everyone = list(range(n))
        policy = self.faults_policy
        for step in range(start_step, target_step):
            attempts = 0
            while True:
                self._submit(step, everyone,
                             degraded=attempts > policy.max_redispatches)
                kind, _, _, payload = self._await_ack(
                    lambda: self._diagnostics(None, n, step - start_step))
                if kind == "ok":
                    break
                attempts += 1
                faults = self._stats.faults
                faults.aborted_clusters += 1
                faults.redispatches += 1
                if attempts > policy.max_redispatches + 1:
                    raise SchedulingError(
                        f"lock-step batch at step {step} failed after "
                        f"{policy.max_redispatches} redispatches and a "
                        f"degraded dispatch: {payload!r}") from payload

    def _run_ooo(self, target_step: int, n: int,
                 graph: SpatioTemporalGraph) -> None:
        ready = set(range(n))
        done: set[int] = set()
        in_flight = 0
        in_flight += self._dispatch_round(graph, ready, set(ready),
                                          target_step)
        while len(done) < n:
            if in_flight == 0:
                raise SchedulingError(
                    f"live scheduler stalled\n  "
                    f"{self._diagnostics(graph, n, len(done))}")
            # Ack coalescing: block for one ack, then drain whatever
            # else finished while the controller slept — the whole batch
            # retires through one vectorized graph commit (positions
            # come straight from the ack payloads) and one dispatch
            # round.
            acks = [self._await_ack(
                lambda: self._diagnostics(graph, n, len(done)))]
            while True:
                ack = self._poll_ack()
                if ack is None:
                    break
                acks.append(ack)
            in_flight -= len(acks)
            t0 = time.perf_counter()
            dirty: set[int] = set()
            members_all: list[int] = []
            new_positions: dict[int, tuple] = {}
            for kind, step, cluster, payload in acks:
                if kind == "fail":
                    # Crash-consistent rollback: nothing was committed,
                    # so aborting restores the exact pre-dispatch graph.
                    self._handle_failure(graph, step, cluster, payload)
                    for aid in cluster:
                        ready.add(aid)
                        dirty.add(aid)
                    continue
                members_all += cluster
                new_positions.update(payload)
            if members_all:
                result = graph.commit(members_all, new_positions)
                self._clear_attempts(members_all)
                spread = graph.max_step - graph.min_step
                if spread > self._stats.max_step_spread:
                    self._stats.max_step_spread = spread
                for aid in members_all:
                    if graph.step[aid] >= target_step:
                        done.add(aid)
                    else:
                        ready.add(aid)
                        dirty.add(aid)
                for aid in result.unblocked:
                    if aid in ready:
                        dirty.add(aid)
                for aid in result.neighbors:
                    if aid in ready:
                        dirty.add(aid)
            self._stats.time_graph += time.perf_counter() - t0
            in_flight += self._dispatch_round(graph, ready, dirty,
                                              target_step)

    def _dispatch_round(self, graph: SpatioTemporalGraph, ready: set[int],
                        dirty: set[int], target_step: int) -> int:
        """Cluster the dirty frontier; dispatch unblocked clusters.

        Components come memoized from the graph (``component_for``);
        its BFS seeds from the just-committed batch's per-member
        coupling candidates instead of re-querying the index, and
        dispatching (``mark_running``) invalidates from inside the
        graph — no cache protocol here.
        """
        t0 = time.perf_counter()
        dispatched = 0
        submit_time = 0.0
        visited: set[int] = set()
        attempts = self._attempts
        degraded_pool = self._degraded
        faults = self._stats.faults
        for seed in sorted(dirty):
            if seed in visited or seed not in ready:
                continue
            step = graph.step[seed]
            cluster = graph.component_for(seed, visited)
            if not any(graph.blocked_by[m] for m in cluster):
                s0 = time.perf_counter()
                for m in cluster:
                    ready.discard(m)
                graph.mark_running(cluster)
                if attempts:
                    if any(m in attempts for m in cluster):
                        faults.redispatches += 1
                degraded = bool(degraded_pool) and \
                    any(m in degraded_pool for m in cluster)
                self._submit(step, cluster, degraded)
                dispatched += 1
                submit_time += time.perf_counter() - s0
        self._stats.time_dispatch += submit_time
        self._stats.time_clustering += \
            time.perf_counter() - t0 - submit_time
        self._stats.controller_rounds += 1
        return dispatched
