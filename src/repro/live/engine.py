"""The live, multi-threaded Algorithm 3.

Faithful to the paper's architecture at thread granularity:

* the **controller** (caller's thread) owns the spatiotemporal dependency
  graph, geo-clusters ready agents, and feeds dispatchable clusters into
  a priority ``ready_queue`` (ordered by step, §3.5);
* **workers** (a thread pool) pull clusters, run the world program's
  ``execute`` for the members — which issues blocking LLM calls — read
  the members' positions once in bulk, commit the new state to the KV
  store in one optimistic transaction (§3.6 keeps this state in Redis)
  and acknowledge — positions included — through the ``ack_queue``;
* the controller drains every pending ack, retires the whole batch
  through one vectorized graph commit (the ack payload already carries
  the positions, so the controller never re-derives
  ``program.position()``), and dispatches whatever became ready,
  exactly like the virtual-time driver. Coupling components are
  memoized inside the dependency graph itself (``component_for``),
  invalidated by its own ``mark_running``/``commit`` transitions — the
  engine runs no cache-invalidation protocol.

``policy="parallel-sync"`` degrades the controller to one global cluster
per step (Algorithm 1), which is both a baseline and the reference for
the OOO-equivalence tests: a correct OOO run must produce the identical
world state.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

from ..config import SchedulerConfig
from ..core.dependency_graph import SpatioTemporalGraph
from ..core.rules import rules_for
from ..errors import SchedulingError
from ..kvstore import KVStore
from .clients import LLMClient
from .environment import WorldProgram

_SHUTDOWN = object()


@dataclass
class LiveResult:
    """Outcome of a live run."""

    target_step: int
    wall_time: float
    clusters_executed: int
    cluster_size_sum: int
    max_step_spread: int
    #: §3.6 critical-path accounting: wall-clock seconds the controller
    #: thread spent clustering, updating the dependency graph on acks,
    #: and submitting ready clusters to the worker queue.
    time_clustering: float = 0.0
    time_graph: float = 0.0
    time_dispatch: float = 0.0
    #: Controller rounds executed; with ack coalescing one round can
    #: retire several worker acks.
    controller_rounds: int = 0
    #: Final per-agent positions, as stored in the KV store.
    final_positions: dict[int, tuple] = field(default_factory=dict)

    @property
    def mean_cluster_size(self) -> float:
        if not self.clusters_executed:
            return 0.0
        return self.cluster_size_sum / self.clusters_executed

    @property
    def controller_time(self) -> float:
        """Total wall-clock seconds on the controller's critical path."""
        return self.time_clustering + self.time_graph + self.time_dispatch


class LiveSimulation:
    """One live run of a world program under OOO (or lock-step) control."""

    def __init__(self, program: WorldProgram, client: LLMClient,
                 scheduler: SchedulerConfig | None = None,
                 num_workers: int = 4,
                 store: KVStore | None = None) -> None:
        self.program = program
        self.client = client
        self.scheduler = scheduler or SchedulerConfig()
        self.num_workers = max(num_workers, 1)
        self.store = store or KVStore()
        # Scenario-aware: SchedulerConfig.scenario routes graph-metric
        # worlds to their GraphSpace; plain configs behave as before.
        self.rules = rules_for(self.scheduler)
        self._ready_queue: queue.PriorityQueue = queue.PriorityQueue()
        self._ack_queue: queue.Queue = queue.Queue()
        self._seq = 0
        self._stats = LiveResult(target_step=0, wall_time=0.0,
                                 clusters_executed=0, cluster_size_sum=0,
                                 max_step_spread=0)

    # -- workers ------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._ready_queue.get()
            if item[2] is _SHUTDOWN:
                return
            _, _, cluster, step = item
            try:
                self.program.execute(step, cluster, self.client)
                # One bulk position read per commit; the ack carries it
                # so the controller never re-derives positions.
                positions = self._positions_of(cluster)
                self._commit_to_store(step, cluster, positions)
                self._ack_queue.put(("ok", step, cluster, positions))
            except BaseException as exc:  # surface worker crashes
                self._ack_queue.put(("error", step, exc, None))
                return

    def _positions_of(self, aids) -> dict:
        """Bulk position read: the program's batch hook, or per-agent."""
        reader = getattr(self.program, "positions", None)
        if reader is not None:
            return dict(reader(aids))
        position = self.program.position
        return {aid: position(aid) for aid in aids}

    def _commit_to_store(self, step: int, cluster: list[int],
                         positions: dict) -> None:
        """Transactionally persist the members' post-step state."""

        def body(txn) -> None:
            for aid in cluster:
                txn.hset(f"agent:{aid}", "step", step + 1)
                txn.hset(f"agent:{aid}", "pos", positions[aid])
            txn.incr("commits")

        self.store.transaction(body)

    # -- controller ---------------------------------------------------------

    def run(self, target_step: int, start_step: int = 0) -> LiveResult:
        """Advance the world program from ``start_step`` to ``target_step``.

        When ``start_step > 0`` the program must already be in its
        step-``start_step`` state (e.g. warmed up lock-step) — useful for
        jumping straight into an active window of the simulated day.
        """
        if target_step <= start_step:
            raise SchedulingError("target_step must exceed start_step")
        # A LiveSimulation object is reusable: every run starts from
        # fresh queues, counters, and KV state (a second run would
        # otherwise accumulate stale keys and inflated stats).
        self._ready_queue = queue.PriorityQueue()
        self._ack_queue = queue.Queue()
        self._seq = 0
        self._stats = LiveResult(target_step=0, wall_time=0.0,
                                 clusters_executed=0, cluster_size_sum=0,
                                 max_step_spread=0)
        # Only the simulation's own keys: a caller-supplied store may
        # hold unrelated application data.
        self.store.delete(*self.store.keys("agent:"), "commits")
        n = self.program.n_agents
        pos0 = self._positions_of(list(range(n)))
        for aid in range(n):
            self.store.hset(f"agent:{aid}", "step", start_step)
            self.store.hset(f"agent:{aid}", "pos", pos0[aid])
        graph = SpatioTemporalGraph(self.rules, pos0,
                                    start_step=start_step)
        workers = [threading.Thread(target=self._worker_loop, daemon=True)
                   for _ in range(self.num_workers)]
        start = time.monotonic()
        for w in workers:
            w.start()
        try:
            if self.scheduler.policy == "parallel-sync":
                self._run_lockstep(target_step, n, start_step)
            else:
                self._run_ooo(target_step, n, graph)
        finally:
            for _ in workers:
                self._ready_queue.put((float("inf"), self._next_seq(),
                                       _SHUTDOWN, -1))
            for w in workers:
                w.join(timeout=30)
        self._stats.target_step = target_step
        self._stats.wall_time = time.monotonic() - start
        self._stats.final_positions = {
            aid: self.store.hget(f"agent:{aid}", "pos") for aid in range(n)}
        return self._stats

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _submit(self, step: int, cluster: list[int]) -> None:
        priority = float(step) if self.scheduler.priority else 0.0
        self._ready_queue.put((priority, self._next_seq(), cluster, step))
        self._stats.clusters_executed += 1
        self._stats.cluster_size_sum += len(cluster)

    def _check_ack(self, item) -> tuple[int, list[int], dict]:
        kind, step, payload, positions = item
        if kind == "error":
            raise SchedulingError(
                f"worker failed at step {step}: {payload!r}") from payload
        return step, payload, positions

    def _await_ack(self) -> tuple[int, list[int], dict]:
        return self._check_ack(self._ack_queue.get())

    def _poll_ack(self) -> tuple[int, list[int], dict] | None:
        """A non-blocking ack, or None when the queue is drained."""
        try:
            item = self._ack_queue.get_nowait()
        except queue.Empty:
            return None
        return self._check_ack(item)

    def _run_lockstep(self, target_step: int, n: int,
                      start_step: int = 0) -> None:
        everyone = list(range(n))
        for step in range(start_step, target_step):
            self._submit(step, everyone)
            self._await_ack()

    def _run_ooo(self, target_step: int, n: int,
                 graph: SpatioTemporalGraph) -> None:
        ready = set(range(n))
        done: set[int] = set()
        in_flight = 0
        in_flight += self._dispatch_round(graph, ready, set(ready),
                                          target_step)
        while len(done) < n:
            if in_flight == 0:
                raise SchedulingError(
                    f"live scheduler stalled: done={len(done)}/{n}")
            # Ack coalescing: block for one ack, then drain whatever
            # else finished while the controller slept — the whole batch
            # retires through one vectorized graph commit (positions
            # come straight from the ack payloads) and one dispatch
            # round.
            acks = [self._await_ack()]
            while True:
                ack = self._poll_ack()
                if ack is None:
                    break
                acks.append(ack)
            in_flight -= len(acks)
            t0 = time.perf_counter()
            dirty: set[int] = set()
            members_all: list[int] = []
            new_positions: dict[int, tuple] = {}
            for _, cluster, positions in acks:
                members_all += cluster
                new_positions.update(positions)
            result = graph.commit(members_all, new_positions)
            spread = graph.max_step - graph.min_step
            if spread > self._stats.max_step_spread:
                self._stats.max_step_spread = spread
            for aid in members_all:
                if graph.step[aid] >= target_step:
                    done.add(aid)
                else:
                    ready.add(aid)
                    dirty.add(aid)
            for aid in result.unblocked:
                if aid in ready:
                    dirty.add(aid)
            for aid in result.neighbors:
                if aid in ready:
                    dirty.add(aid)
            self._stats.time_graph += time.perf_counter() - t0
            in_flight += self._dispatch_round(graph, ready, dirty,
                                              target_step)

    def _dispatch_round(self, graph: SpatioTemporalGraph, ready: set[int],
                        dirty: set[int], target_step: int) -> int:
        """Cluster the dirty frontier; dispatch unblocked clusters.

        Components come memoized from the graph (``component_for``);
        its BFS seeds from the just-committed batch's per-member
        coupling candidates instead of re-querying the index, and
        dispatching (``mark_running``) invalidates from inside the
        graph — no cache protocol here.
        """
        t0 = time.perf_counter()
        dispatched = 0
        submit_time = 0.0
        visited: set[int] = set()
        for seed in sorted(dirty):
            if seed in visited or seed not in ready:
                continue
            step = graph.step[seed]
            cluster = graph.component_for(seed, visited)
            if not any(graph.blocked_by[m] for m in cluster):
                s0 = time.perf_counter()
                for m in cluster:
                    ready.discard(m)
                graph.mark_running(cluster)
                self._submit(step, cluster)
                dispatched += 1
                submit_time += time.perf_counter() - s0
        self._stats.time_dispatch += submit_time
        self._stats.time_clustering += \
            time.perf_counter() - t0 - submit_time
        self._stats.controller_rounds += 1
        return dispatched
