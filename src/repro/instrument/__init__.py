"""Execution instrumentation: per-agent timelines (Figure 1) and derived
parallelism series."""

from .timeline import TimelineRecorder, TimelineEvent, render_ascii_timeline
from .parallelism import concurrency_series, concurrency_at

__all__ = [
    "TimelineRecorder",
    "TimelineEvent",
    "render_ascii_timeline",
    "concurrency_series",
    "concurrency_at",
]
