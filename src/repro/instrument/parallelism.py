"""Outstanding-request concurrency over time.

The paper's achieved-parallelism metric is the time-average of this
series (see :meth:`repro.serving.EngineMetrics.achieved_parallelism`);
these helpers expose the full series for plots and breakdowns.
"""

from __future__ import annotations

import numpy as np

from ..serving.metrics import RequestRecord


def concurrency_series(records: list[RequestRecord],
                       resolution: int = 512) -> tuple[np.ndarray, np.ndarray]:
    """Sampled (times, outstanding-count) series over the run."""
    if not records:
        return np.zeros(0), np.zeros(0)
    starts = np.array([r.submit_time for r in records])
    ends = np.array([r.finish_time for r in records])
    lo, hi = starts.min(), ends.max()
    times = np.linspace(lo, hi, resolution)
    counts = ((starts[None, :] <= times[:, None])
              & (ends[None, :] > times[:, None])).sum(axis=1)
    return times, counts.astype(np.int64)


def concurrency_at(records: list[RequestRecord], t: float) -> int:
    """Outstanding requests at virtual time ``t``."""
    return sum(1 for r in records
               if r.submit_time <= t < r.finish_time)
