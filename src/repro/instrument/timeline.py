"""Per-agent LLM invocation timelines (the paper's Figure 1).

Each recorded event is one LLM call: which agent issued it, at which
simulation step, which agent function produced it, and its [submit,
finish] interval in virtual time. ``render_ascii_timeline`` draws the
figure's layout — one row per agent, colored bars per function — as text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..world.behavior import FUNCS


@dataclass(frozen=True)
class TimelineEvent:
    agent: int
    step: int
    func_id: int
    submit_time: float
    finish_time: float

    @property
    def func(self) -> str:
        return FUNCS[self.func_id]


class TimelineRecorder:
    """Collects call events; plug its :meth:`record` into ChainExecutor."""

    def __init__(self) -> None:
        self.events: list[TimelineEvent] = []

    def record(self, agent: int, step: int, func_id: int,
               submit_time: float, finish_time: float) -> None:
        self.events.append(TimelineEvent(agent, step, func_id,
                                         submit_time, finish_time))

    def for_agent(self, agent: int) -> list[TimelineEvent]:
        return [e for e in self.events if e.agent == agent]

    def span(self) -> tuple[float, float]:
        if not self.events:
            return (0.0, 0.0)
        return (min(e.submit_time for e in self.events),
                max(e.finish_time for e in self.events))


#: One glyph per agent function, mirroring Figure 1's color coding.
_GLYPHS = "PWADLOUSRM"


def render_ascii_timeline(events: Iterable[TimelineEvent],
                          n_agents: int,
                          width: int = 100,
                          t0: float | None = None,
                          t1: float | None = None,
                          step_marks: Sequence[float] = ()) -> str:
    """Figure 1 as text: agents as rows, time as columns.

    ``step_marks`` draws the dashed global-synchronization lines of the
    parallel-sync schedule (``|`` columns).
    """
    events = list(events)
    if not events:
        return "(no events)"
    lo = min(e.submit_time for e in events) if t0 is None else t0
    hi = max(e.finish_time for e in events) if t1 is None else t1
    if hi <= lo:
        hi = lo + 1.0
    scale = width / (hi - lo)
    rows = [[" "] * width for _ in range(n_agents)]
    for e in events:
        if e.finish_time < lo or e.submit_time > hi:
            continue
        c0 = max(int((e.submit_time - lo) * scale), 0)
        c1 = min(int((e.finish_time - lo) * scale), width - 1)
        glyph = _GLYPHS[e.func_id % len(_GLYPHS)]
        for c in range(c0, c1 + 1):
            rows[e.agent][c] = glyph
    for mark in step_marks:
        if lo <= mark <= hi:
            c = min(int((mark - lo) * scale), width - 1)
            for row in rows:
                if row[c] == " ":
                    row[c] = "|"
    lines = [f"agent {aid:>4} |{''.join(row)}|"
             for aid, row in enumerate(rows)]
    legend = " ".join(f"{_GLYPHS[i]}={FUNCS[i]}" for i in range(len(FUNCS)))
    header = f"time: {lo:.1f}s .. {hi:.1f}s   ({width} cols)"
    return "\n".join([header, *lines, legend])
