"""AI Metropolis reproduction — out-of-order LLM multi-agent simulation.

Reproduces *AI Metropolis: Scaling Large Language Model-based Multi-Agent
Simulation with Out-of-order Execution* (MLSys 2025) as a self-contained
Python library: the dependency-tracking OOO scheduler itself plus every
substrate its evaluation needs (simulated LLM serving, a GenAgent-style
world, trace generation/replay, a transactional KV store, and a live
threaded engine). See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured numbers.

Quickstart (replay benchmarking, virtual time)::

    from repro import (SchedulerConfig, ServingConfig, cached_day_trace,
                       run_replay)

    trace = cached_day_trace(seed=0)                  # 25-agent day
    result = run_replay(trace,
                        SchedulerConfig(policy="metropolis"),
                        ServingConfig(model="llama3-8b", gpu="l4", dp=4))
    print(result.completion_time, result.achieved_parallelism)

Quickstart (live execution, wall-clock)::

    from repro.live import Environment, EchoLLMClient
    from repro.live.environment import BehaviorProgram
    from repro.world import BehaviorModel, build_smallville, make_personas

    world, homes = build_smallville()
    program = BehaviorProgram(BehaviorModel(
        world, make_personas(10, seed=0, homes=homes), seed=0))
    result = Environment(program, EchoLLMClient()).run(target_step=100)
"""

from .config import (DependencyConfig, OverheadConfig, SchedulerConfig,
                     ServingConfig, SECONDS_PER_STEP, STEPS_PER_DAY,
                     STEPS_PER_HOUR)
from .core import (DependencyRules, SimulationResult, critical_path_time,
                   run_replay)
from .core.engine import critical_time_for
from .errors import (CapacityError, CausalityViolation, ConfigError,
                     ReproError, ScenarioError, SchedulingError,
                     ServingError, TraceError, TransactionError, WorldError)
from .scenarios import (Scenario, ScenarioRegistry, get_scenario,
                        register_scenario, scenario_names)
from .serving import ServingEngine
from .trace import (Trace, cached_day_trace, compute_stats,
                    generate_concatenated_trace, generate_trace, load_trace,
                    save_trace)

__version__ = "0.1.0"

__all__ = [
    "__version__",
    # configuration
    "DependencyConfig", "OverheadConfig", "SchedulerConfig", "ServingConfig",
    "SECONDS_PER_STEP", "STEPS_PER_DAY", "STEPS_PER_HOUR",
    # core API
    "run_replay", "SimulationResult", "DependencyRules",
    "critical_path_time", "critical_time_for",
    # serving
    "ServingEngine",
    # scenarios
    "Scenario", "ScenarioRegistry", "get_scenario", "register_scenario",
    "scenario_names",
    # traces
    "Trace", "generate_trace", "generate_concatenated_trace",
    "cached_day_trace", "compute_stats", "save_trace", "load_trace",
    # errors
    "ReproError", "ConfigError", "SchedulingError", "CausalityViolation",
    "ServingError", "CapacityError", "TransactionError", "TraceError",
    "WorldError", "ScenarioError",
]
