"""Simulated LLM serving engine (SGLang substitute).

The paper replays GenAgent traces against SGLang on NVIDIA L4/A100 GPUs.
This package reproduces the *performance behaviour* that matters to the
scheduling comparison — continuous (iteration-level) batching on top of a
roofline performance model, paged-KV memory admission, priority-aware
queueing, and data-/tensor-parallel deployment — as a deterministic
discrete-event simulation.

Two fidelities are provided and tested against each other:

* ``iteration`` — simulates every decode iteration / prefill burst.
* ``fluid`` — advances an equivalent shared token clock between batch
  composition changes (O(log n) events; used for 1000-agent benches).
"""

from .engine import ServingEngine
from .memory import KV_POLICIES, KVCacheManager
from .metrics import EngineMetrics, RequestRecord
from .perfmodel import PerfModel
from .profiles import (GPUS, MODELS, GpuProfile, ModelProfile,
                       ServingProfile, get_gpu, get_model)
from .request import LLMRequest

__all__ = [
    "ServingEngine",
    "LLMRequest",
    "PerfModel",
    "GpuProfile",
    "ModelProfile",
    "ServingProfile",
    "GPUS",
    "MODELS",
    "get_gpu",
    "get_model",
    "EngineMetrics",
    "RequestRecord",
    "KVCacheManager",
    "KV_POLICIES",
]
