"""Engine-side instrumentation.

The headline metric reproduced from the paper is *achieved parallelism*:
the time-average number of outstanding LLM requests over the execution
(§4.2 reports 0.95 / 1.94 / 3.46 for single-thread / parallel-sync /
metropolis on 8 GPUs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .request import LLMRequest


@dataclass(frozen=True)
class RequestRecord:
    """Immutable completion record for one request."""

    request_id: int
    replica_id: int
    prompt_tokens: int
    output_tokens: int
    priority: float
    submit_time: float
    prefill_start: float
    decode_start: float
    finish_time: float

    @property
    def latency(self) -> float:
        return self.finish_time - self.submit_time

    @property
    def queue_time(self) -> float:
        return self.prefill_start - self.submit_time


@dataclass
class EngineMetrics:
    """Aggregated over the lifetime of one :class:`ServingEngine`."""

    records: list[RequestRecord] = field(default_factory=list)
    total_prompt_tokens: int = 0
    total_output_tokens: int = 0

    _outstanding: int = 0
    _last_change: float = 0.0
    _outstanding_integral: float = 0.0
    first_submit: Optional[float] = None
    last_finish: float = 0.0

    def on_submit(self, now: float, request: LLMRequest) -> None:
        self._advance(now)
        self._outstanding += 1
        if self.first_submit is None:
            self.first_submit = now

    def on_finish(self, now: float, request: LLMRequest) -> None:
        self._advance(now)
        self._outstanding -= 1
        self.total_prompt_tokens += request.prompt_tokens
        self.total_output_tokens += request.output_tokens
        self.last_finish = now
        self.records.append(RequestRecord(
            request_id=request.request_id,
            replica_id=request.replica_id,
            prompt_tokens=request.prompt_tokens,
            output_tokens=request.output_tokens,
            priority=request.priority,
            submit_time=request.submit_time,
            prefill_start=request.prefill_start,
            decode_start=request.decode_start,
            finish_time=request.finish_time,
        ))

    def _advance(self, now: float) -> None:
        self._outstanding_integral += self._outstanding * (now - self._last_change)
        self._last_change = now

    # -- summary ----------------------------------------------------------

    @property
    def completed(self) -> int:
        return len(self.records)

    def achieved_parallelism(self, makespan: Optional[float] = None) -> float:
        """Time-average outstanding requests (§4.2's parallelism metric)."""
        if makespan is None:
            start = self.first_submit or 0.0
            makespan = self.last_finish - start
        if makespan <= 0:
            return 0.0
        return self._outstanding_integral / makespan

    def mean_latency(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.latency for r in self.records) / len(self.records)

    def throughput_tokens_per_s(self) -> float:
        start = self.first_submit or 0.0
        span = self.last_finish - start
        if span <= 0:
            return 0.0
        return (self.total_prompt_tokens + self.total_output_tokens) / span
