"""Continuous-batching replica simulation, in two fidelities.

Both replicas implement the same engine behaviour:

* a waiting queue ordered by ``(priority, arrival)`` — or pure FCFS when
  priority scheduling is off (Table 1 ablation);
* head-of-line admission gated by KV reservation and a running cap;
* prefill bursts that briefly stall the decode batch (non-chunked
  prefill, as in the SGLang version the paper uses);
* iteration-level (continuous) batching for decode.

:class:`IterationReplica` simulates each decode iteration as an event —
exact under the performance model, O(total output tokens) events.

:class:`FluidReplica` exploits that all sequences in a decode batch emit
exactly one token per iteration: a shared *token clock* ``tau`` counts
decode iterations, each running sequence finishes at a fixed
``tau_done = tau_admit + output_tokens``, and real time between batch
composition changes is the closed-form integral of the iteration latency
(linear in the growing KV footprint, hence quadratic in ``tau``). This
gives O(log n) work per request instead of per token and is validated
against :class:`IterationReplica` in the test suite.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Optional

from ..devent import Kernel
from ..errors import ServingError
from .memory import KVCacheManager
from .perfmodel import PerfModel
from .request import LLMRequest, RequestState

_EPS = 1e-9


class _BaseReplica:
    """Shared queueing/admission machinery."""

    def __init__(self, kernel: Kernel, perf: PerfModel, replica_id: int,
                 priority_scheduling: bool = True,
                 max_running_requests: int = 256,
                 on_request_finish: Optional[Callable[[LLMRequest], None]] = None,
                 prefix_cache_hit_rate: float = 0.0,
                 kv_policy: str = "none",
                 distance_fn=None,
                 ) -> None:
        self.kernel = kernel
        self.perf = perf
        self.replica_id = replica_id
        self.priority_scheduling = priority_scheduling
        self.max_running_requests = max_running_requests
        self.on_request_finish = on_request_finish
        self.prefix_cache_hit_rate = prefix_cache_hit_rate
        self.kv = KVCacheManager(perf.kv_capacity_tokens, policy=kv_policy,
                                 distance_fn=distance_fn)
        self._waiting: list[tuple[float, int, LLMRequest]] = []
        self._arrival_seq = 0
        #: running + prefilling + waiting, used by the DP router.
        self.outstanding = 0
        self.busy_time = 0.0

    def _admit(self, request: LLMRequest) -> None:
        """Reserve KV for ``request``; record its warm-prefix tokens."""
        request.cached_prompt_tokens = self.kv.reserve(request)

    def _prefill_duration(self, request: LLMRequest) -> float:
        """Prefill latency, discounted by warm KV and the prefix cache.

        Tokens already resident in the agent's retained KV segment
        (invocation-distance retention) skip prefill entirely; the
        remainder is discounted by the common-prefix cache rate.
        """
        cold = request.prompt_tokens - request.cached_prompt_tokens
        effective = int(cold * (1.0 - self.prefix_cache_hit_rate))
        return self.perf.prefill_time(effective)

    # -- queue ----------------------------------------------------------

    def submit(self, request: LLMRequest) -> None:
        self.kv.check_feasible(request)
        request.submit_time = self.kernel.now
        request.replica_id = self.replica_id
        self._arrival_seq += 1
        key = request.priority if self.priority_scheduling else 0.0
        heapq.heappush(self._waiting, (key, self._arrival_seq, request))
        self.outstanding += 1
        self._on_state_change()

    def _peek_admissible(self) -> Optional[LLMRequest]:
        """Head-of-line request if it can be admitted right now."""
        if not self._waiting:
            return None
        request = self._waiting[0][2]
        if self._num_running() + 1 > self.max_running_requests:
            return None
        if not self.kv.fits(request):
            return None
        return request

    def _pop_waiting(self) -> LLMRequest:
        return heapq.heappop(self._waiting)[2]

    def _finish(self, request: LLMRequest) -> None:
        request.state = RequestState.FINISHED
        request.finish_time = self.kernel.now
        self.kv.release(request)
        if self.kv.policy != "none":
            # Keep the finished context warm for the agent's next call
            # (subject to the retention policy's eviction ordering).
            self.kv.retain(request.agent_id, request.total_tokens,
                           now=self.kernel.now)
        self.outstanding -= 1
        if self.on_request_finish is not None:
            self.on_request_finish(request)
        if request.on_complete is not None:
            # Deliver through the kernel so caller reactions (e.g. the next
            # call in an agent's chain) are ordinary events.
            self.kernel.call_at(self.kernel.now, request.on_complete, request)

    # -- blackout ---------------------------------------------------------

    def drain(self) -> list[LLMRequest]:
        """Crash this replica: return every in-flight request, requeueable.

        Models a replica blackout. Pending kernel events are cancelled
        (a dead replica must not deliver completions), KV reservations
        are released, and every admitted request is reset to ``QUEUED``
        with its warm-prefix credit stripped — on another replica it
        re-prefills cold. Order is deterministic: admitted requests by
        id, then the waiting queue in its scheduling order.
        """
        admitted = self._drain_admitted()
        admitted.sort(key=lambda r: r.request_id)
        waiting = [heapq.heappop(self._waiting)[2] for _ in
                   range(len(self._waiting))]
        for request in admitted:
            self.kv.release(request)
            request.state = RequestState.QUEUED
            request.cached_prompt_tokens = 0
        self.outstanding = 0
        return admitted + waiting

    # -- hooks ------------------------------------------------------------

    def _num_running(self) -> int:
        raise NotImplementedError

    def _on_state_change(self) -> None:
        raise NotImplementedError

    def _drain_admitted(self) -> list[LLMRequest]:
        """Cancel events; return admitted (prefilling+running) requests."""
        raise NotImplementedError

    def idle(self) -> bool:
        raise NotImplementedError


class IterationReplica(_BaseReplica):
    """Exact per-iteration simulation (reference fidelity)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: request -> remaining output tokens
        self._running: dict[LLMRequest, int] = {}
        #: total cached context tokens of the running batch
        self._kv_context = 0.0
        self._event = None
        self._busy_until = 0.0
        #: request currently in its prefill burst (``_event`` holds the
        #: completion event); tracked so a blackout can recover it.
        self._prefilling: Optional[LLMRequest] = None

    def _num_running(self) -> int:
        return len(self._running)

    def idle(self) -> bool:
        return not self._running and not self._waiting

    def _on_state_change(self) -> None:
        if self._event is None:
            self._schedule_next()

    def _schedule_next(self) -> None:
        """Pick the next engine action and schedule its completion."""
        request = self._peek_admissible()
        if request is not None:
            self._pop_waiting()
            self._admit(request)
            request.state = RequestState.PREFILL
            request.prefill_start = self.kernel.now
            duration = self._prefill_duration(request)
            self.busy_time += duration
            self._prefilling = request
            self._event = self.kernel.call_in(
                duration, self._prefill_done, request)
            return
        if self._running:
            batch = len(self._running)
            duration = self.perf.decode_iteration_time(batch, self._kv_context)
            self.busy_time += duration
            self._event = self.kernel.call_in(duration, self._iteration_done)
            return
        self._event = None

    def _prefill_done(self, request: LLMRequest) -> None:
        self._prefilling = None
        request.state = RequestState.DECODE
        request.decode_start = self.kernel.now
        self._running[request] = request.output_tokens
        self._kv_context += request.prompt_tokens
        self._event = None
        self._schedule_next()

    def _iteration_done(self) -> None:
        finished = []
        for request in self._running:
            self._running[request] -= 1
            if self._running[request] == 0:
                finished.append(request)
        self._kv_context += len(self._running)
        for request in finished:
            del self._running[request]
            self._kv_context -= request.total_tokens
            self._finish(request)
        self._event = None
        self._schedule_next()

    def _drain_admitted(self) -> list[LLMRequest]:
        if self._event is not None:
            self._event.cancel()
            self._event = None
        admitted = list(self._running)
        self._running.clear()
        self._kv_context = 0.0
        if self._prefilling is not None:
            admitted.append(self._prefilling)
            self._prefilling = None
        return admitted


class FluidReplica(_BaseReplica):
    """Token-clock simulation, exact at batch-change granularity."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: completion heap: (tau_done, seq, request)
        self._running: list[tuple[float, int, LLMRequest]] = []
        self._run_seq = 0
        self._tau = 0.0
        #: sum of context tokens at the last sync point
        self._kv_context = 0.0
        self._last_sync = 0.0
        self._prefilling: Optional[LLMRequest] = None
        self._event = None
        #: pending prefill-end event (separate from ``_event`` so
        #: ``_reschedule`` never cancels it); a blackout must.
        self._prefill_event = None

    def _num_running(self) -> int:
        return len(self._running) + (1 if self._prefilling is not None else 0)

    def idle(self) -> bool:
        return (not self._running and not self._waiting
                and self._prefilling is None)

    # -- fluid decode dynamics -----------------------------------------

    def _iteration_cost_coeffs(self) -> tuple[float, float, float]:
        """Return (a, kvr, B): iteration time = a + kv * kvr, batch B."""
        B = len(self._running)
        perf = self.perf
        a = perf._overhead + max(perf.weight_read_time(B),
                                 B * perf.token_compute_time)
        return a, perf.kv_read_time_per_token(), B

    def _time_for_dtau(self, dtau: float) -> float:
        """Real seconds to advance the token clock by ``dtau``."""
        a, kvr, B = self._iteration_cost_coeffs()
        # kv grows linearly at rate B per unit tau; integrate a + kv*kvr.
        return dtau * (a + kvr * (self._kv_context + B * dtau / 2.0))

    def _dtau_for_time(self, dt: float) -> float:
        """Inverse of :meth:`_time_for_dtau` (quadratic root)."""
        a, kvr, B = self._iteration_cost_coeffs()
        lin = a + kvr * self._kv_context
        quad = kvr * B / 2.0
        if quad <= _EPS:
            return dt / lin
        disc = lin * lin + 4.0 * quad * dt
        return (-lin + math.sqrt(disc)) / (2.0 * quad)

    def _sync(self) -> None:
        """Advance the token clock to the current instant."""
        now = self.kernel.now
        if self._prefilling is not None or not self._running:
            self._last_sync = now
            return
        dt = now - self._last_sync
        if dt > _EPS:
            dtau = self._dtau_for_time(dt)
            B = len(self._running)
            self._tau += dtau
            self._kv_context += B * dtau
            self.busy_time += dt
        self._last_sync = now

    # -- scheduling ------------------------------------------------------

    def _on_state_change(self) -> None:
        self._sync()
        self._reschedule()

    def _cancel_event(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _reschedule(self) -> None:
        self._cancel_event()
        if self._prefilling is not None:
            # Decode is paused; the pending prefill-end event (scheduled
            # outside ``_event``, so never cancelled here) drives the next
            # action.
            return
        request = self._peek_admissible()
        if request is not None:
            self._pop_waiting()
            self._admit(request)
            request.state = RequestState.PREFILL
            request.prefill_start = self.kernel.now
            self._prefilling = request
            duration = self._prefill_duration(request)
            self.busy_time += duration
            self._prefill_event = self.kernel.call_in(
                duration, self._prefill_done, request)
            return
        if self._running:
            tau_next = self._running[0][0]
            dt = self._time_for_dtau(max(tau_next - self._tau, 0.0))
            self._event = self.kernel.call_in(dt, self._completions_due, tau_next)
        # else: idle

    def _prefill_done(self, request: LLMRequest) -> None:
        self._prefilling = None
        self._prefill_event = None
        self._last_sync = self.kernel.now  # decode resumes now
        request.state = RequestState.DECODE
        request.decode_start = self.kernel.now
        self._run_seq += 1
        heapq.heappush(self._running,
                       (self._tau + request.output_tokens, self._run_seq,
                        request))
        self._kv_context += request.prompt_tokens
        self._reschedule()

    def _completions_due(self, tau_target: float) -> None:
        self._event = None
        # Land exactly on the target to avoid float drift.
        dtau = max(tau_target - self._tau, 0.0)
        self._kv_context += len(self._running) * dtau
        self.busy_time += self.kernel.now - self._last_sync
        self._tau = tau_target
        self._last_sync = self.kernel.now
        while self._running and self._running[0][0] <= self._tau + _EPS:
            _, _, request = heapq.heappop(self._running)
            self._kv_context -= request.total_tokens
            self._finish(request)
        self._reschedule()

    def _drain_admitted(self) -> list[LLMRequest]:
        self._cancel_event()
        if self._prefill_event is not None:
            self._prefill_event.cancel()
            self._prefill_event = None
        admitted = [request for _, _, request in self._running]
        self._running.clear()
        self._kv_context = 0.0
        self._tau = 0.0
        self._last_sync = self.kernel.now
        if self._prefilling is not None:
            admitted.append(self._prefilling)
            self._prefilling = None
        return admitted


def make_replica(fidelity: str, *args, **kwargs) -> _BaseReplica:
    if fidelity == "iteration":
        return IterationReplica(*args, **kwargs)
    if fidelity == "fluid":
        return FluidReplica(*args, **kwargs)
    raise ServingError(f"unknown fidelity {fidelity!r}")
