"""Request objects flowing through the simulated serving engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Optional

from ..errors import ConfigError


class RequestState(Enum):
    QUEUED = "queued"
    PREFILL = "prefill"
    DECODE = "decode"
    FINISHED = "finished"


@dataclass(eq=False)  # identity semantics: requests are unique objects
class LLMRequest:
    """One LLM call.

    In replay mode the output length is known from the trace (the paper
    pins generation length via ``ignore_eos`` for exactly this reason), so
    the engine can simulate the full lifecycle deterministically.

    ``priority`` carries the simulation step of the issuing agent; under
    priority scheduling (§3.5) smaller steps are served first.
    """

    request_id: int
    prompt_tokens: int
    output_tokens: int
    priority: float = 0.0
    #: Called with this request when generation finishes.
    on_complete: Optional[Callable[["LLMRequest"], None]] = None
    #: Opaque payload for callers (e.g. (agent, step, call index)).
    context: Any = None
    #: Issuing agent (-1 = anonymous). Keys per-agent KV retention and
    #: sticky routing; the scheduler's invocation-distance signal is
    #: looked up under this id.
    agent_id: int = -1

    # lifecycle timestamps (virtual seconds), filled by the engine
    submit_time: float = field(default=-1.0, init=False)
    prefill_start: float = field(default=-1.0, init=False)
    decode_start: float = field(default=-1.0, init=False)
    finish_time: float = field(default=-1.0, init=False)
    state: RequestState = field(default=RequestState.QUEUED, init=False)
    #: Replica that served the request.
    replica_id: int = field(default=-1, init=False)
    #: Prompt tokens found warm in the agent's retained KV segment at
    #: admission (prefill is discounted by these; set by the replica).
    cached_prompt_tokens: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.prompt_tokens < 0:
            raise ConfigError("prompt_tokens must be >= 0")
        if self.output_tokens < 1:
            # Every LLM call produces at least one token (even yes/no).
            raise ConfigError("output_tokens must be >= 1")

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.output_tokens

    @property
    def latency(self) -> float:
        if self.finish_time < 0 or self.submit_time < 0:
            raise ConfigError("request not finished")
        return self.finish_time - self.submit_time
