"""Data-parallel serving engine: router + replicas + metrics.

Mirrors the deployment shapes of §4.1: N data-parallel replicas, each a
tensor-parallel group (e.g. 8 L4s = DP8 for Llama-3-8B; 8 A100s = DP2xTP4
for Llama-3-70B; DP4xTP2 for Mixtral-8x7B). Requests are routed to the
replica with the fewest outstanding requests (least-loaded, round-robin on
ties), which is how simple multi-replica LLM deployments balance load.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..config import ServingConfig
from ..devent import Kernel
from .metrics import EngineMetrics
from .perfmodel import PerfModel
from .profiles import get_gpu, get_model
from .replica import make_replica
from .request import LLMRequest


class ServingEngine:
    """The simulated serving deployment seen by scheduler drivers."""

    def __init__(self, kernel: Kernel, config: ServingConfig) -> None:
        self.kernel = kernel
        self.config = config
        self.model = get_model(config.model)
        self.gpu = get_gpu(config.gpu)
        self.perf = PerfModel(
            model=self.model, gpu=self.gpu, tp=config.tp,
            kv_memory_fraction=config.kv_memory_fraction)
        self.metrics = EngineMetrics()
        self.replicas = [
            make_replica(
                config.fidelity, kernel, self.perf, replica_id=i,
                priority_scheduling=config.priority_scheduling,
                max_running_requests=config.max_running_requests,
                on_request_finish=self._record_finish,
                prefix_cache_hit_rate=config.prefix_cache_hit_rate)
            for i in range(config.dp)
        ]
        self._rr = 0
        self._id_counter = 0

    # -- public API -------------------------------------------------------

    def submit(self, request: LLMRequest) -> None:
        """Route a request to the least-loaded replica."""
        self.metrics.on_submit(self.kernel.now, request)
        replica = self._pick_replica()
        replica.submit(request)

    def generate(self, prompt_tokens: int, output_tokens: int,
                 priority: float = 0.0,
                 on_complete: Optional[Callable[[LLMRequest], None]] = None,
                 context=None) -> LLMRequest:
        """Convenience wrapper building and submitting a request."""
        request = LLMRequest(
            request_id=self._next_id(), prompt_tokens=prompt_tokens,
            output_tokens=output_tokens, priority=priority,
            on_complete=on_complete, context=context)
        self.submit(request)
        return request

    def idle(self) -> bool:
        return all(r.idle() for r in self.replicas)

    @property
    def kv_capacity_tokens(self) -> int:
        return self.perf.kv_capacity_tokens

    def busy_fraction(self, makespan: float) -> float:
        """Mean replica busy-time share of the run (GPU utilization proxy)."""
        if makespan <= 0:
            return 0.0
        total = sum(r.busy_time for r in self.replicas)
        return total / (len(self.replicas) * makespan)

    # -- internals -------------------------------------------------------

    def _next_id(self) -> int:
        self._id_counter += 1
        return self._id_counter

    def _pick_replica(self):
        best = None
        best_key = None
        n = len(self.replicas)
        for offset in range(n):
            replica = self.replicas[(self._rr + offset) % n]
            key = replica.outstanding
            if best_key is None or key < best_key:
                best, best_key = replica, key
        self._rr = (self._rr + 1) % n
        return best

    def _record_finish(self, request: LLMRequest) -> None:
        self.metrics.on_finish(self.kernel.now, request)
