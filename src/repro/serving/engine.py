"""Data-parallel serving engine: router + replicas + metrics.

Mirrors the deployment shapes of §4.1: N data-parallel replicas, each a
tensor-parallel group (e.g. 8 L4s = DP8 for Llama-3-8B; 8 A100s = DP2xTP4
for Llama-3-70B; DP4xTP2 for Mixtral-8x7B). Requests are routed to the
replica with the fewest outstanding requests (least-loaded, round-robin on
ties). When KV retention is on, routing is *sticky*: an agent whose warm
KV segment lives on some replica is routed back to it, so the retained
pages actually get hit.

The engine is scheduler-aware: drivers install a *distance provider*
(:meth:`set_distance_provider`) mapping agent id -> predicted steps until
the agent's next LLM call, which the per-replica
:class:`~repro.serving.memory.KVCacheManager` uses as its eviction key,
and hand whole dispatched clusters over in one
:meth:`generate_batch` / :meth:`prefetch` call per round.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from ..config import ServingConfig
from ..devent import Kernel
from ..errors import ServingError
from .metrics import EngineMetrics
from .perfmodel import PerfModel
from .profiles import get_gpu, get_model
from .replica import make_replica
from .request import LLMRequest

#: One cluster-batch entry: (agent_id, prompt, output, priority,
#: on_complete, context).
BatchSpec = tuple


class ServingEngine:
    """The simulated serving deployment seen by scheduler drivers."""

    def __init__(self, kernel: Kernel, config: ServingConfig) -> None:
        self.kernel = kernel
        self.config = config
        self.model = get_model(config.model)
        self.gpu = get_gpu(config.gpu)
        self.perf = PerfModel(
            model=self.model, gpu=self.gpu, tp=config.tp,
            kv_memory_fraction=config.kv_memory_fraction)
        self.metrics = EngineMetrics()
        self._distance_provider: Optional[Callable[[int], float]] = None
        self.replicas = [
            make_replica(
                config.fidelity, kernel, self.perf, replica_id=i,
                priority_scheduling=config.priority_scheduling,
                max_running_requests=config.max_running_requests,
                on_request_finish=self._record_finish,
                prefix_cache_hit_rate=config.prefix_cache_hit_rate,
                kv_policy=config.kv_policy,
                distance_fn=self._agent_distance)
            for i in range(config.dp)
        ]
        self._rr = 0
        self._id_counter = 0
        # Blackout accounting: counters of dead replicas are carried so
        # engine-level stats span the whole run, not just the survivors.
        self._carry_busy_time = 0.0
        self._carry_kv_stats: dict[str, int] = {}
        self.replica_blackouts = 0
        self.rerouted_requests = 0
        self.lost_retained_tokens = 0

    # -- scheduler wiring -------------------------------------------------

    def set_distance_provider(self,
                              fn: Optional[Callable[[int], float]]) -> None:
        """Install the scheduler's invocation-distance signal.

        ``fn(agent_id)`` returns the predicted number of virtual steps
        until that agent's next LLM dispatch (0 = running/dispatchable
        now). The KV managers consult it lazily at eviction time, so
        the values are always current.
        """
        self._distance_provider = fn

    def _agent_distance(self, agent_id: int) -> float:
        if self._distance_provider is None:
            return 0.0
        return self._distance_provider(agent_id)

    # -- public API -------------------------------------------------------

    def submit(self, request: LLMRequest) -> None:
        """Route a request (sticky to retained KV, else least-loaded)."""
        self.metrics.on_submit(self.kernel.now, request)
        replica = self._pick_replica(request.agent_id)
        replica.submit(request)

    def generate(self, prompt_tokens: int, output_tokens: int,
                 priority: float = 0.0,
                 on_complete: Optional[Callable[[LLMRequest], None]] = None,
                 context=None, agent_id: int = -1) -> LLMRequest:
        """Convenience wrapper building and submitting a request."""
        request = LLMRequest(
            request_id=self._next_id(), prompt_tokens=prompt_tokens,
            output_tokens=output_tokens, priority=priority,
            on_complete=on_complete, context=context, agent_id=agent_id)
        self.submit(request)
        return request

    def generate_batch(self,
                       specs: Sequence[BatchSpec]) -> list[LLMRequest]:
        """Submit one dispatch round's calls in a single engine call.

        ``specs`` is ``(agent_id, prompt, output, priority, on_complete,
        context)`` per call, in cluster member order — the whole-cluster
        handoff used by the replay/live drivers. Submission order (and
        hence arrival sequence on each replica) matches an equivalent
        sequence of :meth:`generate` calls exactly.
        """
        out = []
        for agent_id, prompt, output, priority, on_complete, context in specs:
            out.append(self.generate(
                prompt_tokens=prompt, output_tokens=output,
                priority=priority, on_complete=on_complete,
                context=context, agent_id=agent_id))
        return out

    def prefetch(self, agent_ids: Iterable[int]) -> int:
        """Pin retained KV of agents the scheduler just dispatched.

        Their calls are imminent, so their warm segments should not be
        evicted on behalf of further-away agents. No-op (returns 0)
        when retention is off.
        """
        if self.config.kv_policy == "none":
            return 0
        ids = list(agent_ids)
        return sum(replica.kv.pin(ids) for replica in self.replicas)

    def idle(self) -> bool:
        return all(r.idle() for r in self.replicas)

    def spec_slack(self, fraction: float = 1.0) -> int:
        """Concurrent-request headroom under the decode saturation knee.

        Decode is memory-bandwidth bound until the batch reaches
        :meth:`PerfModel.saturation_batch_size`: below the knee an extra
        sequence shares the weight-streaming cost, above it every one
        adds compute time that delays the foreground critical path. The
        speculative scheduler spends this headroom like a budget — its
        background chains are only ~free while the engine stays in the
        bandwidth-bound regime, so launches stop when the knee is
        reached (per replica; an overloaded replica contributes zero,
        it cannot lend another's slack). ``fraction`` scales the knee:
        even bandwidth-bound sequences tax every iteration with their
        KV reads, so callers hiding latency (rather than chasing
        utilization) should stop well short of the flip point.
        """
        knee = int(self.perf.saturation_batch_size() * fraction)
        free = 0
        for r in self.replicas:
            if r.outstanding < knee:
                free += knee - r.outstanding
        return free

    @property
    def kv_capacity_tokens(self) -> int:
        return self.perf.kv_capacity_tokens

    def busy_fraction(self, makespan: float) -> float:
        """Mean replica busy-time share of the run (GPU utilization proxy)."""
        if not self.replicas:
            raise ServingError(
                "serving engine has no replicas (dp=0?); busy_fraction "
                "is undefined on an empty deployment")
        if makespan <= 0:
            return 0.0
        total = self._carry_busy_time \
            + sum(r.busy_time for r in self.replicas)
        return total / (len(self.replicas) * makespan)

    def kv_stats(self) -> dict[str, int]:
        """KV retention counters summed across replicas (dead included)."""
        totals = dict(self._carry_kv_stats)
        for replica in self.replicas:
            for key, value in replica.kv.stats().items():
                totals[key] = totals.get(key, 0) + value
        # A fresh post-blackout replica starts with zero retained
        # tokens, so the carried (pre-crash) gauge must not be summed
        # in as if those tokens were still resident.
        totals["retained_tokens"] = sum(
            r.kv.retained_tokens for r in self.replicas)
        return totals

    def fault_stats(self) -> dict[str, int]:
        """Blackout accounting for the driver's stats record."""
        return {
            "replica_blackouts": self.replica_blackouts,
            "rerouted_requests": self.rerouted_requests,
            "lost_retained_tokens": self.lost_retained_tokens,
        }

    # -- fault injection --------------------------------------------------

    def blackout_replica(self, replica_id: int) -> int:
        """Crash replica ``replica_id``; reroute its in-flight requests.

        Models a replica failure mid-run: every retained KV segment on
        the replica is lost (its sticky-routed agents re-prefill cold
        elsewhere), in-flight and queued requests are re-routed to the
        surviving replicas — re-prefilled from scratch, their reserved
        KV re-acquired at the new home — and a fresh replica object
        replaces the dead one (the recovered instance joins the DP
        group empty, as a restarted engine process would). Returns the
        number of requests rerouted.
        """
        n = len(self.replicas)
        if not 0 <= replica_id < n:
            raise ServingError(
                f"cannot blackout replica {replica_id}: deployment has "
                f"{n} replicas")
        dead = self.replicas[replica_id]
        orphans = dead.drain()
        self.lost_retained_tokens += dead.kv.drop_all_retained()
        self._carry_busy_time += dead.busy_time
        for key, value in dead.kv.stats().items():
            self._carry_kv_stats[key] = \
                self._carry_kv_stats.get(key, 0) + value
        self.replicas[replica_id] = make_replica(
            self.config.fidelity, self.kernel, self.perf,
            replica_id=replica_id,
            priority_scheduling=self.config.priority_scheduling,
            max_running_requests=self.config.max_running_requests,
            on_request_finish=self._record_finish,
            prefix_cache_hit_rate=self.config.prefix_cache_hit_rate,
            kv_policy=self.config.kv_policy,
            distance_fn=self._agent_distance)
        self.replica_blackouts += 1
        for request in orphans:
            # Internal re-route: the request was already counted by
            # metrics.on_submit at original submission, so route
            # straight to a replica (sticky KV on the dead replica is
            # gone; survivors' retained segments still attract).
            self._pick_replica(request.agent_id).submit(request)
        self.rerouted_requests += len(orphans)
        return len(orphans)

    # -- internals -------------------------------------------------------

    def _next_id(self) -> int:
        self._id_counter += 1
        return self._id_counter

    def _pick_replica(self, agent_id: int = -1):
        n = len(self.replicas)
        if n == 0:
            raise ServingError(
                "serving engine has no replicas (dp=0?); cannot route "
                "requests on an empty deployment")
        if self.config.kv_policy != "none" and agent_id >= 0:
            for replica in self.replicas:
                if replica.kv.has_retained(agent_id):
                    return replica
        best = None
        best_key = None
        for offset in range(n):
            replica = self.replicas[(self._rr + offset) % n]
            key = replica.outstanding
            if best_key is None or key < best_key:
                best, best_key = replica, key
        self._rr = (self._rr + 1) % n
        return best

    def _record_finish(self, request: LLMRequest) -> None:
        self.metrics.on_finish(self.kernel.now, request)
