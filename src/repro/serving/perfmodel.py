"""Roofline performance model for one (model, GPU, TP) replica.

The model captures the two regimes that drive the paper's results:

* **decode** is memory-bandwidth bound at the batch sizes simulations
  reach — every iteration streams the weights (plus the KV cache of all
  running sequences) from HBM, so iteration latency is nearly flat in the
  batch size until the compute roofline is reached. This is why raising
  the number of concurrent requests (what AI Metropolis does) converts
  almost directly into throughput.
* **prefill** is compute bound and proportional to prompt length.

Iteration latency for a decode batch of size B with ``kv_tokens`` total
cached context::

    t = overhead(tp) + max(weight_read, B * token_compute) + kv_read

where ``weight_read = W_eff(B) / (MBU * BW * tp)`` (tensor parallelism
shards both weights and KV across ranks), ``token_compute =
2 * params_active / (MFU * FLOPS * tp)``, and ``kv_read = kv_tokens *
kv_bytes_per_token / (MBU * BW * tp)``.

Prefill of P tokens costs ``overhead(tp) + 2 * params_active * P /
(MFU_prefill * FLOPS * tp)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from .profiles import GpuProfile, ModelProfile

#: Model FLOPs utilization during decode (small batches, bandwidth bound).
MFU_DECODE = 0.45
#: Model FLOPs utilization during prefill (large GEMMs).
MFU_PREFILL = 0.55
#: Memory-bandwidth utilization.
MBU = 0.80


@dataclass(frozen=True)
class PerfModel:
    """Analytic latency model for one tensor-parallel replica."""

    model: ModelProfile
    gpu: GpuProfile
    tp: int = 1
    kv_memory_fraction: float = 0.9

    def __post_init__(self) -> None:
        if self.tp < 1:
            raise ConfigError(f"tp must be >= 1, got {self.tp}")
        if self.weight_bytes_per_gpu > self.gpu.mem_bytes:
            raise ConfigError(
                f"{self.model.name} does not fit on {self.tp}x "
                f"{self.gpu.name}: needs {self.weight_bytes_per_gpu / 1e9:.1f} "
                f"GB/GPU of {self.gpu.mem_bytes / 1e9:.1f} GB")

    # -- capacity -------------------------------------------------------

    @property
    def weight_bytes_per_gpu(self) -> float:
        return self.model.weight_bytes / self.tp

    @property
    def kv_capacity_tokens(self) -> int:
        """Tokens of KV cache the replica can hold across its TP group."""
        free = self.tp * self.gpu.mem_bytes - self.model.weight_bytes
        usable = free * self.kv_memory_fraction
        return max(int(usable / self.model.kv_bytes_per_token), 0)

    # -- latency -----------------------------------------------------------

    @property
    def _overhead(self) -> float:
        extra = self.gpu.tp_sync_overhead * (self.tp - 1)
        return self.gpu.kernel_overhead + extra

    @property
    def _bw(self) -> float:
        return MBU * self.gpu.hbm_bw * self.tp

    @property
    def _flops(self) -> float:
        return self.gpu.flops_fp16 * self.tp

    @property
    def token_compute_time(self) -> float:
        """Seconds of compute per decoded token (per batch element)."""
        return 2.0 * self.model.params_active / (MFU_DECODE * self._flops)

    def weight_read_time(self, batch_size: float) -> float:
        """Seconds to stream the (effective) weights once."""
        return self.model.effective_weight_bytes(batch_size) / self._bw

    def kv_read_time_per_token(self) -> float:
        """Seconds of HBM traffic per cached context token per iteration."""
        return self.model.kv_bytes_per_token / self._bw

    def decode_iteration_time(self, batch_size: int, kv_tokens: float) -> float:
        """Latency of one decode iteration (1 new token per sequence)."""
        if batch_size <= 0:
            raise ConfigError("decode iteration needs batch_size >= 1")
        body = max(self.weight_read_time(batch_size),
                   batch_size * self.token_compute_time)
        return self._overhead + body + kv_tokens * self.kv_read_time_per_token()

    def prefill_time(self, prompt_tokens: int) -> float:
        """Latency to prefill a prompt of ``prompt_tokens``."""
        if prompt_tokens < 0:
            raise ConfigError("prompt_tokens must be >= 0")
        compute = (2.0 * self.model.params_active * prompt_tokens
                   / (MFU_PREFILL * self._flops))
        return self._overhead + compute

    # -- convenience ------------------------------------------------------

    def request_service_time(self, prompt_tokens: int,
                             output_tokens: int,
                             batch_size: int = 1,
                             avg_context: float | None = None) -> float:
        """Approximate end-to-end service time of one request executed in a
        steady batch of ``batch_size`` (used for critical-path bounds)."""
        if avg_context is None:
            avg_context = prompt_tokens + output_tokens / 2.0
        it = self.decode_iteration_time(batch_size,
                                        kv_tokens=batch_size * avg_context)
        return self.prefill_time(prompt_tokens) + output_tokens * it

    def saturation_batch_size(self) -> float:
        """Batch size where decode flips from bandwidth- to compute-bound."""
        return self.weight_read_time(1e9) / self.token_compute_time
