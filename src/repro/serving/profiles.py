"""Hardware and model profiles used by the performance model.

Constants are public datasheet numbers; effective utilization factors
(model FLOPs utilization, memory-bandwidth utilization) live in
:mod:`repro.serving.perfmodel`. The three models and two GPUs below are
exactly the configurations benchmarked in the paper (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class GpuProfile:
    """A GPU SKU."""

    name: str
    #: Device memory in bytes.
    mem_bytes: float
    #: HBM/GDDR bandwidth in bytes/second (peak).
    hbm_bw: float
    #: Dense fp16/bf16 throughput in FLOP/s (peak, no sparsity).
    flops_fp16: float
    #: Fixed per-iteration launch/sync overhead in seconds.
    kernel_overhead: float
    #: Additional per-iteration cost per tensor-parallel rank beyond the
    #: first (allreduce latency), seconds.
    tp_sync_overhead: float


@dataclass(frozen=True)
class ModelProfile:
    """An LLM architecture, sized for fp16 weights.

    ``params_active`` differs from ``params_total`` only for MoE models:
    it is the parameter count touched per token (attention + shared parts
    + top-k experts).
    """

    name: str
    params_total: float
    params_active: float
    n_layers: int
    n_kv_heads: int
    head_dim: int
    #: Parameters that are read for every token regardless of routing
    #: (attention, embeddings, norms). Equal to ``params_total`` for dense.
    params_nonexpert: float
    #: Number of experts (1 for dense models).
    n_experts: int = 1
    #: Experts activated per token (1 for dense models).
    top_k: int = 1

    @property
    def weight_bytes(self) -> float:
        return 2.0 * self.params_total  # fp16

    @property
    def kv_bytes_per_token(self) -> float:
        # K and V, fp16.
        return 2.0 * self.n_layers * self.n_kv_heads * self.head_dim * 2.0

    @property
    def is_moe(self) -> bool:
        return self.n_experts > 1

    def expert_utilization(self, batch_size: float) -> float:
        """Expected fraction of expert weights touched by a decode batch.

        With ``top_k`` of ``n_experts`` experts sampled per token, a batch
        of B tokens leaves an expert untouched with probability
        ``(1 - top_k/n_experts)**B``.
        """
        if not self.is_moe:
            return 1.0
        miss = (1.0 - self.top_k / self.n_experts) ** max(batch_size, 0.0)
        return 1.0 - miss

    def effective_weight_bytes(self, batch_size: float) -> float:
        """Bytes of weights streamed per decode iteration for batch B."""
        if not self.is_moe:
            return self.weight_bytes
        expert_params = self.params_total - self.params_nonexpert
        util = self.expert_utilization(batch_size)
        return 2.0 * (self.params_nonexpert + expert_params * util)


@dataclass(frozen=True)
class ServingProfile:
    """A scenario's declared serving-side workload shape.

    Each registered world carries one of these (see
    :class:`repro.scenarios.base.Scenario`), so end-to-end benches know
    which deployment to simulate and what token traffic to expect
    without re-measuring the trace.
    """

    #: Platform key from :data:`repro.bench.runner.PLATFORMS`.
    platform: str = "l4-8b"
    #: Total GPUs for the deployment (split into dp x tp by the runner).
    gpus: int = 1
    #: Replica fidelity for end-to-end runs.
    fidelity: str = "fluid"
    #: Expected mean prompt / output tokens per call for this world's
    #: behaviour model (documentation + sanity checks, not a control).
    mean_prompt_tokens: float = 640.0
    mean_output_tokens: float = 22.0
    #: ``kv_memory_fraction`` for the KV-constrained bench cell — small
    #: enough that retained segments compete for space and the eviction
    #: policy matters.
    kv_pressure_fraction: float = 0.06
    description: str = ""


GPUS: dict[str, GpuProfile] = {
    "l4": GpuProfile(
        name="NVIDIA L4",
        mem_bytes=24e9,
        hbm_bw=300e9,
        flops_fp16=121e12,
        kernel_overhead=4e-3,
        tp_sync_overhead=1.5e-3,
    ),
    "a100": GpuProfile(
        name="NVIDIA A100-80GB",
        mem_bytes=80e9,
        hbm_bw=2039e9,
        flops_fp16=312e12,
        kernel_overhead=3e-3,
        tp_sync_overhead=1.0e-3,
    ),
}

MODELS: dict[str, ModelProfile] = {
    "llama3-8b": ModelProfile(
        name="Llama-3-8B-Instruct",
        params_total=8.03e9,
        params_active=8.03e9,
        n_layers=32,
        n_kv_heads=8,
        head_dim=128,
        params_nonexpert=8.03e9,
    ),
    "llama3-70b": ModelProfile(
        name="Llama-3-70B-Instruct",
        params_total=70.6e9,
        params_active=70.6e9,
        n_layers=80,
        n_kv_heads=8,
        head_dim=128,
        params_nonexpert=70.6e9,
    ),
    "mixtral-8x7b": ModelProfile(
        name="Mixtral-8x7B-Instruct-v0.1",
        params_total=46.7e9,
        params_active=12.9e9,
        n_layers=32,
        n_kv_heads=8,
        head_dim=128,
        # attention + embeddings + norms: always streamed
        params_nonexpert=2.3e9,
        n_experts=8,
        top_k=2,
    ),
}


def get_gpu(name: str) -> GpuProfile:
    try:
        return GPUS[name]
    except KeyError:
        raise ConfigError(
            f"unknown GPU {name!r}; available: {sorted(GPUS)}") from None


def get_model(name: str) -> ModelProfile:
    try:
        return MODELS[name]
    except KeyError:
        raise ConfigError(
            f"unknown model {name!r}; available: {sorted(MODELS)}") from None
