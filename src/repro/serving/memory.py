"""KV-cache memory accounting for one replica.

Follows the reservation discipline of paged-attention engines in replay
mode: because the output length of every request is known (``ignore_eos``),
the full ``prompt + output`` token footprint is reserved at admission, so
no running request can be preempted by an out-of-memory condition
mid-generation. Admission is head-of-line: if the next request does not
fit, the replica waits for completions (matching vLLM/SGLang's FCFS
waiting-queue behaviour).
"""

from __future__ import annotations

from ..errors import CapacityError
from .request import LLMRequest


class KVCacheManager:
    """Token-granular KV cache reservation tracker."""

    def __init__(self, capacity_tokens: int) -> None:
        if capacity_tokens <= 0:
            raise CapacityError(
                f"replica has no KV capacity ({capacity_tokens} tokens); "
                "model does not leave room for cache on this hardware")
        self.capacity_tokens = int(capacity_tokens)
        self.reserved_tokens = 0
        self._reservations: dict[int, int] = {}

    def fits(self, request: LLMRequest) -> bool:
        """Whether ``request`` can be admitted right now."""
        return self.reserved_tokens + request.total_tokens <= self.capacity_tokens

    def check_feasible(self, request: LLMRequest) -> None:
        """Raise if ``request`` could never fit even on an idle replica."""
        if request.total_tokens > self.capacity_tokens:
            raise CapacityError(
                f"request {request.request_id} needs {request.total_tokens} "
                f"KV tokens, capacity is {self.capacity_tokens}")

    def reserve(self, request: LLMRequest) -> None:
        if not self.fits(request):
            raise CapacityError(
                f"admitting request {request.request_id} would exceed "
                f"KV capacity")
        if request.request_id in self._reservations:
            raise CapacityError(
                f"request {request.request_id} already reserved")
        self._reservations[request.request_id] = request.total_tokens
        self.reserved_tokens += request.total_tokens

    def release(self, request: LLMRequest) -> None:
        tokens = self._reservations.pop(request.request_id, None)
        if tokens is None:
            raise CapacityError(
                f"request {request.request_id} was not reserved")
        self.reserved_tokens -= tokens

    @property
    def utilization(self) -> float:
        return self.reserved_tokens / self.capacity_tokens
