"""KV-cache memory accounting for one replica.

Follows the reservation discipline of paged-attention engines in replay
mode: because the output length of every request is known (``ignore_eos``),
the full ``prompt + output`` token footprint is reserved at admission, so
no running request can be preempted by an out-of-memory condition
mid-generation. Admission is head-of-line: if the next request does not
fit, the replica waits for completions (matching vLLM/SGLang's FCFS
waiting-queue behaviour).

On top of the hard reservations sits an optional *retention* layer for
agent-simulation workloads: when a request finishes, its KV pages can be
kept as an idle per-agent segment instead of being freed, so the agent's
next call prefills only the prompt delta. Retained segments are always
evictable — they never block admission — and the eviction order is the
policy under test:

* ``lru`` evicts the segment idle the longest (what a generic serving
  stack would do);
* ``distance`` evicts the agent whose next LLM call is predicted to be
  furthest away in virtual time — the *invocation distance* that the
  OOO scheduler's dependency graph already computes from pair wake
  steps (ScaleSim's signal, driven here by AI Metropolis's graph).

``none`` (the default) disables retention entirely and reproduces the
seed engine's behaviour bit-for-bit.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..errors import CapacityError, ServingError
from .request import LLMRequest

#: Recognized retention policies.
KV_POLICIES = ("none", "lru", "distance")

#: Maps an agent id to its predicted steps-until-next-dispatch.
DistanceFn = Callable[[int], float]


class _Segment:
    """One agent's idle KV pages kept warm between calls."""

    __slots__ = ("agent_id", "tokens", "last_use", "pinned")

    def __init__(self, agent_id: int, tokens: int, last_use: float) -> None:
        self.agent_id = agent_id
        self.tokens = tokens
        self.last_use = last_use
        #: Pinned segments belong to agents the scheduler just
        #: dispatched (prefetch); they are evicted only under duress.
        self.pinned = False


class KVCacheManager:
    """Token-granular KV cache tracker: reservations + retained segments.

    Invariant: ``reserved_tokens + retained_tokens <= capacity_tokens``.
    Reservations are hard (running requests); retained segments are soft
    and evicted on demand, so :meth:`fits` ignores them — admission
    semantics are identical to a retention-free cache.
    """

    def __init__(self, capacity_tokens: int, policy: str = "none",
                 distance_fn: Optional[DistanceFn] = None) -> None:
        if capacity_tokens <= 0:
            raise CapacityError(
                f"replica has no KV capacity ({capacity_tokens} tokens); "
                "model does not leave room for cache on this hardware")
        if policy not in KV_POLICIES:
            raise ServingError(
                f"unknown KV retention policy {policy!r}; "
                f"expected one of {KV_POLICIES}")
        self.capacity_tokens = int(capacity_tokens)
        self.policy = policy
        self.distance_fn = distance_fn
        self.reserved_tokens = 0
        self._reservations: dict[int, int] = {}
        #: agent_id -> idle segment (insertion-ordered).
        self._retained: dict[int, _Segment] = {}
        self.retained_tokens = 0
        # -- counters (exposed via :meth:`stats`) --
        self.hits = 0
        self.misses = 0
        self.hit_tokens = 0
        self.evictions = 0
        #: Evictions that had to sacrifice a pinned (just-dispatched)
        #: segment because nothing unpinned was left.
        self.forced_evictions = 0
        self.retain_rejects = 0
        self.prefetch_pins = 0

    # -- admission (unchanged semantics) --------------------------------

    def fits(self, request: LLMRequest) -> bool:
        """Whether ``request`` can be admitted right now.

        Retained segments do not count against admission: they are
        evicted as needed inside :meth:`reserve`.
        """
        return self.reserved_tokens + request.total_tokens <= self.capacity_tokens

    def check_feasible(self, request: LLMRequest) -> None:
        """Raise if ``request`` could never fit even on an idle replica."""
        if request.total_tokens > self.capacity_tokens:
            raise CapacityError(
                f"request {request.request_id} needs {request.total_tokens} "
                f"KV tokens, capacity is {self.capacity_tokens}")

    def reserve(self, request: LLMRequest) -> int:
        """Reserve the request's full footprint; return warm prompt tokens.

        If the issuing agent has a retained segment it is consumed
        (hit): up to ``prompt_tokens`` of it count as already-cached
        prefill. Retained segments of *other* agents are evicted as
        needed to honour the capacity invariant.
        """
        if not self.fits(request):
            raise CapacityError(
                f"admitting request {request.request_id} would exceed "
                f"KV capacity")
        if request.request_id in self._reservations:
            raise CapacityError(
                f"request {request.request_id} already reserved")
        cached = 0
        if self.policy != "none" and request.agent_id >= 0:
            seg = self._retained.pop(request.agent_id, None)
            if seg is not None:
                self.retained_tokens -= seg.tokens
                cached = min(seg.tokens, request.prompt_tokens)
                self.hits += 1
                self.hit_tokens += cached
            else:
                self.misses += 1
        self._reservations[request.request_id] = request.total_tokens
        self.reserved_tokens += request.total_tokens
        self._evict_down_to(self.capacity_tokens - self.reserved_tokens)
        return cached

    def release(self, request: LLMRequest) -> None:
        tokens = self._reservations.pop(request.request_id, None)
        if tokens is None:
            raise CapacityError(
                f"request {request.request_id} was not reserved")
        self.reserved_tokens -= tokens

    # -- retention -------------------------------------------------------

    def has_retained(self, agent_id: int) -> bool:
        return agent_id in self._retained

    def retain(self, agent_id: int, tokens: int, now: float) -> bool:
        """Keep ``tokens`` KV pages warm for ``agent_id`` after a finish.

        Room is made only by evicting segments that score strictly
        worse under the active policy than the candidate would; if that
        is not enough the candidate is rejected (counted), never
        force-fitted.
        """
        if self.policy == "none" or agent_id < 0 or tokens <= 0:
            return False
        prev = self._retained.pop(agent_id, None)
        if prev is not None:
            self.retained_tokens -= prev.tokens
        free = (self.capacity_tokens - self.reserved_tokens
                - self.retained_tokens)
        if tokens > free:
            cand = _Segment(agent_id, tokens, now)
            while tokens > free:
                victim = self._pick_victim(worse_than=cand)
                if victim is None:
                    self.retain_rejects += 1
                    return False
                self._evict(victim)
                free = (self.capacity_tokens - self.reserved_tokens
                        - self.retained_tokens)
        seg = _Segment(agent_id, tokens, now)
        self._retained[agent_id] = seg
        self.retained_tokens += tokens
        return True

    def pin(self, agent_ids: Iterable[int]) -> int:
        """Pin retained segments of agents about to be dispatched.

        The scheduler calls this when it launches a cluster: those
        agents' next calls are imminent (invocation distance ~0), so
        their warm KV should survive until the hit. Returns the number
        of segments newly pinned.
        """
        pinned = 0
        for aid in agent_ids:
            seg = self._retained.get(aid)
            if seg is not None and not seg.pinned:
                seg.pinned = True
                self.prefetch_pins += 1
                pinned += 1
        return pinned

    # -- eviction --------------------------------------------------------

    def _distance(self, agent_id: int) -> float:
        if self.distance_fn is None:
            return 0.0
        return self.distance_fn(agent_id)

    def _score(self, seg: _Segment) -> tuple[float, float]:
        """Eviction key — the *largest* score is evicted first."""
        if self.policy == "distance":
            # Furthest next invocation goes first; LRU breaks ties.
            return (self._distance(seg.agent_id), -seg.last_use)
        # LRU: oldest last_use goes first.
        return (-seg.last_use, 0.0)

    def _pick_victim(self, worse_than: Optional[_Segment] = None):
        """Best eviction candidate, or ``None`` if nothing qualifies.

        Unpinned segments are considered first; pinned segments only
        when no unpinned one exists (a *forced* eviction). When
        ``worse_than`` is given, only segments scoring strictly worse
        than it qualify — retention never displaces better-placed KV.
        """
        if not self._retained:
            return None
        unpinned = [s for s in self._retained.values() if not s.pinned]
        pool = unpinned or list(self._retained.values())
        victim = max(pool, key=self._score)
        if worse_than is not None and not (
                self._score(victim) > self._score(worse_than)):
            return None
        return victim

    def _evict(self, seg: _Segment) -> None:
        del self._retained[seg.agent_id]
        self.retained_tokens -= seg.tokens
        self.evictions += 1
        if seg.pinned:
            self.forced_evictions += 1

    def drop_all_retained(self) -> int:
        """Blackout hook: lose every retained segment; return tokens lost.

        Models a replica crash — soft (retained) KV is gone, so every
        sticky-routed agent re-prefills cold on its next call. Counted
        separately from policy evictions: losing cache to a crash says
        nothing about the retention policy's quality.
        """
        lost = self.retained_tokens
        self._retained.clear()
        self.retained_tokens = 0
        return lost

    def _evict_down_to(self, budget: int) -> None:
        """Shrink retained footprint to at most ``budget`` tokens."""
        while self.retained_tokens > budget:
            victim = self._pick_victim()
            if victim is None:  # pragma: no cover - invariant guard
                raise CapacityError("retained KV exceeds budget with "
                                    "nothing evictable")
            self._evict(victim)

    # -- reporting -------------------------------------------------------

    @property
    def utilization(self) -> float:
        return self.reserved_tokens / self.capacity_tokens

    @property
    def retained_fraction(self) -> float:
        return self.retained_tokens / self.capacity_tokens

    def stats(self) -> dict[str, int]:
        """Counters for the bench report (per replica, summed upstream)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_tokens": self.hit_tokens,
            "evictions": self.evictions,
            "forced_evictions": self.forced_evictions,
            "retain_rejects": self.retain_rejects,
            "prefetch_pins": self.prefetch_pins,
            "retained_tokens": self.retained_tokens,
        }
