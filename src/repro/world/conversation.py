"""Dyadic conversation state.

Conversations reproduce GenAgent's structure faithfully because it is the
single biggest influence on scheduling: when two agents meet, the *whole*
dialogue is generated turn-by-turn as one long chain of LLM calls within
the step where they meet (the original implementation drives both sides'
utterances from one loop), and the participants then stay "in
conversation" — frozen in place, issuing no further calls — for the
simulated duration of the chat. Those long single-step chains are the
stragglers that collapse lock-step parallelism in the busy hour (§2.2),
and the frozen pair is a real inter-agent dependency the OOO scheduler
must respect (they stay within coupling range the whole time).

State is stored symmetrically on both agents (no shared object), so a
scheduler that executes the pair inside one cluster updates it without
touching anything outside the cluster.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ConvState:
    """One participant's view of an ongoing conversation."""

    partner: int
    #: Steps the participant remains engaged (frozen in place).
    freeze_left: int

    def tick(self) -> bool:
        """Advance one step; True when the conversation has ended."""
        self.freeze_left -= 1
        return self.freeze_left <= 0
