"""Mutable per-agent simulation state."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .conversation import ConvState
from .memory_stream import MemoryStream
from .persona import Persona


@dataclass
class AgentState:
    """Everything that changes about an agent as the world advances."""

    persona: Persona
    pos: tuple[int, int]
    #: Venue name the agent is currently headed to (None when settled).
    target_venue: Optional[str] = None
    #: Tile within the target venue the agent walks toward.
    target_tile: Optional[tuple[int, int]] = None
    awake: bool = False
    #: Activity label from the persona schedule (for the timeline legend).
    activity: str = "sleeping"
    #: Partner agent id when engaged in a conversation, else None.
    conversation: Optional[int] = None
    #: This agent's half of the conversation state.
    conv_state: Optional[ConvState] = None
    memory: MemoryStream = field(default_factory=MemoryStream)
    #: Steps until the agent re-decides what to do at its current venue.
    dwell_until: int = 0
    #: Step-of-day of the last reflection chain.
    last_reflection: int = 0

    @property
    def agent_id(self) -> int:
        return self.persona.agent_id

    @property
    def busy_chatting(self) -> bool:
        return self.conversation is not None
