"""Associative memory stream (the GenAgent "retrieve" substrate).

GenAgent agents keep an append-only stream of observations and retrieve
the most salient ones to build LLM prompts; prompt length therefore grows
with how eventful an agent's recent life has been. We reproduce that
mechanism — recency/importance/relevance scoring over an event stream —
without an LLM: importance is assigned at write time and relevance is
keyword overlap.

The stream is bounded (a deque) because retrieval runs on the trace
generator's innermost loop: tens of thousands of retrievals per simulated
day. Recency decay makes old events score near zero anyway, so bounding
the window changes scores negligibly while keeping retrieval O(window).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryEvent:
    """One observation in the stream."""

    step: int
    kind: str  # "observation" | "chat" | "plan" | "reflection"
    keywords: frozenset[str]
    importance: float  # [0, 1]
    #: Token length of the event's natural-language description.
    tokens: int


class MemoryStream:
    """Bounded event stream with salience-scored retrieval."""

    #: Exponential recency decay per step (GenAgent decays per hour; this
    #: is the equivalent rate for the 10-second step).
    RECENCY_DECAY = 0.999
    #: Events retained (recency decay makes older ones irrelevant).
    WINDOW = 64

    def __init__(self, window: int = WINDOW) -> None:
        self._events: deque[MemoryEvent] = deque(maxlen=window)
        #: Importance accumulated since the last reflection (GenAgent
        #: triggers reflection when this crosses a threshold).
        self.importance_since_reflection = 0.0

    def __len__(self) -> int:
        return len(self._events)

    def add(self, event: MemoryEvent) -> None:
        self._events.append(event)
        self.importance_since_reflection += event.importance

    def _score(self, event: MemoryEvent, now_step: int,
               query_keywords: frozenset[str]) -> float:
        age = now_step - event.step
        recency = self.RECENCY_DECAY ** age if age < 4000 else 0.0
        if query_keywords:
            overlap = len(query_keywords & event.keywords)
            relevance = 0.1 + overlap / len(query_keywords)
        else:
            relevance = 1.0
        return recency * (0.5 + event.importance) * relevance

    def retrieve(self, now_step: int, query_keywords: frozenset[str],
                 top_k: int = 8) -> list[MemoryEvent]:
        """Top-k events by recency * importance * relevance."""
        scored = sorted(
            self._events,
            key=lambda e: -self._score(e, now_step, query_keywords))
        return scored[:top_k]

    def retrieved_tokens(self, now_step: int,
                         query_keywords: frozenset[str],
                         top_k: int = 8) -> int:
        """Token volume of a retrieval — the prompt-building cost driver.

        Avoids the full sort: with a bounded window, summing the ``top_k``
        largest scores via one pass is cheap and exact enough; we sum the
        token lengths of the top-k scored events.
        """
        events = self._events
        if len(events) <= top_k:
            return sum(e.tokens for e in events)
        scores = [(self._score(e, now_step, query_keywords), e.tokens)
                  for e in events]
        scores.sort(key=lambda pair: -pair[0])
        return sum(tokens for _, tokens in scores[:top_k])

    def reset_reflection_counter(self) -> None:
        self.importance_since_reflection = 0.0
