"""GenAgent-style world simulation (SmallVille substitute).

The paper replays traces collected from the original Generative Agents
implementation: 25 agents with personas and daily routines inhabiting the
100x140-tile SmallVille map, perceiving within a radius of 4 tiles, moving
1 tile per 10-second step, conversing when they meet. This package
implements that world from scratch — map, venues, A* pathfinding, persona
schedules, an associative memory stream, a perceive/retrieve/plan behavior
loop and multi-step dyadic conversations — with the LLM replaced by a
deterministic counter-based stochastic decision model (the decision
*content* never affects replayed scheduling; the decision *timing and
token costs* are calibrated to the paper's published trace statistics).

Because every decision is keyed by ``(seed, agent, step)``, the world
evolves identically no matter which scheduler executes it — the property
AI Metropolis must preserve, and which the test suite checks end-to-end.
"""

from .grid import GridWorld, Venue
from .smallville import build_smallville, SMALLVILLE_WIDTH, SMALLVILLE_HEIGHT
from .persona import Persona, make_personas
from .agent import AgentState
from .behavior import BehaviorModel, LLMCall

__all__ = [
    "GridWorld",
    "Venue",
    "build_smallville",
    "SMALLVILLE_WIDTH",
    "SMALLVILLE_HEIGHT",
    "Persona",
    "make_personas",
    "AgentState",
    "BehaviorModel",
    "LLMCall",
]
