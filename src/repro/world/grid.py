"""Tile grid, venues, and spatial queries."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorldError


@dataclass(frozen=True)
class Venue:
    """A named rectangular region of the map (a house, the cafe...).

    ``x0..x1`` / ``y0..y1`` are inclusive tile bounds of the interior.
    """

    name: str
    x0: int
    y0: int
    x1: int
    y1: int
    #: Interactable objects inside the venue (bed, stove, counter...).
    objects: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise WorldError(f"venue {self.name}: empty bounds")

    @property
    def center(self) -> tuple[int, int]:
        return ((self.x0 + self.x1) // 2, (self.y0 + self.y1) // 2)

    def contains(self, x: int, y: int) -> bool:
        return self.x0 <= x <= self.x1 and self.y0 <= y <= self.y1

    def tiles(self) -> list[tuple[int, int]]:
        return [(x, y) for y in range(self.y0, self.y1 + 1)
                for x in range(self.x0, self.x1 + 1)]


class GridWorld:
    """A 2D tile map with walls and venues.

    Agents occupy tiles and move at most one tile per step in the four
    cardinal directions (so per-step displacement never exceeds the
    ``max_vel = 1`` used by the dependency rules).
    """

    def __init__(self, width: int, height: int) -> None:
        if width < 1 or height < 1:
            raise WorldError("world dimensions must be positive")
        self.width = width
        self.height = height
        #: True where an agent may stand.
        self.walkable = np.ones((height, width), dtype=bool)
        self.venues: dict[str, Venue] = {}

    # -- construction ------------------------------------------------------

    def add_wall_rect(self, x0: int, y0: int, x1: int, y1: int,
                      doors: list[tuple[int, int]] | None = None) -> None:
        """Wall the perimeter of a rectangle, leaving ``doors`` open."""
        self._check_bounds(x0, y0)
        self._check_bounds(x1, y1)
        self.walkable[y0, x0:x1 + 1] = False
        self.walkable[y1, x0:x1 + 1] = False
        self.walkable[y0:y1 + 1, x0] = False
        self.walkable[y0:y1 + 1, x1] = False
        for dx, dy in doors or []:
            self._check_bounds(dx, dy)
            self.walkable[dy, dx] = True

    def add_venue(self, venue: Venue, walled: bool = True) -> None:
        if venue.name in self.venues:
            raise WorldError(f"duplicate venue {venue.name!r}")
        self._check_bounds(venue.x0, venue.y0)
        self._check_bounds(venue.x1, venue.y1)
        self.venues[venue.name] = venue
        if walled:
            # Perimeter one tile outside the interior, door at bottom center.
            x0, y0 = venue.x0 - 1, venue.y0 - 1
            x1, y1 = venue.x1 + 1, venue.y1 + 1
            if x0 >= 0 and y0 >= 0 and x1 < self.width and y1 < self.height:
                door = ((venue.x0 + venue.x1) // 2, y1)
                self.add_wall_rect(x0, y0, x1, y1, doors=[door])

    # -- queries ------------------------------------------------------------

    def _check_bounds(self, x: int, y: int) -> None:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise WorldError(
                f"({x}, {y}) outside {self.width}x{self.height} map")

    def in_bounds(self, x: int, y: int) -> bool:
        return 0 <= x < self.width and 0 <= y < self.height

    def is_walkable(self, x: int, y: int) -> bool:
        return self.in_bounds(x, y) and bool(self.walkable[y, x])

    def venue_at(self, x: int, y: int) -> Venue | None:
        for venue in self.venues.values():
            if venue.contains(x, y):
                return venue
        return None

    def venue(self, name: str) -> Venue:
        try:
            return self.venues[name]
        except KeyError:
            raise WorldError(f"unknown venue {name!r}") from None

    def neighbors(self, x: int, y: int) -> list[tuple[int, int]]:
        """Walkable 4-neighbourhood."""
        out = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx, ny = x + dx, y + dy
            if self.is_walkable(nx, ny):
                out.append((nx, ny))
        return out

    def random_walkable_tile(self, rng: np.random.Generator,
                             venue: Venue | None = None) -> tuple[int, int]:
        """A uniformly random walkable tile (within ``venue`` if given)."""
        for _ in range(1000):
            if venue is None:
                x = int(rng.integers(0, self.width))
                y = int(rng.integers(0, self.height))
            else:
                x = int(rng.integers(venue.x0, venue.x1 + 1))
                y = int(rng.integers(venue.y0, venue.y1 + 1))
            if self.is_walkable(x, y):
                return x, y
        raise WorldError("could not find a walkable tile")
