"""Personas and daily schedules.

Each agent gets a home, an occupation venue, and an hour-by-hour routine
generated from a small set of archetypes. The archetype mix is chosen so
the *aggregate* diurnal LLM-call profile matches the paper's Figure 4c:
everyone asleep 1am-4am (activity trough), staggered waking around the
6-7am "quiet hour" (light wake-up routines), and a midday peak around the
12-1pm "busy hour" when most personas converge on social venues for lunch
and long conversations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .._util import rng_for
from ..config import STEPS_PER_HOUR

#: (archetype, work venue, weight)
_ARCHETYPES: list[tuple[str, str, float]] = [
    ("student", "Oak Hill College", 0.3),
    ("shopkeeper", "Willow Market", 0.15),
    ("barista", "Hobbs Cafe", 0.1),
    ("pharmacist", "Dorm Pharmacy", 0.1),
    ("artist", "Artist Co-Living", 0.15),
    ("retiree", "Johnson Park", 0.2),
]

_FIRST_NAMES = [
    "Abigail", "Adam", "Arthur", "Ayesha", "Carlos", "Carmen", "Eddy",
    "Francisco", "Giorgio", "Hailey", "Isabella", "Jane", "Jennifer",
    "John", "Klaus", "Latoya", "Maria", "Mei", "Rajiv", "Ryan", "Sam",
    "Tamara", "Tom", "Wolfgang", "Yuriko",
]

#: Social venues where lunch/evening gatherings happen.
SOCIAL_VENUES = ["Hobbs Cafe", "The Rose Bar", "Johnson Park"]


@dataclass(frozen=True)
class ScheduleEntry:
    """One block of the daily routine."""

    start_step: int  # step-of-day when the block begins
    venue: str
    activity: str


@dataclass(frozen=True)
class Persona:
    """An agent's identity and daily routine."""

    agent_id: int
    name: str
    archetype: str
    home: str
    work: str
    #: Step-of-day the agent wakes (triggers the daily-plan LLM chain).
    wake_step: int
    #: Step-of-day the agent goes to bed.
    sleep_step: int
    #: Chattiness in [0, 1]: probability scale for starting conversations.
    sociability: float
    schedule: tuple[ScheduleEntry, ...] = field(default_factory=tuple)

    def block_at(self, step_of_day: int) -> ScheduleEntry:
        """The routine block active at ``step_of_day``."""
        current = self.schedule[0]
        for entry in self.schedule:
            if entry.start_step <= step_of_day:
                current = entry
            else:
                break
        return current


def _hour(h: float) -> int:
    return int(h * STEPS_PER_HOUR)


def make_personas(n_agents: int, seed: int, homes: list[str]) -> list[Persona]:
    """Generate ``n_agents`` personas with staggered, archetype-based days."""
    personas = []
    weights = [w for _, _, w in _ARCHETYPES]
    total_weight = sum(weights)
    for agent_id in range(n_agents):
        rng = rng_for(seed, "persona", agent_id)
        pick = rng.random() * total_weight
        cumulative = 0.0
        archetype, work = _ARCHETYPES[-1][0], _ARCHETYPES[-1][1]
        for name_, work_, weight in _ARCHETYPES:
            cumulative += weight
            if pick <= cumulative:
                archetype, work = name_, work_
                break
        home = homes[agent_id % len(homes)]
        # Staggered waking: 6:00-7:40am; retirees half an hour earlier.
        wake = _hour(6.0) + int(rng.integers(0, _hour(1.67)))
        if archetype == "retiree":
            wake -= _hour(0.5)
        sleep = _hour(21.5) + int(rng.integers(0, _hour(2.4)))
        lunch_venue = SOCIAL_VENUES[int(rng.integers(0, len(SOCIAL_VENUES)))]
        evening_venue = SOCIAL_VENUES[int(rng.integers(0, len(SOCIAL_VENUES)))]
        lunch_start = _hour(11.7) + int(rng.integers(0, _hour(0.5)))
        schedule = (
            ScheduleEntry(0, home, "sleeping"),
            ScheduleEntry(wake, home, "morning routine"),
            ScheduleEntry(wake + _hour(1.0), work, "working"),
            ScheduleEntry(lunch_start, lunch_venue, "lunch"),
            ScheduleEntry(_hour(13.25), work, "working"),
            ScheduleEntry(_hour(17.5), evening_venue, "socializing"),
            ScheduleEntry(_hour(19.5), home, "dinner"),
            ScheduleEntry(sleep, home, "sleeping"),
        )
        personas.append(Persona(
            agent_id=agent_id,
            name=f"{_FIRST_NAMES[agent_id % len(_FIRST_NAMES)]}-{agent_id}",
            archetype=archetype,
            home=home,
            work=work,
            wake_step=wake,
            sleep_step=sleep,
            sociability=0.3 + 0.7 * float(rng.random()),
            schedule=schedule,
        ))
    return personas
