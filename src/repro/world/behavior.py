"""The perceive / retrieve / plan behavior loop (Algorithm 2 substitute).

This module decides, for every agent at every step, (a) how the agent
moves and interacts and (b) which LLM calls it issues, with what prompt
and output token counts. Decision *content* comes from counter-based RNG
keyed by ``(seed, agent, step)`` — never from execution order — so the
world evolves identically under any causally-correct scheduler. Token
counts are calibrated against the paper's trace statistics (§4.1): about
56.7k calls per 25-agent day, mean prompt 642.6 tokens, mean output 21.9
tokens, a 12-1pm busy hour of ≈5k calls and a 6-7am quiet hour of ≈800.

Cluster-safe execution contract
-------------------------------
:meth:`BehaviorModel.step_agents` may be called with any subset of agents
that is closed under the coupling relation (same step, distance <=
``radius_p + max_vel``). All cross-agent reads (perception, conversation
pairing) are restricted to the perception/chat radius, which the coupling
threshold dominates, so executing one cluster at a time is equivalent to
executing the full lock-step world — the property the OOO scheduler relies
on, and which the integration tests verify end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .._util import fast_rng_for, rng_for
from ..config import STEPS_PER_DAY
from ..errors import WorldError
from .agent import AgentState
from .conversation import ConvState
from .grid import GridWorld
from .memory_stream import MemoryEvent
from .pathfind import PathPlanner
from .persona import SOCIAL_VENUES, Persona

#: Function labels recorded in traces (the Figure-1 color legend).
FUNCS = (
    "daily_plan", "wake_routine", "action_decide", "action_decompose",
    "pick_location", "observe_react", "utterance", "convo_summary",
    "reflect_insight", "reflect_memo",
)
FUNC_INDEX = {name: i for i, name in enumerate(FUNCS)}

#: Hard cap on prompt length (the original agents truncate context too).
MAX_INPUT_TOKENS = 1600


@dataclass(frozen=True)
class LLMCall:
    """One LLM invocation an agent makes within a step."""

    func: str
    input_tokens: int
    output_tokens: int


class BehaviorModel:
    """Drives agents through a day and emits their LLM call chains."""

    #: Agents within this distance may strike up a conversation.
    CHAT_RADIUS = 2.0
    #: Perception radius (GenAgent: 4 tiles) — cross-agent reads only
    #: happen inside this radius; must stay <= coupling threshold.
    PERCEPTION_RADIUS = 4.0

    def __init__(self, world: GridWorld, personas: Sequence[Persona],
                 seed: int, planner: PathPlanner | None = None,
                 social_venues: Sequence[str] | None = None,
                 func_shapes=None) -> None:
        self.world = world
        self.personas = list(personas)
        self.seed = seed
        self.planner = planner or PathPlanner(world)
        #: Per-function token shapes: scenario overrides (see
        #: ``Scenario.token_shapes``) are merged over the GenAgent
        #: defaults, so a world can declare its own prompt/output
        #: distributions without forking the behavior model.
        self._func_shape = dict(self._FUNC_SHAPE)
        if func_shapes:
            unknown = set(func_shapes) - set(self._FUNC_SHAPE)
            if unknown:
                raise WorldError(
                    f"func_shapes overrides unknown functions "
                    f"{sorted(unknown)}")
            self._func_shape.update(func_shapes)
        #: Venues where conversations spark easily. ``None`` keeps the
        #: SmallVille defaults; scenarios pass their own (see
        #: :mod:`repro.scenarios`).
        self.social_venues = tuple(
            SOCIAL_VENUES if social_venues is None else social_venues)
        self.agents: list[AgentState] = []
        for persona in self.personas:
            home = world.venue(persona.home)
            rng = rng_for(seed, "spawn", persona.agent_id)
            pos = world.random_walkable_tile(rng, home)
            self.agents.append(AgentState(persona=persona, pos=pos))

    # ------------------------------------------------------------------
    # public stepping API
    # ------------------------------------------------------------------

    def step_all(self, step: int) -> dict[int, list[LLMCall]]:
        """Advance every agent one step (lock-step generation mode)."""
        return self.step_agents(step, range(len(self.agents)))

    def step_agents(self, step: int,
                    agent_ids: Iterable[int]) -> dict[int, list[LLMCall]]:
        """Advance a coupling-closed subset of agents one step."""
        members = sorted(agent_ids)
        calls: dict[int, list[LLMCall]] = {aid: [] for aid in members}
        # Phase 1: solo decisions + movement, in agent-id order.
        for aid in members:
            self._step_solo(step, aid, calls[aid])
        # Phase 2: pairwise interactions (conversation starts) — symmetric,
        # keyed by the unordered pair so order cannot matter.
        self._maybe_start_conversations(step, members, calls)
        return calls

    # ------------------------------------------------------------------
    # solo behaviour
    # ------------------------------------------------------------------

    def _step_solo(self, step: int, aid: int, out: list[LLMCall]) -> None:
        agent = self.agents[aid]
        persona = agent.persona
        rng = fast_rng_for(self.seed, "beh", aid, step)
        day_step = step % STEPS_PER_DAY

        if agent.busy_chatting:
            self._conversation_turn(step, aid, out)
            return

        # Sleep/wake edges.
        if not agent.awake:
            if day_step == persona.wake_step:
                self._wake(step, agent, rng, out)
            return
        if day_step >= persona.sleep_step and not agent.busy_chatting:
            if agent.activity != "heading home":
                agent.activity = "heading home"
                agent.target_venue = persona.home
                agent.target_tile = None
            if self._arrived(agent):
                agent.awake = False
                agent.activity = "sleeping"
                agent.target_venue = None
                return

        # Follow the schedule: retarget when the routine block changes.
        block = persona.block_at(day_step)
        if block.activity != "sleeping" and agent.activity != block.activity:
            agent.activity = block.activity
            if block.venue != self._current_venue_name(agent):
                agent.target_venue = block.venue
                agent.target_tile = None
                if rng.random() < 0.5:
                    out.append(self._call(rng, "pick_location", agent, step))

        # Walk toward the target, or act in place.
        if agent.target_venue is not None and not self._arrived(agent):
            self._move_toward_target(agent, rng)
            if rng.random() < 0.12:
                out.append(self._call(rng, "observe_react", agent, step))
                self._observe_surroundings(step, aid)
        else:
            agent.target_venue = None
            self._act_in_place(step, agent, rng, out)

        # Reflection when enough importance accumulated (GenAgent-style).
        if (agent.memory.importance_since_reflection > 12.0
                and step - agent.last_reflection > 180):
            out.append(self._call(rng, "reflect_insight", agent, step))
            for _ in range(int(rng.integers(2, 5))):
                out.append(self._call(rng, "reflect_memo", agent, step))
            agent.memory.reset_reflection_counter()
            agent.last_reflection = step
            agent.memory.add(MemoryEvent(
                step=step, kind="reflection",
                keywords=frozenset({"reflection", persona.archetype}),
                importance=0.4, tokens=44))

    def _wake(self, step: int, agent: AgentState, rng: np.random.Generator,
              out: list[LLMCall]) -> None:
        agent.awake = True
        agent.activity = "morning routine"
        out.append(self._call(rng, "daily_plan", agent, step))
        for _ in range(int(rng.integers(3, 7))):
            out.append(self._call(rng, "wake_routine", agent, step))
        agent.memory.add(MemoryEvent(
            step=step, kind="plan",
            keywords=frozenset({"plan", agent.persona.archetype}),
            importance=0.5, tokens=60))

    def _act_in_place(self, step: int, agent: AgentState,
                      rng: np.random.Generator, out: list[LLMCall]) -> None:
        if step < agent.dwell_until:
            return
        out.append(self._call(rng, "action_decide", agent, step))
        # Heavy-tailed decomposition chains: most decisions are quick, a
        # few expand into long sequential planning chains (the §2.2
        # imbalance that throttles lock-step parallelism).
        extra = int(rng.random() ** 2.5 * 8)
        for _ in range(extra):
            out.append(self._call(rng, "action_decompose", agent, step))
        # Re-decision cadence depends on how absorbing the activity is:
        # quiet-hour morning routines are slow, social blocks are lively.
        lo, hi = self._DWELL.get(agent.activity, (4, 12))
        agent.dwell_until = step + int(rng.integers(lo, hi))
        self._observe_surroundings(step, agent.agent_id)
        # Small chance of wandering within the venue.
        if rng.random() < 0.3:
            venue = self.world.venue_at(*agent.pos)
            if venue is not None:
                agent.target_tile = self.world.random_walkable_tile(rng, venue)
                agent.target_venue = venue.name

    # ------------------------------------------------------------------
    # movement
    # ------------------------------------------------------------------

    def _current_venue_name(self, agent: AgentState) -> str | None:
        venue = self.world.venue_at(*agent.pos)
        return venue.name if venue is not None else None

    def _arrived(self, agent: AgentState) -> bool:
        if agent.target_venue is None:
            return True
        venue = self.world.venue(agent.target_venue)
        if agent.target_tile is not None:
            return agent.pos == agent.target_tile
        return venue.contains(*agent.pos)

    def _move_toward_target(self, agent: AgentState,
                            rng: np.random.Generator) -> None:
        """One movement step.

        Outside the target venue, agents follow the shortest path to the
        venue center — centers are shared goals, so the planner's BFS
        distance fields are computed once per venue, not once per walk.
        Inside (venue interiors are open rectangles), they walk
        axis-greedily to their personal target tile.
        """
        venue = self.world.venue(agent.target_venue)
        if agent.target_tile is None or not venue.contains(*agent.target_tile):
            agent.target_tile = self.world.random_walkable_tile(rng, venue)
        if venue.contains(*agent.pos):
            x, y = agent.pos
            tx, ty = agent.target_tile
            if x != tx:
                agent.pos = (x + (1 if tx > x else -1), y)
            elif y != ty:
                agent.pos = (x, y + (1 if ty > y else -1))
        else:
            agent.pos = self.planner.next_step(agent.pos, venue.center)
        if agent.pos == agent.target_tile:
            agent.target_venue = None
            agent.target_tile = None

    # ------------------------------------------------------------------
    # perception & conversations
    # ------------------------------------------------------------------

    def _neighbors_within(self, aid: int, radius: float) -> list[int]:
        """Other agents within ``radius`` of agent ``aid`` (any subset)."""
        ax, ay = self.agents[aid].pos
        out = []
        for other in self.agents:
            if other.agent_id == aid:
                continue
            dx = other.pos[0] - ax
            dy = other.pos[1] - ay
            if dx * dx + dy * dy <= radius * radius:
                out.append(other.agent_id)
        return out

    def _chat_adjacent(self, a: AgentState, b: AgentState) -> bool:
        """May ``a`` and ``b`` strike up a conversation where they stand?

        The world's distance predicate at :attr:`CHAT_RADIUS`; graph
        worlds override it with hop distance. Must stay within the
        coupling threshold so conversation pairing remains cluster-safe.
        """
        dx = a.pos[0] - b.pos[0]
        dy = a.pos[1] - b.pos[1]
        return dx * dx + dy * dy <= self.CHAT_RADIUS ** 2

    def _observe_surroundings(self, step: int, aid: int) -> None:
        """Write memory events about perceivable agents (radius <= 4)."""
        agent = self.agents[aid]
        for other_id in self._neighbors_within(aid, self.PERCEPTION_RADIUS):
            other = self.agents[other_id]
            agent.memory.add(MemoryEvent(
                step=step, kind="observation",
                keywords=frozenset({other.persona.name, other.activity}),
                importance=0.15, tokens=36))

    def _maybe_start_conversations(self, step: int, members: list[int],
                                   calls: dict[int, list[LLMCall]]) -> None:
        for i, aid in enumerate(members):
            a = self.agents[aid]
            if not a.awake or a.busy_chatting:
                continue
            for bid in members[i + 1:]:
                b = self.agents[bid]
                if not b.awake or b.busy_chatting or a.busy_chatting:
                    continue
                if not self._chat_adjacent(a, b):
                    continue
                rng = fast_rng_for(self.seed, "chat", min(aid, bid),
                                   max(aid, bid), step)
                social = (self._current_venue_name(a) in self.social_venues)
                base = 0.115 if (social and a.activity == "lunch") else \
                    0.04 if social else 0.008
                prob = base * a.persona.sociability * b.persona.sociability
                if rng.random() >= prob:
                    continue
                self._generate_conversation(step, aid, bid, rng, calls)

    def _generate_conversation(self, step: int, aid: int, bid: int,
                               rng, calls: dict[int, list[LLMCall]]) -> None:
        """Generate the full dialogue as one chain on the initiator's side.

        Matches GenAgent: the meeting step carries the whole utterance
        chain (the busy-hour straggler), the partner contributes only a
        summary call, and both stay engaged — frozen, no further calls —
        for the conversation's simulated duration.
        """
        a, b = self.agents[aid], self.agents[bid]
        turns = int(rng.integers(8, 26))
        history = 0
        for turn in range(turns):
            speaker = a if turn % 2 == 0 else b
            utterance = int(rng.integers(28, 72))
            prompt = self._prompt_tokens(
                speaker, step, base=425 + history, top_k=4)
            calls[aid].append(LLMCall("utterance", prompt, utterance))
            history += utterance
        for agent_obj, agent_calls in ((a, calls[aid]), (b, calls[bid])):
            agent_calls.append(self._call(rng, "convo_summary", agent_obj,
                                          step))
        freeze = turns + int(rng.integers(2, 8))
        a.conversation, b.conversation = bid, aid
        a.conv_state = ConvState(partner=bid, freeze_left=freeze)
        b.conv_state = ConvState(partner=aid, freeze_left=freeze)
        # Freeze both in place for the conversation's duration.
        a.target_venue = a.target_tile = None
        b.target_venue = b.target_tile = None
        for agent_obj, partner in ((a, b), (b, a)):
            agent_obj.memory.add(MemoryEvent(
                step=step, kind="chat",
                keywords=frozenset({partner.persona.name, "conversation"}),
                importance=0.6, tokens=58))

    def _conversation_turn(self, step: int, aid: int,
                           out: list[LLMCall]) -> None:
        """One frozen step of an ongoing conversation, from ``aid``'s side.

        The dialogue's LLM calls were all issued at the meeting step; the
        engaged steps just hold both partners in place (both tick their
        own mirrored countdown — same step, same cluster).
        """
        agent = self.agents[aid]
        conv: ConvState = agent.conv_state
        rng = fast_rng_for(self.seed, "turn", min(aid, conv.partner),
                           max(aid, conv.partner), step, aid)
        if rng.random() < 0.04:
            out.append(self._call(rng, "observe_react", agent, step))
        if conv.tick():
            agent.conversation = None
            agent.conv_state = None
            agent.dwell_until = step + int(rng.integers(2, 6))

    # ------------------------------------------------------------------
    # token model
    # ------------------------------------------------------------------

    #: activity -> (dwell lo, dwell hi) steps between action decisions.
    #: Unlisted activities fall back to (4, 12). The non-SmallVille
    #: entries back the metro-grid / market-town scenario schedules.
    _DWELL = {
        "morning routine": (9, 20),
        "working": (3, 9),
        "lunch": (2, 7),
        "socializing": (3, 9),
        "dinner": (5, 13),
        "commuting": (2, 6),
        "trading": (3, 8),
        "selling": (3, 8),
        "delivering": (6, 14),
    }

    #: func -> (base prompt tokens, retrieval top_k, output lo, output hi)
    _FUNC_SHAPE = {
        "daily_plan": (500, 8, 180, 380),
        "wake_routine": (400, 4, 6, 18),
        "action_decide": (375, 8, 6, 16),
        "action_decompose": (345, 4, 12, 30),
        "pick_location": (460, 6, 4, 9),
        "observe_react": (385, 4, 4, 12),
        "convo_summary": (470, 6, 45, 90),
        "reflect_insight": (640, 10, 55, 100),
        "reflect_memo": (700, 6, 25, 50),
    }

    def _prompt_tokens(self, agent: AgentState, step: int, base: int,
                       top_k: int) -> int:
        retrieved = agent.memory.retrieved_tokens(
            step, frozenset({agent.activity}), top_k=top_k)
        return min(base + retrieved, MAX_INPUT_TOKENS)

    def _call(self, rng: np.random.Generator, func: str, agent: AgentState,
              step: int) -> LLMCall:
        try:
            base, top_k, out_lo, out_hi = self._func_shape[func]
        except KeyError:
            raise WorldError(f"unknown function {func!r}") from None
        jitter = int(rng.integers(-40, 120))
        prompt = self._prompt_tokens(agent, step, base + jitter, top_k)
        output = int(rng.integers(out_lo, out_hi + 1))
        return LLMCall(func, max(prompt, 16), output)
