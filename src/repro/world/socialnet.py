"""Small-world social-network world (the §6 non-Euclidean extension).

Agents live on the *nodes of a graph* instead of grid tiles: positions
are ``(node_id, 0)`` pairs (the trailing 0 keeps the trace's 2-column
position layout), movement is one hop along an edge per step (so the
§3.2 ``max_vel = 1`` bound holds in hop distance), and perception/
conversation reach only direct neighbours (``radius_p = 1``). The world
is a deterministic Watts-Strogatz-style small-world network: a ring
lattice with each node linked to its two neighbours on either side,
plus a fixed set of long-range "weak tie" shortcuts. Venues occupy
single nodes — home "circles" spread around the ring and a few hub
nodes everyone converges on — so the diurnal routine produces the same
coupling/blocking texture the grid worlds have, measured in hops.

:class:`SocialGraphBehavior` reuses the full
:class:`~repro.world.behavior.BehaviorModel` decision loop (schedules,
conversations, reflection, the calibrated token model); only movement
and the distance predicates are overridden, so OOO equivalence rests on
exactly the same counter-based-RNG discipline the grid worlds use.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .._util import rng_for
from ..errors import WorldError
from .behavior import BehaviorModel

#: Positions are ``(node_id, 0)`` so traces/drivers keep their
#: 2-component position handling; ``node_of`` strips the padding.
Node = int


def node_of(pos: tuple[int, int]) -> Node:
    return pos[0]


@dataclass(frozen=True)
class GraphVenue:
    """A named single-node venue of the network (a hub, a home circle)."""

    name: str
    node: Node
    objects: tuple[str, ...] = ()

    @property
    def center(self) -> tuple[int, int]:
        return (self.node, 0)

    def contains(self, x: int, y: int) -> bool:
        return x == self.node and y == 0

    def tiles(self) -> list[tuple[int, int]]:
        return [(self.node, 0)]


class GraphWorld:
    """A graph of nodes with single-node venues (duck-types GridWorld).

    ``width`` is the node count and ``height`` is 1 so trace metadata
    and the §4.3 segment concatenation (x-stride = ``width + 1``) work
    unchanged: segment *k*'s nodes become ``node + k * (width + 1)``.
    """

    def __init__(self, adjacency: dict[Node, list[Node]]) -> None:
        if not adjacency:
            raise WorldError("graph world needs at least one node")
        self.adjacency: dict[Node, tuple[Node, ...]] = {
            node: tuple(sorted(set(neigh)))
            for node, neigh in sorted(adjacency.items())}
        for node, neigh in self.adjacency.items():
            for other in neigh:
                if other not in self.adjacency:
                    raise WorldError(
                        f"edge {node} -> {other} leaves the node set")
        self.n_nodes = len(self.adjacency)
        self.width = self.n_nodes
        self.height = 1
        self.venues: dict[str, GraphVenue] = {}
        self._venue_of_node: dict[Node, GraphVenue] = {}

    # -- construction ------------------------------------------------------

    def add_venue(self, venue: GraphVenue) -> None:
        if venue.name in self.venues:
            raise WorldError(f"duplicate venue {venue.name!r}")
        if venue.node not in self.adjacency:
            raise WorldError(
                f"venue {venue.name!r} sits on unknown node {venue.node}")
        if venue.node in self._venue_of_node:
            raise WorldError(
                f"node {venue.node} already hosts "
                f"{self._venue_of_node[venue.node].name!r}")
        self.venues[venue.name] = venue
        self._venue_of_node[venue.node] = venue

    # -- queries (GridWorld surface) ---------------------------------------

    def venue(self, name: str) -> GraphVenue:
        try:
            return self.venues[name]
        except KeyError:
            raise WorldError(f"unknown venue {name!r}") from None

    def venue_at(self, x: int, y: int) -> GraphVenue | None:
        return self._venue_of_node.get(x) if y == 0 else None

    def random_walkable_tile(self, rng, venue: GraphVenue | None = None
                             ) -> tuple[int, int]:
        """Venues are single nodes, so there is nothing to draw."""
        if venue is None:
            return (int(rng.integers(0, self.n_nodes)), 0)
        return venue.center

    def neighbors(self, node: Node) -> tuple[Node, ...]:
        return self.adjacency[node]


class GraphPlanner:
    """Shortest-hop routing with per-target BFS fields (PathPlanner's
    graph twin). ``next_step`` is deterministic: among neighbours that
    strictly reduce the remaining hop count, the lowest node id wins."""

    def __init__(self, world: GraphWorld) -> None:
        self.world = world
        self._fields: dict[Node, dict[Node, int]] = {}

    def distance_field(self, target_pos: tuple[int, int]) -> dict[Node, int]:
        target = node_of(target_pos)
        field = self._fields.get(target)
        if field is None:
            field = {target: 0}
            queue = deque([target])
            adjacency = self.world.adjacency
            while queue:
                node = queue.popleft()
                hops = field[node] + 1
                for neigh in adjacency[node]:
                    if neigh not in field:
                        field[neigh] = hops
                        queue.append(neigh)
            self._fields[target] = field
        return field

    def next_step(self, pos: tuple[int, int],
                  target_pos: tuple[int, int]) -> tuple[int, int]:
        node = node_of(pos)
        field = self.distance_field(target_pos)
        here = field.get(node)
        if here is None or here == 0:
            return pos  # unreachable or already there: stay put
        for neigh in self.world.adjacency[node]:  # sorted: lowest id wins
            if field.get(neigh, here) < here:
                return (neigh, 0)
        return pos  # pragma: no cover - BFS guarantees a descent exists


class SocialGraphBehavior(BehaviorModel):
    """The behavior loop measured in hop distance.

    Overrides only geometry: one-hop movement along BFS routes, and
    neighbour/conversation predicates through the scenario's
    :class:`~repro.core.space.GraphSpace`. Perception and chat both use
    radius 1 (direct neighbours) — within ``radius_p``, so cross-agent
    reads stay cluster-safe under ``DependencyConfig(radius_p=1,
    max_vel=1, metric="graph")``.
    """

    CHAT_RADIUS = 1.0
    PERCEPTION_RADIUS = 1.0

    def __init__(self, world: GraphWorld, personas, seed: int,
                 space, planner: GraphPlanner | None = None,
                 social_venues=None) -> None:
        self.space = space
        super().__init__(world, personas, seed=seed,
                         planner=planner or GraphPlanner(world),
                         social_venues=social_venues)

    # -- geometry overrides -------------------------------------------------

    def _neighbors_within(self, aid: int, radius: float) -> list[int]:
        pos = self.agents[aid].pos
        dist = self.space.dist
        return [other.agent_id for other in self.agents
                if other.agent_id != aid
                and dist(pos, other.pos) <= radius]

    def _chat_adjacent(self, a, b) -> bool:
        return self.space.dist(a.pos, b.pos) <= self.CHAT_RADIUS

    def _move_toward_target(self, agent, rng) -> None:
        """One hop along the shortest route to the target venue's node."""
        venue = self.world.venue(agent.target_venue)
        agent.target_tile = venue.center
        if agent.pos != venue.center:
            agent.pos = self.planner.next_step(agent.pos, venue.center)
        if agent.pos == agent.target_tile:
            agent.target_venue = None
            agent.target_tile = None


# -- the built-in small-world network ---------------------------------------

#: Ring size of one network segment; also the trace x-stride base.
RING_NODES = 240
#: Each node links to its ``K`` nearest ring neighbours per side, so a
#: ring gap of ``g`` is ``ceil(g / K)`` hops.
RING_K = 2
#: Deterministic long-range shortcuts ("weak ties").
N_WEAK_TIES = 7
#: Home circles spread around the ring, one per ``RING_NODES // N`` arc.
N_HOMES = 24

#: (name, node, objects) of the hub venues. The layout keeps every
#: venue pair >= 3 hops apart (homes sit mid-arc between each other and
#: the hubs), beyond the 2-hop coupling threshold — so resting
#: populations decouple while hub hours still pack real clusters.
_HUBS = (
    ("Agora", 0, ("thread", "megaphone", "pinboard")),
    ("Forum", 60, ("lectern", "archive", "gallery")),
    ("Bazaar", 120, ("stall", "ledger", "escrow desk")),
    ("Commons", 180, ("garden", "stage", "long table")),
)

#: Nodes hosting a venue (hubs + home circles), for tie placement.
_VENUE_NODES = frozenset(
    {node for _, node, _ in _HUBS}
    | {idx * (RING_NODES // N_HOMES) + 5 for idx in range(N_HOMES)})


def _ring_gap(a: Node, b: Node) -> int:
    return min((a - b) % RING_NODES, (b - a) % RING_NODES)


def build_social_graph(seed: int = 0) -> dict[Node, list[Node]]:
    """The deterministic small-world adjacency (ring + weak ties).

    Weak ties only join mid-arc nodes at least 3 ring positions from
    every venue, so no shortcut drags two venues inside the coupling
    threshold; agents still route through them between arcs.
    """
    adjacency: dict[Node, list[Node]] = {
        node: [] for node in range(RING_NODES)}
    for node in range(RING_NODES):
        for k in range(1, RING_K + 1):
            adjacency[node].append((node + k) % RING_NODES)
            adjacency[node].append((node - k) % RING_NODES)
    rng = rng_for(seed, "socialnet-ties")
    ties = 0
    while ties < N_WEAK_TIES:
        a = int(rng.integers(0, RING_NODES))
        b = int(rng.integers(0, RING_NODES))
        if min(_ring_gap(a, v) for v in _VENUE_NODES) < 3:
            continue
        if min(_ring_gap(b, v) for v in _VENUE_NODES) < 3:
            continue
        if _ring_gap(a, b) <= RING_K * 5 or b in adjacency[a]:
            continue  # too local (or duplicate) to be a weak tie
        adjacency[a].append(b)
        adjacency[b].append(a)
        ties += 1
    return adjacency


def build_social_world() -> tuple[GraphWorld, list[str]]:
    """Construct the network and its venues; returns (world, home names)."""
    world = GraphWorld(build_social_graph())
    for name, node, objects in _HUBS:
        world.add_venue(GraphVenue(name, node, objects))
    homes: list[str] = []
    spacing = RING_NODES // N_HOMES
    for idx in range(N_HOMES):
        name = f"Circle {idx}"
        world.add_venue(GraphVenue(
            name, idx * spacing + 5, objects=("couch", "terminal",
                                              "kettle")))
        homes.append(name)
    return world, homes
