"""The SmallVille map (100x140 tiles, as in the paper's §4.2).

Twelve houses line the north and south edges; the social and work venues
(cafe, bar, park, college, market, pharmacy, co-living studio) sit in the
middle band. Buildings are walled with a single door, so walks between
venues funnel through shared streets — giving agents realistic chances to
pass within perception radius of each other.

For the §4.3 scaling experiments, multiple independent SmallVilles are
concatenated side-by-side into one large ville (see
:func:`repro.trace.generator.generate_concatenated_trace`), exactly how
the paper scales to 1000 agents.
"""

from __future__ import annotations

from .grid import GridWorld, Venue

SMALLVILLE_WIDTH = 140
SMALLVILLE_HEIGHT = 100

#: Number of agents per SmallVille segment in the paper's setup.
AGENTS_PER_VILLE = 25


def build_smallville() -> tuple[GridWorld, list[str]]:
    """Construct the map; returns ``(world, home venue names)``."""
    world = GridWorld(SMALLVILLE_WIDTH, SMALLVILLE_HEIGHT)
    homes: list[str] = []

    def house(idx: int, x0: int, y0: int) -> None:
        name = f"House {idx}"
        world.add_venue(Venue(name, x0, y0, x0 + 5, y0 + 5,
                              objects=("bed", "desk", "stove")))
        homes.append(name)

    # One house per agent (the paper's agents live alone or in dorms; a
    # house per agent keeps sleeping agents out of each other's coupling
    # radius, matching the sparse 1.85-dependency statistic).
    for k in range(13):
        house(k, 4 + 10 * k, 4)
    for k in range(13):
        house(13 + k, 4 + 10 * k, 90)

    world.add_venue(Venue("Hobbs Cafe", 18, 42, 35, 53,
                          objects=("counter", "espresso machine", "table")))
    world.add_venue(Venue("The Rose Bar", 52, 42, 69, 53,
                          objects=("bar", "jukebox", "booth")))
    world.add_venue(Venue("Johnson Park", 90, 40, 115, 58,
                          objects=("bench", "fountain", "lawn")),
                    walled=False)
    world.add_venue(Venue("Oak Hill College", 104, 14, 124, 26,
                          objects=("lectern", "library shelf", "lab bench")))
    world.add_venue(Venue("Willow Market", 40, 66, 51, 75,
                          objects=("shelf", "register", "storage")))
    world.add_venue(Venue("Dorm Pharmacy", 76, 66, 84, 73,
                          objects=("pharmacy counter", "shelf")))
    world.add_venue(Venue("Artist Co-Living", 120, 70, 132, 82,
                          objects=("easel", "kiln", "couch")))
    return world, homes
