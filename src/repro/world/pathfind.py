"""Grid pathfinding.

Trace generation needs tens of thousands of venue-to-venue walks, so the
planner is a *distance-field* router: one BFS flood per goal tile (cached)
and greedy descent from any start. This is equivalent to shortest paths on
the 4-connected grid and amortizes perfectly across agents that share
destinations (everyone walks to the cafe at lunch). A plain A* is also
provided for one-off queries and as a cross-check in tests.
"""

from __future__ import annotations

import heapq
from collections import deque

import numpy as np

from ..errors import WorldError
from .grid import GridWorld

_UNREACHABLE = np.iinfo(np.int32).max


class PathPlanner:
    """Shortest-path routing with per-goal BFS distance fields."""

    def __init__(self, world: GridWorld) -> None:
        self.world = world
        self._fields: dict[tuple[int, int], np.ndarray] = {}

    def distance_field(self, goal: tuple[int, int]) -> np.ndarray:
        """BFS hop-count array from every tile to ``goal`` (cached)."""
        field = self._fields.get(goal)
        if field is not None:
            return field
        gx, gy = goal
        if not self.world.is_walkable(gx, gy):
            raise WorldError(f"goal {goal} is not walkable")
        h, w = self.world.height, self.world.width
        field = np.full((h, w), _UNREACHABLE, dtype=np.int32)
        field[gy, gx] = 0
        queue = deque([goal])
        walkable = self.world.walkable
        while queue:
            x, y = queue.popleft()
            d = field[y, x] + 1
            for nx, ny in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)):
                if (0 <= nx < w and 0 <= ny < h and walkable[ny, nx]
                        and field[ny, nx] == _UNREACHABLE):
                    field[ny, nx] = d
                    queue.append((nx, ny))
        self._fields[goal] = field
        return field

    def distance(self, start: tuple[int, int], goal: tuple[int, int]) -> int:
        field = self.distance_field(goal)
        d = int(field[start[1], start[0]])
        if d == _UNREACHABLE:
            raise WorldError(f"no path from {start} to {goal}")
        return d

    def next_step(self, start: tuple[int, int],
                  goal: tuple[int, int]) -> tuple[int, int]:
        """The next tile on a shortest path (``start`` if already there)."""
        if start == goal:
            return start
        field = self.distance_field(goal)
        x, y = start
        here = field[y, x]
        if here == _UNREACHABLE:
            raise WorldError(f"no path from {start} to {goal}")
        best = start
        best_d = here
        # Deterministic neighbour order keeps replay stable.
        for nx, ny in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)):
            if self.world.is_walkable(nx, ny) and field[ny, nx] < best_d:
                best, best_d = (nx, ny), field[ny, nx]
        return best

    def path(self, start: tuple[int, int],
             goal: tuple[int, int]) -> list[tuple[int, int]]:
        """Full shortest path, including both endpoints."""
        out = [start]
        pos = start
        limit = self.world.width * self.world.height + 1
        for _ in range(limit):
            if pos == goal:
                return out
            pos = self.next_step(pos, goal)
            out.append(pos)
        raise WorldError("path descent did not terminate")  # pragma: no cover


def astar(world: GridWorld, start: tuple[int, int],
          goal: tuple[int, int]) -> list[tuple[int, int]]:
    """Textbook A* with Manhattan heuristic (reference implementation)."""
    if not world.is_walkable(*start) or not world.is_walkable(*goal):
        raise WorldError("start/goal not walkable")

    def h(p: tuple[int, int]) -> int:
        return abs(p[0] - goal[0]) + abs(p[1] - goal[1])

    open_heap: list[tuple[int, int, tuple[int, int]]] = [(h(start), 0, start)]
    g_score = {start: 0}
    came: dict[tuple[int, int], tuple[int, int]] = {}
    seq = 0
    while open_heap:
        _, _, current = heapq.heappop(open_heap)
        if current == goal:
            path = [current]
            while current in came:
                current = came[current]
                path.append(current)
            path.reverse()
            return path
        for nxt in world.neighbors(*current):
            tentative = g_score[current] + 1
            if tentative < g_score.get(nxt, 1 << 30):
                g_score[nxt] = tentative
                came[nxt] = current
                seq += 1
                heapq.heappush(open_heap, (tentative + h(nxt), seq, nxt))
    raise WorldError(f"no path from {start} to {goal}")
