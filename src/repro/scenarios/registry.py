"""Scenario registration and discovery.

Scenarios register under a unique name, either with the
:func:`register_scenario` decorator::

    @register_scenario
    class FrontierOutpost(Scenario):
        name = "frontier-outpost"
        ...

or, for third-party packages, through a ``repro.scenarios`` entry point
(see ``pyproject.toml`` for how the built-ins declare theirs)::

    [project.entry-points."repro.scenarios"]
    frontier-outpost = "my_pkg.worlds:FrontierOutpost"

Entry points are resolved lazily on the first lookup miss, so importing
:mod:`repro` never pays the cost of scanning installed distributions.
"""

from __future__ import annotations

from typing import Callable, Iterable, Type

from ..errors import ScenarioError
from .base import Scenario

#: Entry-point group scanned for third-party scenarios.
ENTRY_POINT_GROUP = "repro.scenarios"


class ScenarioRegistry:
    """Name -> :class:`Scenario` singleton map with entry-point discovery."""

    def __init__(self) -> None:
        self._scenarios: dict[str, Scenario] = {}
        self._discovered = False

    # -- registration -------------------------------------------------------

    def register(self, scenario_cls: Type[Scenario]) -> Type[Scenario]:
        """Instantiate and register a scenario class; returns the class.

        Raises :class:`ScenarioError` if the name is empty or taken (two
        plugins claiming one name is a packaging bug worth failing on).
        """
        scenario = scenario_cls()
        if not scenario.name:
            raise ScenarioError(
                f"{scenario_cls.__name__} has an empty scenario name")
        if scenario.name in self._scenarios:
            raise ScenarioError(
                f"scenario {scenario.name!r} is already registered "
                f"(by {type(self._scenarios[scenario.name]).__name__})")
        self._scenarios[scenario.name] = scenario
        return scenario_cls

    def unregister(self, name: str) -> None:
        """Remove a scenario (tests use this to keep the registry clean)."""
        self._scenarios.pop(name, None)

    # -- lookup -------------------------------------------------------------

    def get(self, name: str) -> Scenario:
        """The scenario registered under ``name``.

        Unknown names trigger one entry-point discovery pass before
        failing with the list of known scenarios.
        """
        scenario = self._scenarios.get(name)
        if scenario is None and not self._discovered:
            self.discover()
            scenario = self._scenarios.get(name)
        if scenario is None:
            raise ScenarioError(
                f"unknown scenario {name!r}; registered: {self.names()}")
        return scenario

    def names(self) -> list[str]:
        """Sorted names of every registered scenario.

        Runs entry-point discovery first (once), so installed plugin
        scenarios appear in CLI choices, the smoke gate, and listings.
        """
        if not self._discovered:
            self.discover()
        return sorted(self._scenarios)

    def __contains__(self, name: str) -> bool:
        return name in self._scenarios

    def __iter__(self) -> Iterable[Scenario]:
        return iter(self._scenarios.values())

    # -- entry-point discovery ----------------------------------------------

    def discover(self, group: str = ENTRY_POINT_GROUP) -> list[str]:
        """Load scenarios advertised via entry points; returns new names.

        Names already registered in-process (the built-ins import before
        any lookup) are skipped, so an installed distribution advertising
        the built-ins does not trip the duplicate check.
        """
        self._discovered = True
        try:
            from importlib.metadata import entry_points
        except ImportError:  # pragma: no cover - py3.10+ always has it
            return []
        loaded: list[str] = []
        try:
            found = entry_points(group=group)
        except Exception:  # pragma: no cover - broken metadata on host
            return []
        for ep in found:
            if ep.name in self._scenarios:
                continue
            try:
                obj = ep.load()
            except Exception:  # a broken plugin must not break the host
                continue
            scenario = obj() if isinstance(obj, type) else obj
            if not isinstance(scenario, Scenario):
                continue
            if scenario.name in self._scenarios:
                continue
            self._scenarios[scenario.name] = scenario
            loaded.append(scenario.name)
        return loaded


#: The process-wide registry all drivers consult.
REGISTRY = ScenarioRegistry()

#: Decorator registering a scenario class with :data:`REGISTRY`.
register_scenario: Callable[[Type[Scenario]], Type[Scenario]] = \
    REGISTRY.register


def get_scenario(scenario: str | Scenario) -> Scenario:
    """Resolve a scenario name (or pass a scenario instance through)."""
    if isinstance(scenario, Scenario):
        return scenario
    return REGISTRY.get(scenario)


def scenario_names() -> list[str]:
    """Names of every registered scenario (built-ins plus plugins)."""
    return REGISTRY.names()
