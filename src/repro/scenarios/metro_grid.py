"""``metro-grid``: an OpenCity-style downtown that stresses clustering.

A 120x110 city: residential towers line the west and east edges, a 3x2
grid of office blocks fills the core, and an open Central Plaza / Metro
Station channel everyone through the same few tiles. Unlike SmallVille's
staggered villagers, metro personas share a *tight* 40-minute wake band
and a common pre-work stop at the Metro Station, so the morning and
evening rush hours produce large transient coupling clusters — the
regime where geo-clustering, not blocking, limits the OOO scheduler.
"""

from __future__ import annotations

from .._util import rng_for
from ..serving.profiles import ServingProfile
from ..world.grid import GridWorld, Venue
from ..world.persona import Persona, ScheduleEntry
from .base import Scenario, hour_step, pick_weighted
from .registry import register_scenario

METRO_WIDTH = 120
METRO_HEIGHT = 110

#: (archetype, work venue or None for an office pick, weight)
_ARCHETYPES: list[tuple[str, str | None, float]] = [
    ("office worker", None, 0.55),
    ("barista", "Night Cafe", 0.10),
    ("chef", "Food Court", 0.10),
    ("station agent", "Metro Station", 0.10),
    ("grocer", "Market Hall", 0.08),
    ("trainer", "City Gym", 0.07),
]

_OFFICES = [f"Office Block {k}" for k in range(1, 7)]

_NAMES = [
    "Aiko", "Bao", "Cass", "Dmitri", "Elena", "Farid", "Gustavo", "Hana",
    "Imani", "Jules", "Kofi", "Lena", "Marco", "Nia", "Omar", "Priya",
    "Quentin", "Rosa", "Sven", "Tessa", "Umar", "Vera", "Wen", "Ximena",
    "Yosef", "Zadie",
]


def build_metro_grid() -> tuple[GridWorld, list[str]]:
    """Construct the downtown map; returns ``(world, tower names)``."""
    world = GridWorld(METRO_WIDTH, METRO_HEIGHT)
    homes: list[str] = []

    def tower(idx: int, x0: int, y0: int) -> None:
        name = f"Tower {idx}"
        world.add_venue(Venue(name, x0, y0, x0 + 5, y0 + 5,
                              objects=("bed", "kitchenette", "balcony")))
        homes.append(name)

    # Five residential towers down each edge; three tenants per tower at
    # the default 30 agents — co-living density is part of the stress.
    for k in range(5):
        tower(k, 4, 6 + 20 * k)
    for k in range(5):
        tower(5 + k, 110, 6 + 20 * k)

    for i, x0 in enumerate((30, 55, 80)):
        for j, y0 in enumerate((20, 60)):
            world.add_venue(Venue(
                f"Office Block {1 + i + 3 * j}", x0, y0, x0 + 11, y0 + 11,
                objects=("desk pool", "meeting room", "printer")))
    world.add_venue(Venue("Central Plaza", 40, 38, 78, 54,
                          objects=("fountain", "kiosk", "bench")),
                    walled=False)
    world.add_venue(Venue("Food Court", 16, 38, 26, 50,
                          objects=("noodle stand", "grill", "long table")))
    world.add_venue(Venue("Night Cafe", 92, 38, 102, 50,
                          objects=("espresso machine", "booth", "stage")))
    world.add_venue(Venue("Metro Station", 45, 90, 75, 102,
                          objects=("turnstile", "platform", "ticket booth")),
                    walled=False)
    world.add_venue(Venue("City Gym", 30, 90, 40, 100,
                          objects=("treadmill", "weights", "mats")))
    world.add_venue(Venue("Market Hall", 84, 90, 96, 100,
                          objects=("stall", "cold room", "register")))
    return world, homes


@register_scenario
class MetroGridScenario(Scenario):
    """Dense downtown with synchronized commuter flows (rush hours)."""

    name = "metro-grid"
    description = ("OpenCity-style downtown: edge towers, office core, "
                   "and a shared Metro Station that packs the morning "
                   "rush into large coupling clusters")
    agents_per_segment = 30
    busy_hour = 12
    quiet_hour = 6
    #: 7:10-7:30am — the heart of the morning rush.
    active_window = (2580, 2700)
    social_venues = ("Food Court", "Central Plaza", "Night Cafe")
    #: Rush-hour crowds keep many coupled agents in flight at once;
    #: 0.08 of KV is where retained segments start competing.
    serving_profile = ServingProfile(
        platform="l4-8b", gpus=1, mean_prompt_tokens=640.0,
        mean_output_tokens=22.0, kv_pressure_fraction=0.08,
        description="commuter rush on L4/Llama-3-8B")

    def build_world(self):
        return build_metro_grid()

    def make_personas(self, n_agents: int, seed: int,
                      homes: list[str]) -> list[Persona]:
        personas = []
        for agent_id in range(n_agents):
            rng = rng_for(seed, "metro-persona", agent_id)
            archetype, work, _ = pick_weighted(rng, _ARCHETYPES)
            if work is None:
                work = _OFFICES[int(rng.integers(0, len(_OFFICES)))]
            home = homes[agent_id % len(homes)]
            # The defining trait: a tight 6:50-7:30 wake band, so the
            # whole city commutes through the station at once.
            wake = hour_step(6.83) + int(rng.integers(0, hour_step(0.67)))
            sleep = hour_step(22.0) + int(rng.integers(0, hour_step(1.5)))
            lunch_venue = self.social_venues[
                int(rng.integers(0, len(self.social_venues)))]
            evening_venue = self.social_venues[
                int(rng.integers(0, len(self.social_venues)))]
            lunch_start = hour_step(11.9) + int(rng.integers(
                0, hour_step(0.4)))
            schedule = (
                ScheduleEntry(0, home, "sleeping"),
                ScheduleEntry(wake, home, "morning routine"),
                ScheduleEntry(wake + hour_step(0.5), "Metro Station",
                              "commuting"),
                ScheduleEntry(wake + hour_step(1.2), work, "working"),
                ScheduleEntry(lunch_start, lunch_venue, "lunch"),
                ScheduleEntry(hour_step(13.1), work, "working"),
                ScheduleEntry(hour_step(17.5) + int(rng.integers(
                    0, hour_step(0.3))), "Metro Station", "commuting"),
                ScheduleEntry(hour_step(18.4), evening_venue, "socializing"),
                ScheduleEntry(hour_step(19.8), home, "dinner"),
                ScheduleEntry(sleep, home, "sleeping"),
            )
            personas.append(Persona(
                agent_id=agent_id,
                name=f"{_NAMES[agent_id % len(_NAMES)]}-{agent_id}",
                archetype=archetype,
                home=home,
                work=work,
                wake_step=wake,
                sleep_step=sleep,
                sociability=0.35 + 0.65 * float(rng.random()),
                schedule=schedule,
            ))
        return personas
