"""``market-town``: a trading scenario that stresses the blocking radius.

A wide 190x70 town: an open Grand Market in the middle, cottages in two
rows beside it, farms on the far west edge and freight depots on the far
east. Couriers shuttle between the market and the depots all day — long
cross-map walks whose laggards project a large §3.2 blocking cone over
everyone they pass, while traders densely packed in the market form one
long-lived social cluster. The mix (a few far-ranging stragglers + one
dense hub) is the adversarial shape for the dependency graph: leaders
keep bumping into ``block_threshold`` spheres of agents many steps
behind.
"""

from __future__ import annotations

from .._util import rng_for
from ..serving.profiles import ServingProfile
from ..world.grid import GridWorld, Venue
from ..world.persona import Persona, ScheduleEntry
from .base import Scenario, hour_step, pick_weighted
from .registry import register_scenario

MARKET_WIDTH = 190
MARKET_HEIGHT = 70

#: (archetype, work venue or None for an rng pick, weight)
_ARCHETYPES: list[tuple[str, str | None, float]] = [
    ("trader", "Grand Market", 0.35),
    ("courier", None, 0.25),   # depot assigned per-agent
    ("farmer", None, 0.20),    # farm assigned per-agent
    ("innkeeper", "Tavern", 0.10),
    ("clerk", "Guild Hall", 0.10),
]

_DEPOTS = ["East Depot", "Harbor Depot"]
_FARMS = ["West Farm", "South Orchard"]

_NAMES = [
    "Alba", "Bram", "Cerys", "Dario", "Edda", "Fenn", "Greta", "Hale",
    "Ines", "Jorun", "Kato", "Lucia", "Milo", "Nadia", "Otto", "Petra",
    "Quil", "Renzo", "Saskia", "Tobin",
]


def build_market_town() -> tuple[GridWorld, list[str]]:
    """Construct the town map; returns ``(world, cottage names)``."""
    world = GridWorld(MARKET_WIDTH, MARKET_HEIGHT)
    homes: list[str] = []

    def cottage(idx: int, x0: int, y0: int) -> None:
        name = f"Cottage {idx}"
        world.add_venue(Venue(name, x0, y0, x0 + 4, y0 + 4,
                              objects=("bed", "hearth", "chest")))
        homes.append(name)

    # Eight cottages north of the market, four south — one or two
    # residents each at the default 20 agents.
    for k in range(8):
        cottage(k, 44 + 12 * k, 4)
    for k in range(4):
        cottage(8 + k, 56 + 20 * k, 62)

    world.add_venue(Venue("Grand Market", 80, 24, 110, 46,
                          objects=("stall row", "auction block", "well")),
                    walled=False)
    world.add_venue(Venue("Tavern", 116, 26, 128, 36,
                          objects=("bar", "hearth", "long table")))
    world.add_venue(Venue("Guild Hall", 62, 26, 74, 36,
                          objects=("ledger desk", "scales", "strongbox")))
    world.add_venue(Venue("West Farm", 6, 8, 26, 24,
                          objects=("field", "barn", "trough")),
                    walled=False)
    world.add_venue(Venue("South Orchard", 6, 44, 26, 60,
                          objects=("apple trees", "press", "crates")),
                    walled=False)
    world.add_venue(Venue("East Depot", 170, 10, 182, 20,
                          objects=("loading dock", "crates", "wagon")))
    world.add_venue(Venue("Harbor Depot", 170, 48, 182, 58,
                          objects=("pier", "crane", "warehouse")))
    return world, homes


@register_scenario
class MarketTownScenario(Scenario):
    """Central marketplace plus long-range couriers (blocking stress)."""

    name = "market-town"
    description = ("trading town: dense Grand Market hub with couriers "
                   "running ~90-tile depot routes that drag wide "
                   "blocking cones across the map")
    agents_per_segment = 20
    busy_hour = 12
    quiet_hour = 6
    #: ~6:31-6:51am — farmers at work, couriers waking and setting out.
    active_window = (2350, 2470)
    social_venues = ("Grand Market", "Tavern")
    #: Long courier routes widen the spread of invocation distances —
    #: the cell where distance-aware eviction has the most to win.
    serving_profile = ServingProfile(
        platform="l4-8b", gpus=1, mean_prompt_tokens=640.0,
        mean_output_tokens=22.0, kv_pressure_fraction=0.06,
        description="market day on L4/Llama-3-8B")

    def build_world(self):
        return build_market_town()

    def make_personas(self, n_agents: int, seed: int,
                      homes: list[str]) -> list[Persona]:
        personas = []
        for agent_id in range(n_agents):
            rng = rng_for(seed, "market-persona", agent_id)
            archetype, work, _ = pick_weighted(rng, _ARCHETYPES)
            if archetype == "courier":
                work = _DEPOTS[int(rng.integers(0, len(_DEPOTS)))]
            elif archetype == "farmer":
                work = _FARMS[int(rng.integers(0, len(_FARMS)))]
            home = homes[agent_id % len(homes)]
            social = self.social_venues[
                int(rng.integers(0, len(self.social_venues)))]
            if archetype == "farmer":
                wake = hour_step(5.4) + int(rng.integers(0, hour_step(0.8)))
                sleep = hour_step(21.0) + int(rng.integers(
                    0, hour_step(1.2)))
                schedule = (
                    ScheduleEntry(0, home, "sleeping"),
                    ScheduleEntry(wake, home, "morning routine"),
                    ScheduleEntry(wake + hour_step(0.8), work, "working"),
                    ScheduleEntry(hour_step(10.5), "Grand Market",
                                  "selling"),
                    ScheduleEntry(hour_step(14.5), work, "working"),
                    ScheduleEntry(hour_step(18.0), "Tavern", "socializing"),
                    ScheduleEntry(hour_step(20.2), home, "dinner"),
                    ScheduleEntry(sleep, home, "sleeping"),
                )
            elif archetype == "courier":
                wake = hour_step(6.0) + int(rng.integers(0, hour_step(0.8)))
                sleep = hour_step(21.8) + int(rng.integers(
                    0, hour_step(1.2)))
                # Two full market<->depot round trips: each leg is a
                # ~90-tile walk that crosses the whole inhabited band.
                schedule = (
                    ScheduleEntry(0, home, "sleeping"),
                    ScheduleEntry(wake, home, "morning routine"),
                    ScheduleEntry(wake + hour_step(0.5), "Grand Market",
                                  "trading"),
                    ScheduleEntry(hour_step(9.0), work, "delivering"),
                    ScheduleEntry(hour_step(11.5), "Grand Market",
                                  "trading"),
                    ScheduleEntry(hour_step(12.9), work, "delivering"),
                    ScheduleEntry(hour_step(15.5), "Grand Market",
                                  "trading"),
                    ScheduleEntry(hour_step(17.8), social, "socializing"),
                    ScheduleEntry(hour_step(19.5), home, "dinner"),
                    ScheduleEntry(sleep, home, "sleeping"),
                )
            else:  # trader / innkeeper / clerk: hub-centric day
                wake = hour_step(6.2) + int(rng.integers(0, hour_step(1.0)))
                sleep = hour_step(21.5) + int(rng.integers(
                    0, hour_step(1.5)))
                lunch_start = hour_step(11.8) + int(rng.integers(
                    0, hour_step(0.5)))
                schedule = (
                    ScheduleEntry(0, home, "sleeping"),
                    ScheduleEntry(wake, home, "morning routine"),
                    ScheduleEntry(wake + hour_step(0.7), work, "trading"),
                    ScheduleEntry(lunch_start, social, "lunch"),
                    ScheduleEntry(hour_step(13.2), work, "trading"),
                    ScheduleEntry(hour_step(18.0), social, "socializing"),
                    ScheduleEntry(hour_step(19.8), home, "dinner"),
                    ScheduleEntry(sleep, home, "sleeping"),
                )
            personas.append(Persona(
                agent_id=agent_id,
                name=f"{_NAMES[agent_id % len(_NAMES)]}-{agent_id}",
                archetype=archetype,
                home=home,
                work=work,
                wake_step=wake,
                sleep_step=sleep,
                sociability=0.4 + 0.6 * float(rng.random()),
                schedule=schedule,
            ))
        return personas
