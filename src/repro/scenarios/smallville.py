"""SmallVille as a registered scenario (the paper's §4 workload).

The map and persona factory live in :mod:`repro.world` unchanged — this
module only adapts them to the :class:`Scenario` contract, so traces
generated through the registry are bit-identical to the pre-registry
ones (the calibration tests in ``tests/test_trace.py`` pin this).
"""

from __future__ import annotations

from ..serving.profiles import ServingProfile
from ..world.persona import SOCIAL_VENUES, Persona, make_personas
from ..world.smallville import AGENTS_PER_VILLE, build_smallville
from .base import Scenario
from .registry import register_scenario


@register_scenario
class SmallvilleScenario(Scenario):
    """25 generative agents in the original 140x100 SmallVille."""

    name = "smallville"
    description = ("GenAgent SmallVille: houses ring the map, social and "
                   "work venues in the middle band (paper §4.2)")
    agents_per_segment = AGENTS_PER_VILLE
    busy_hour = 12
    quiet_hour = 6
    #: ~6:23-6:43am — wake chains, morning walks (the window the seed
    #: equivalence tests already exercised).
    active_window = (2300, 2420)
    social_venues = tuple(SOCIAL_VENUES)
    #: The paper's headline deployment: Llama-3-8B on L4s. Token means
    #: match the measured GenAgent trace (§4.1: ~643 prompt / ~22 out).
    serving_profile = ServingProfile(
        platform="l4-8b", gpus=1, mean_prompt_tokens=642.6,
        mean_output_tokens=21.9, kv_pressure_fraction=0.08,
        description="GenAgent day on L4/Llama-3-8B (paper §4.1)")

    def build_world(self):
        return build_smallville()

    def make_personas(self, n_agents: int, seed: int,
                      homes: list[str]) -> list[Persona]:
        return make_personas(n_agents, seed, homes=homes)
