"""The :class:`Scenario` contract: everything a pluggable world provides.

A scenario bundles the four things every driver needs to run a workload
end-to-end: a map builder, a persona factory, the behavior model wiring
(which venues count as social, which step window is "busy"), and default
trace-generation parameters (agents per concatenated segment, the window
used by smoke tests). Scenarios are registered with the
:class:`repro.scenarios.ScenarioRegistry` and addressed by name from the
trace generator, the bench CLI, the live engine, and the tests — so a new
world automatically flows through every driver, benchmark, and the
OOO-equivalence CI gate.

Invariants a scenario's world must uphold (checked by the registry's
``validate`` and by ``tests/test_scenarios.py``):

* agents move at most ``max_vel`` per step *in the scenario's metric*
  (one tile on grids, one hop on graphs — the §3.2 bound) — guaranteed
  by :class:`repro.world.behavior.BehaviorModel` and its graph variant;
* every walkable tile is reachable from every other (no sealed rooms),
  so pathfinding and venue-to-venue walks never fail mid-trace;
* every venue named by a persona's home/work/schedule exists in the map.

A scenario may also own its **dependency geometry**: setting
:attr:`Scenario.dependency_config` (and, for non-standard spaces,
overriding :meth:`Scenario.space`) makes every driver — replay, live,
oracle mining, the bench gates — build its
:class:`~repro.core.rules.DependencyRules` from the scenario instead of
the run config (see :func:`repro.core.rules.rules_for`). This is how
``metric="graph"`` worlds supply the :class:`~repro.core.space.GraphSpace`
over their generated network, including the disjoint-union space for
concatenated multi-segment traces.
"""

from __future__ import annotations

import abc
from typing import Sequence

from ..config import STEPS_PER_HOUR, DependencyConfig
from ..errors import ScenarioError
from ..serving.profiles import ServingProfile
from ..world.behavior import BehaviorModel
from ..world.grid import GridWorld
from ..world.pathfind import PathPlanner
from ..world.persona import Persona


def hour_step(h: float) -> int:
    """Step-of-day corresponding to hour-of-day ``h`` (fractional ok)."""
    return int(h * STEPS_PER_HOUR)


def pick_weighted(rng, items: Sequence[tuple]) -> tuple:
    """Pick one ``(..., weight)`` tuple proportionally to its last field."""
    total = sum(item[-1] for item in items)
    pick = rng.random() * total
    cumulative = 0.0
    for item in items:
        cumulative += item[-1]
        if pick <= cumulative:
            return item
    return items[-1]


class Scenario(abc.ABC):
    """A pluggable world: map + personas + behavior/trace defaults.

    Subclasses define the class attributes below plus :meth:`build_world`
    and :meth:`make_personas`; the base class provides shared-world
    caching and the :meth:`model` factory every driver consumes.
    """

    #: Registry key (``repro-bench run fig5 --scenario <name>``).
    name: str = ""
    #: One-line description shown by ``repro-bench scenarios``.
    description: str = ""
    #: Agents per segment when concatenating maps side-by-side (§4.3).
    agents_per_segment: int = 25
    #: Hour-of-day with the scenario's LLM-call peak / trough.
    busy_hour: int = 12
    quiet_hour: int = 6
    #: ``(start, end)`` steps of an *active* early-day window — agents are
    #: awake, moving and calling the LLM — used by the smoke replays and
    #: the OOO-equivalence tests (generation only needs ``end`` steps).
    active_window: tuple[int, int] = (2300, 2420)
    #: Venues where conversations spark easily (scenario's social fabric).
    social_venues: tuple[str, ...] = ()
    #: Dependency-rule parameters this world's geometry requires, or
    #: ``None`` to accept the run's ``SchedulerConfig.dependency``
    #: unchanged. Graph-metric worlds set this (and override
    #: :meth:`space`) so drivers measure distance on their network.
    dependency_config: DependencyConfig | None = None
    #: Serving-side workload declaration: which simulated deployment the
    #: end-to-end benches run this world on and what token traffic to
    #: expect (``repro-bench serving --list-profiles``).
    serving_profile: ServingProfile = ServingProfile()
    #: Optional per-function token-shape overrides, merged over the
    #: GenAgent defaults: ``{func: (base prompt tokens, retrieval top_k,
    #: output lo, output hi)}``. ``None`` keeps the paper's
    #: distributions (mean ~643 prompt / ~22 output tokens).
    token_shapes: dict[str, tuple[int, int, int, int]] | None = None

    def __init__(self) -> None:
        self._world: GridWorld | None = None
        self._homes: list[str] | None = None
        self._planner: PathPlanner | None = None

    # -- abstract surface ---------------------------------------------------

    @abc.abstractmethod
    def build_world(self) -> tuple[GridWorld, list[str]]:
        """Construct a fresh map; returns ``(world, home venue names)``."""

    @abc.abstractmethod
    def make_personas(self, n_agents: int, seed: int,
                      homes: list[str]) -> list[Persona]:
        """Deterministic persona factory (same seed -> same personas)."""

    # -- shared-world caching ----------------------------------------------

    def world(self) -> tuple[GridWorld, list[str]]:
        """The scenario's (immutable, shared) map and home-venue names."""
        if self._world is None:
            self._world, self._homes = self.build_world()
        return self._world, list(self._homes)

    def planner(self) -> PathPlanner:
        """Shared pathfinder — BFS distance fields amortize across runs."""
        if self._planner is None:
            world, _ = self.world()
            self._planner = PathPlanner(world)
        return self._planner

    # -- dependency geometry ------------------------------------------------

    @property
    def metric(self) -> str:
        """Distance metric of this world (``repro-bench scenarios``)."""
        dep = self.dependency_config
        return dep.metric if dep is not None else "euclidean"

    def space(self, segments: int = 1):
        """The :class:`~repro.core.space.Space` this world measures in.

        ``segments`` matters only to spaces tied to generated structure
        (graph worlds must cover the node ids of every concatenated
        trace segment); coordinate metrics ignore it. Scenarios with a
        non-standard space (``metric="graph"``) must override this.
        """
        from ..core.space import space_for  # lazy: avoid import cycle
        dep = self.dependency_config or DependencyConfig()
        if dep.metric == "graph":
            raise ScenarioError(
                f"{self.name}: graph-metric scenarios must override "
                f"space() to supply their adjacency")
        return space_for(dep.metric)

    def rules(self, config=None, segments: int = 1):
        """Dependency rules every driver should run this world under.

        With no :attr:`dependency_config` the scheduler config's
        parameters pass through untouched (the historical behavior);
        otherwise the scenario's geometry is authoritative.
        """
        from ..core.rules import DependencyRules  # lazy: avoid cycle
        dep = self.dependency_config
        if dep is None:
            if config is not None:
                return DependencyRules(config.dependency)
            return DependencyRules(DependencyConfig())
        return DependencyRules(dep, space=self.space(segments))

    # -- driver-facing factories -------------------------------------------

    def model(self, n_agents: int, seed: int) -> BehaviorModel:
        """A ready-to-step :class:`BehaviorModel` for this scenario."""
        if n_agents < 1:
            raise ScenarioError(
                f"{self.name}: need at least one agent, got {n_agents}")
        world, homes = self.world()
        personas = self.make_personas(n_agents, seed, homes)
        return BehaviorModel(world, personas, seed=seed,
                             planner=self.planner(),
                             social_venues=self.social_venues or None,
                             func_shapes=self.token_shapes)

    def fallback_client(self):
        """Degraded-mode LLM client for fault-tolerant live runs.

        When a cluster exhausts its redispatch budget (or the circuit
        breaker opens) the live engine serves its members from this
        client instead of the failing dependency. The default is the
        canned hold-current-plan completion; scenarios whose personas
        need richer degraded behavior override this.
        """
        from ..faults import FallbackLLMClient  # lazy: avoid cycle
        return FallbackLLMClient()

    def validate(self) -> None:
        """Check the map invariants every driver relies on (fail early)."""
        import numpy as np

        world, homes = self.world()
        if not homes:
            raise ScenarioError(f"{self.name}: no home venues")
        for name in homes:
            if name not in world.venues:
                raise ScenarioError(
                    f"{self.name}: home {name!r} is not a venue")
        for name in self.social_venues:
            if name not in world.venues:
                raise ScenarioError(
                    f"{self.name}: social venue {name!r} is not a venue")
        # Sample the persona factory: every venue a persona references
        # must exist, or trace generation fails deep in the world loop.
        for p in self.make_personas(min(8, self.agents_per_segment),
                                    seed=0, homes=homes):
            for venue_name in {p.home, p.work,
                               *(e.venue for e in p.schedule)}:
                if venue_name not in world.venues:
                    raise ScenarioError(
                        f"{self.name}: persona {p.name!r} references "
                        f"unknown venue {venue_name!r}")
        start, end = self.active_window
        if not 0 <= start < end:
            raise ScenarioError(
                f"{self.name}: bad active_window {self.active_window}")
        # Full connectivity: one BFS flood must reach every walkable tile.
        field = self.planner().distance_field(
            world.venue(homes[0]).center)
        reachable = int((field < np.iinfo(np.int32).max).sum())
        walkable = int(world.walkable.sum())
        if reachable != walkable:
            raise ScenarioError(
                f"{self.name}: map not fully connected "
                f"({reachable}/{walkable} tiles reachable)")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Scenario {self.name!r}>"
