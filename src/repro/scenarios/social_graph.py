"""``social-graph``: agents on a small-world network, hop-distance rules.

The paper's §6 extension case made first-class: a Watts-Strogatz-style
ring-with-weak-ties network (see :mod:`repro.world.socialnet`) where
positions are graph nodes, movement is one hop per step, and the
dependency rules measure **hop distance** (``DependencyConfig(radius_p=1,
max_vel=1, metric="graph")``). Home "circles" sit ~5 hops apart around
the ring and four hub venues pull the population together for work,
lunch, and evening gatherings — so sleeping laggards decouple from early
risers by graph distance exactly as SmallVille's villagers do by tiles,
giving the OOO scheduler real headroom, while hub hours produce genuine
coupling clusters. The scenario owns its :class:`GraphSpace` (including
the disjoint-union space for concatenated multi-segment traces), which
the landmark-bucketed zero-rescan scheduler consumes directly.
"""

from __future__ import annotations

from .._util import rng_for
from ..config import DependencyConfig
from ..errors import ScenarioError
from ..serving.profiles import ServingProfile
from ..world.persona import Persona, ScheduleEntry
from ..world.socialnet import (GraphPlanner, SocialGraphBehavior,
                               build_social_world)
from .base import Scenario, hour_step, pick_weighted
from .registry import register_scenario

#: (archetype, work hub or None for a weighted hub pick, weight)
_ARCHETYPES: list[tuple[str, str | None, float]] = [
    ("organizer", "Agora", 0.20),
    ("archivist", "Forum", 0.15),
    ("trader", "Bazaar", 0.20),
    ("gardener", "Commons", 0.15),
    ("wanderer", None, 0.30),
]

_HUB_NAMES = ("Agora", "Forum", "Bazaar", "Commons")

_NAMES = [
    "Anshul", "Beatriz", "Chidi", "Dana", "Emre", "Freya", "Goran",
    "Hilda", "Ines", "Jiro", "Keiko", "Lamine", "Mirela", "Noor",
    "Otso", "Paloma", "Quim", "Renata", "Samir", "Tova", "Ulf",
    "Violeta", "Wesley", "Xia",
]


@register_scenario
class SocialGraphScenario(Scenario):
    """Small-world network with hop-distance (graph metric) rules."""

    name = "social-graph"
    description = ("small-world social network (§6): one-hop moves on a "
                   "ring-with-weak-ties graph, hop-distance dependency "
                   "rules via the landmark-bucketed GraphSpace")
    agents_per_segment = 24
    busy_hour = 12
    quiet_hour = 6
    #: 6:40-7:00am — early risers already commuting between circles
    #: while heavy sleepers lag several steps behind.
    active_window = (2400, 2520)
    social_venues = _HUB_NAMES
    #: Perceive/chat with direct neighbours; information travels one hop
    #: per step. The coupling threshold is therefore 2 hops.
    dependency_config = DependencyConfig(radius_p=1.0, max_vel=1.0,
                                         metric="graph")
    #: Commute gaps between circles spread invocation distances wide
    #: — a strong cell for distance-over-LRU eviction.
    serving_profile = ServingProfile(
        platform="l4-8b", gpus=1, mean_prompt_tokens=640.0,
        mean_output_tokens=22.0, kv_pressure_fraction=0.06,
        description="small-world network on L4/Llama-3-8B")

    def __init__(self) -> None:
        super().__init__()
        self._spaces: dict[int, object] = {}

    # -- world --------------------------------------------------------------

    def build_world(self):
        return build_social_world()

    def planner(self) -> GraphPlanner:
        if self._planner is None:
            world, _ = self.world()
            self._planner = GraphPlanner(world)
        return self._planner

    # -- dependency geometry -------------------------------------------------

    def space(self, segments: int = 1):
        """Hop-distance space over ``segments`` disjoint network copies.

        Concatenated traces offset segment *k*'s node ids by
        ``k * (width + 1)`` (see ``concat_traces``); the union space
        mirrors that, so cross-segment distances are infinite — the
        graph analogue of the paper's side-by-side map segments.
        """
        from ..core.space import GraphSpace  # lazy: avoid import cycle
        space = self._spaces.get(segments)
        if space is None:
            world, _ = self.world()
            stride = world.width + 1
            adjacency = {}
            for k in range(segments):
                off = k * stride
                for node, neigh in world.adjacency.items():
                    adjacency[(node + off, 0)] = tuple(
                        (other + off, 0) for other in neigh)
            space = GraphSpace(adjacency)
            self._spaces[segments] = space
        return space

    # -- population ----------------------------------------------------------

    def model(self, n_agents: int, seed: int) -> SocialGraphBehavior:
        if n_agents < 1:
            raise ScenarioError(
                f"{self.name}: need at least one agent, got {n_agents}")
        world, homes = self.world()
        personas = self.make_personas(n_agents, seed, homes)
        return SocialGraphBehavior(
            world, personas, seed=seed, space=self.space(),
            planner=self.planner(), social_venues=self.social_venues)

    def make_personas(self, n_agents: int, seed: int,
                      homes: list[str]) -> list[Persona]:
        personas = []
        for agent_id in range(n_agents):
            rng = rng_for(seed, "socialgraph-persona", agent_id)
            archetype, work, _ = pick_weighted(rng, _ARCHETYPES)
            if work is None:
                work = _HUB_NAMES[int(rng.integers(0, len(_HUB_NAMES)))]
            home = homes[agent_id % len(homes)]
            # Staggered wake band (6-8am, SmallVille-style): early
            # risers run ahead of sleepers by hop distance.
            wake = hour_step(6.0) + int(rng.integers(0, hour_step(2.0)))
            sleep = hour_step(21.5) + int(rng.integers(0, hour_step(2.0)))
            lunch_hub = _HUB_NAMES[int(rng.integers(0, len(_HUB_NAMES)))]
            evening_hub = _HUB_NAMES[int(rng.integers(0, len(_HUB_NAMES)))]
            lunch_start = hour_step(11.8) + int(rng.integers(
                0, hour_step(0.6)))
            schedule = (
                ScheduleEntry(0, home, "sleeping"),
                ScheduleEntry(wake, home, "morning routine"),
                ScheduleEntry(wake + hour_step(0.6), work, "working"),
                ScheduleEntry(lunch_start, lunch_hub, "lunch"),
                ScheduleEntry(hour_step(13.2), work, "working"),
                ScheduleEntry(hour_step(17.8), evening_hub, "socializing"),
                ScheduleEntry(hour_step(19.6), home, "dinner"),
                ScheduleEntry(sleep, home, "sleeping"),
            )
            personas.append(Persona(
                agent_id=agent_id,
                name=f"{_NAMES[agent_id % len(_NAMES)]}-{agent_id}",
                archetype=archetype,
                home=home,
                work=work,
                wake_step=wake,
                sleep_step=sleep,
                sociability=0.3 + 0.7 * float(rng.random()),
                schedule=schedule,
            ))
        return personas

    # -- invariants ----------------------------------------------------------

    def validate(self) -> None:
        """Graph-world invariants (the GridWorld checks do not apply)."""
        world, homes = self.world()
        if not homes:
            raise ScenarioError(f"{self.name}: no home venues")
        for name in (*homes, *self.social_venues):
            if name not in world.venues:
                raise ScenarioError(
                    f"{self.name}: {name!r} is not a venue")
        for p in self.make_personas(min(8, self.agents_per_segment),
                                    seed=0, homes=homes):
            for venue_name in {p.home, p.work,
                               *(e.venue for e in p.schedule)}:
                if venue_name not in world.venues:
                    raise ScenarioError(
                        f"{self.name}: persona {p.name!r} references "
                        f"unknown venue {venue_name!r}")
        start, end = self.active_window
        if not 0 <= start < end:
            raise ScenarioError(
                f"{self.name}: bad active_window {self.active_window}")
        # Full connectivity: one BFS field must reach every node, or
        # venue-to-venue walks (and the hop metric) break mid-trace.
        field = self.planner().distance_field(
            world.venue(homes[0]).center)
        if len(field) != world.n_nodes:
            raise ScenarioError(
                f"{self.name}: network not connected "
                f"({len(field)}/{world.n_nodes} nodes reachable)")
