"""Pluggable scenario subsystem: registry + the built-in worlds.

Every workload the drivers, benchmarks, and tests run is a *scenario*: a
map builder, a persona factory, the social/behavior wiring, and default
trace parameters, registered by name (see :mod:`repro.scenarios.base`).
Importing this package registers the built-ins; third-party packages add
theirs through the ``repro.scenarios`` entry-point group and every
driver — replay, live, bench CLI, and the OOO-equivalence CI gate —
picks them up by name with no further changes.

    >>> from repro.scenarios import get_scenario, scenario_names
    >>> scenario_names()
    ['market-town', 'metro-grid', 'smallville', 'social-graph']
    >>> model = get_scenario("metro-grid").model(n_agents=8, seed=0)

Scenarios are not grid-only: a scenario that sets
``dependency_config`` (and overrides ``space()``) owns its distance
geometry — ``social-graph`` runs on a small-world network under
hop-distance (``metric="graph"``) rules.
"""

from .base import Scenario, hour_step, pick_weighted
from .registry import (ENTRY_POINT_GROUP, REGISTRY, ScenarioRegistry,
                       get_scenario, register_scenario, scenario_names)

# Importing the modules registers the built-ins with REGISTRY.
from .smallville import SmallvilleScenario
from .metro_grid import MetroGridScenario, build_metro_grid
from .market_town import MarketTownScenario, build_market_town
from .social_graph import SocialGraphScenario

__all__ = [
    "Scenario",
    "ScenarioRegistry",
    "REGISTRY",
    "ENTRY_POINT_GROUP",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "hour_step",
    "pick_weighted",
    "SmallvilleScenario",
    "MetroGridScenario",
    "MarketTownScenario",
    "SocialGraphScenario",
    "build_metro_grid",
    "build_market_town",
]
