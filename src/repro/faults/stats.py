"""Fault accounting shared by the live engine and the chaos bench."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FaultStats:
    """Counters for every fault-handling path a run exercised.

    Attached to :class:`~repro.live.engine.LiveResult` (live runs) and
    folded into ``DriverStats.extra`` (replay runs, serving-side faults
    only). The chaos gate asserts the relevant counters are non-zero per
    schedule — an injected fault that no counter saw means the plumbing
    silently dropped it.
    """

    #: LLM-call retries that were attempted (transient errors/timeouts).
    llm_retries: int = 0
    #: Calls that exhausted their retry budget or failed hard.
    llm_failures: int = 0
    #: Calls whose wall-clock exceeded the policy's ``call_timeout``.
    llm_timeouts: int = 0
    #: Completions served by the fallback client (breaker open or the
    #: cluster's redispatch budget exhausted).
    degraded_completions: int = 0
    #: Clusters rolled back via ``abort_running`` after a failure ack.
    aborted_clusters: int = 0
    #: Cluster dispatches that were retries of an aborted cluster.
    redispatches: int = 0
    #: Circuit-breaker transitions.
    breaker_opens: int = 0
    breaker_closes: int = 0
    #: KV-store optimistic-transaction retries during the run.
    tx_retries: int = 0
    #: Faults the chaos layer injected, by kind (empty without chaos).
    injected: dict[str, int] = field(default_factory=dict)
    #: Worker threads abandoned at shutdown (stuck past the join grace).
    leaked_workers: int = 0
    #: Serving-side: replica blackouts, requests rerouted + re-prefilled,
    #: retained KV tokens lost.
    replica_blackouts: int = 0
    rerouted_requests: int = 0
    lost_retained_tokens: int = 0

    def as_dict(self) -> dict:
        """Flat dict for JSON reports and ``DriverStats.extra``."""
        out = {
            "llm_retries": self.llm_retries,
            "llm_failures": self.llm_failures,
            "llm_timeouts": self.llm_timeouts,
            "degraded_completions": self.degraded_completions,
            "aborted_clusters": self.aborted_clusters,
            "redispatches": self.redispatches,
            "breaker_opens": self.breaker_opens,
            "breaker_closes": self.breaker_closes,
            "tx_retries": self.tx_retries,
            "leaked_workers": self.leaked_workers,
            "replica_blackouts": self.replica_blackouts,
            "rerouted_requests": self.rerouted_requests,
            "lost_retained_tokens": self.lost_retained_tokens,
        }
        for kind, count in sorted(self.injected.items()):
            out[f"injected_{kind}"] = count
        return out

    @property
    def any_faults(self) -> bool:
        """Whether any fault path (injected or organic) fired at all."""
        return any(v for v in self.as_dict().values())
