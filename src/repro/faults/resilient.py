"""Retry, backoff, and circuit breaking around any ``LLMClient``.

:class:`ResilientClient` is what the live engine's workers actually call:
it executes the wrapped client's ``complete`` under the
:class:`~repro.config.FaultPolicy` — bounded retries with seeded jittered
exponential backoff for transient failures and timeouts, a
:class:`CircuitBreaker` tracking consecutive primary failures, and a
fallback client that serves degraded completions while the breaker is
open. Hard failures (:class:`~repro.errors.LLMCallError`) propagate to
the worker, whose failure ack triggers the controller's
abort-and-redispatch path.
"""

from __future__ import annotations

import random
import threading
import time

from ..config import FaultPolicy
from ..errors import LLMCallError, TransientLLMError


class FallbackLLMClient:
    """Deterministic canned completions — the degraded-mode plan.

    Scenario subclasses can provide a richer plan via
    ``Scenario.fallback_client``; this default returns a fixed string,
    which is sufficient for behavior programs that act on world state
    rather than completion text.
    """

    def __init__(self, text: str = "fallback: hold current plan") -> None:
        self.text = text
        self.calls = 0
        self._lock = threading.Lock()

    def complete(self, prompt: str, max_tokens: int,
                 priority: float = 0.0) -> str:
        with self._lock:
            self.calls += 1
        return self.text


class CircuitBreaker:
    """Consecutive-failure breaker with a half-open trial state.

    ``threshold`` consecutive failures open the circuit; after
    ``cooldown`` seconds one trial call is allowed through (half-open) —
    success closes the circuit, failure re-opens it for another cooldown.
    Thread-safe; transition counts feed :class:`FaultStats`.
    """

    def __init__(self, threshold: int, cooldown: float) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self._failures = 0
        self._opened_at: float | None = None
        self._trial_in_flight = False
        self._lock = threading.Lock()
        self.opens = 0
        self.closes = 0

    @property
    def is_open(self) -> bool:
        with self._lock:
            return self._opened_at is not None

    def allow_call(self) -> bool:
        """Whether the primary client may be tried right now."""
        with self._lock:
            if self._opened_at is None:
                return True
            if self._trial_in_flight:
                return False
            if time.monotonic() - self._opened_at >= self.cooldown:
                self._trial_in_flight = True  # half-open: one trial
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            if self._opened_at is not None:
                self._opened_at = None
                self.closes += 1
            self._trial_in_flight = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            self._trial_in_flight = False
            if self._opened_at is None and self._failures >= self.threshold:
                self._opened_at = time.monotonic()
                self.opens += 1
            elif self._opened_at is not None:
                # A failed half-open trial restarts the cooldown clock.
                self._opened_at = time.monotonic()


class ResilientClient:
    """Policy-enforcing wrapper the live engine's workers call.

    Per call: if the breaker is open (and not due for a trial), serve the
    fallback immediately (a *degraded completion*). Otherwise try the
    primary up to ``1 + max_call_retries`` times, sleeping a seeded
    jittered exponential backoff between attempts; only
    :class:`TransientLLMError` and over-budget calls (timeouts) are
    retried. A hard failure or an exhausted budget records a breaker
    failure and raises :class:`LLMCallError` to the worker.
    """

    def __init__(self, inner, policy: FaultPolicy,
                 fallback=None) -> None:
        self.inner = inner
        self.policy = policy
        self.fallback = fallback if fallback is not None \
            else FallbackLLMClient()
        self.breaker = CircuitBreaker(policy.breaker_threshold,
                                      policy.breaker_cooldown)
        self._rng = random.Random(policy.seed)
        self._lock = threading.Lock()
        self.retries = 0
        self.failures = 0
        self.timeouts = 0
        self.degraded = 0

    # -- counters (thread-safe) -----------------------------------------

    def _bump(self, attr: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, attr, getattr(self, attr) + amount)

    def _backoff(self, attempt: int) -> None:
        policy = self.policy
        delay = min(policy.backoff_max,
                    policy.backoff_base * policy.backoff_factor ** attempt)
        with self._lock:
            jitter = 1.0 + self._rng.random() * policy.backoff_jitter
        time.sleep(delay * jitter)

    # -- the client surface ----------------------------------------------

    def complete(self, prompt: str, max_tokens: int,
                 priority: float = 0.0) -> str:
        if not self.breaker.allow_call():
            self._bump("degraded")
            return self.fallback.complete(prompt, max_tokens,
                                          priority=priority)
        policy = self.policy
        attempts = 1 + policy.max_call_retries
        last_exc: Exception | None = None
        for attempt in range(attempts):
            if attempt > 0:
                self._bump("retries")
                self._backoff(attempt - 1)
            started = time.monotonic()
            try:
                result = self.inner.complete(prompt, max_tokens,
                                             priority=priority)
            except TransientLLMError as exc:
                last_exc = exc
                continue
            except LLMCallError as exc:
                self._bump("failures")
                self.breaker.record_failure()
                raise
            if time.monotonic() - started > policy.call_timeout:
                # The call completed but blew its budget: treat it like a
                # transient failure (a real deployment would have
                # abandoned it) and retry.
                self._bump("timeouts")
                last_exc = TransientLLMError(
                    f"LLM call exceeded call_timeout="
                    f"{policy.call_timeout}s")
                continue
            self.breaker.record_success()
            return result
        self._bump("failures")
        self.breaker.record_failure()
        raise LLMCallError(
            f"LLM call failed after {attempts} attempts: "
            f"{last_exc!r}") from last_exc
