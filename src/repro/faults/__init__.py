"""Fault model for the execution layers (chaos injection + resilience).

The live engine assumes nothing about why an LLM call or a worker commit
fails — this package supplies both halves of the fault story:

* **injection** — :class:`ChaosClient` wraps any
  :class:`~repro.live.clients.LLMClient` and injects transient errors,
  hard failures, and straggler latency from a seeded
  :class:`FaultSchedule`; :meth:`repro.kvstore.KVStore.force_conflicts`
  forces ``WatchError`` bursts on the transaction path; and
  :meth:`repro.serving.ServingEngine.blackout_replica` kills a replica
  (retained KV lost, in-flight requests rerouted and re-prefilled);
* **resilience** — :class:`ResilientClient` adds per-call timeouts,
  bounded retries with seeded exponential backoff, and a
  :class:`CircuitBreaker` that degrades to a fallback client
  (:class:`FallbackLLMClient`, or a scenario-provided plan) once the
  primary looks down; :class:`FaultStats` accounts for every exercised
  path; :func:`scheduler_diagnostics` renders the watchdog's dump.

Everything is seeded and deterministic, so the chaos CI gate can assert
bit-identical world state under injected failure.
"""

from .chaos import ChaosClient, FaultSchedule
from .diagnostics import scheduler_diagnostics
from .resilient import CircuitBreaker, FallbackLLMClient, ResilientClient
from .stats import FaultStats

__all__ = [
    "ChaosClient",
    "FaultSchedule",
    "CircuitBreaker",
    "FallbackLLMClient",
    "ResilientClient",
    "FaultStats",
    "scheduler_diagnostics",
]
