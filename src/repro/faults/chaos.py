"""Deterministic chaos injection for the LLM-client layer.

:class:`FaultSchedule` draws one verdict per call from a seeded stream,
so a given ``(seed, rates)`` pair always injects the same multiset of
faults; :class:`ChaosClient` wraps any client and acts the verdicts out.
The stream is shared across worker threads under a lock — thread
interleaving may permute *which* call gets *which* verdict between runs,
but the equivalence gate does not care: the simulation's final state must
be identical no matter where the faults land.
"""

from __future__ import annotations

import random
import threading
import time

from ..errors import ConfigError, LLMCallError, TransientLLMError

#: Verdict kinds a schedule can produce.
FAULT_KINDS = ("transient", "hard", "straggler")


class FaultSchedule:
    """A seeded per-call fault stream.

    ``transient_rate`` / ``hard_rate`` are per-call probabilities of a
    retryable and a non-retryable failure; ``straggler_rate`` is the
    probability of an added ``straggler_delay``-second sleep. ``burst``
    forces the first ``burst`` calls to fail hard regardless of rates —
    the knob that deterministically drives a circuit breaker open.
    """

    def __init__(self, seed: int = 0, transient_rate: float = 0.0,
                 hard_rate: float = 0.0, straggler_rate: float = 0.0,
                 straggler_delay: float = 0.01, burst: int = 0) -> None:
        for name, rate in (("transient_rate", transient_rate),
                           ("hard_rate", hard_rate),
                           ("straggler_rate", straggler_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {rate}")
        if straggler_delay < 0:
            raise ConfigError(
                f"straggler_delay must be >= 0, got {straggler_delay}")
        if burst < 0:
            raise ConfigError(f"burst must be >= 0, got {burst}")
        self.seed = seed
        self.transient_rate = transient_rate
        self.hard_rate = hard_rate
        self.straggler_rate = straggler_rate
        self.straggler_delay = straggler_delay
        self.burst = burst
        self._rng = random.Random(seed)
        self._calls = 0
        self._lock = threading.Lock()

    def next_verdict(self) -> tuple[str | None, float]:
        """``(kind, delay)`` for the next call; kind None = clean."""
        with self._lock:
            index = self._calls
            self._calls += 1
            if index < self.burst:
                return "hard", 0.0
            draw = self._rng.random()
        if draw < self.hard_rate:
            return "hard", 0.0
        draw -= self.hard_rate
        if draw < self.transient_rate:
            return "transient", 0.0
        draw -= self.transient_rate
        if draw < self.straggler_rate:
            return "straggler", self.straggler_delay
        return None, 0.0


class ChaosClient:
    """Wraps an ``LLMClient``, injecting faults from a seeded schedule.

    Transient faults raise :class:`TransientLLMError` (retryable by a
    :class:`~repro.faults.resilient.ResilientClient`); hard faults raise
    :class:`LLMCallError`; stragglers sleep before delegating. Injection
    counts are exposed via :attr:`injected` for the chaos gate.
    """

    def __init__(self, inner, schedule: FaultSchedule) -> None:
        self.inner = inner
        self.schedule = schedule
        self._lock = threading.Lock()
        self.injected: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    def _count(self, kind: str) -> None:
        with self._lock:
            self.injected[kind] += 1

    def complete(self, prompt: str, max_tokens: int,
                 priority: float = 0.0) -> str:
        kind, delay = self.schedule.next_verdict()
        if kind == "hard":
            self._count(kind)
            raise LLMCallError("chaos: injected hard LLM failure")
        if kind == "transient":
            self._count(kind)
            raise TransientLLMError("chaos: injected transient LLM error")
        if kind == "straggler":
            self._count(kind)
            time.sleep(delay)
        return self.inner.complete(prompt, max_tokens, priority=priority)
