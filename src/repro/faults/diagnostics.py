"""Diagnostic dump for scheduler stalls and watchdog fires.

Shared by the live engine's no-progress watchdog and the replay driver's
stall check so both hang classes surface the same evidence: who is
blocked on whom, what is still marked running, how deep the queues are,
and how stale the last ack is.
"""

from __future__ import annotations

#: Cap on enumerated agents per section so a million-agent dump stays
#: readable; the totals are always exact.
_MAX_LISTED = 20


def scheduler_diagnostics(*, done: int, total: int,
                          blocked: dict[int, list[int]] | None = None,
                          running: list[int] | None = None,
                          ready_depth: int | None = None,
                          ack_depth: int | None = None,
                          last_ack_age: float | None = None,
                          redispatches: int | None = None) -> str:
    """Render one multi-line stall/watchdog report."""
    lines = [f"progress: {done}/{total} agents done"]
    if blocked is not None:
        shown = dict(sorted(blocked.items())[:_MAX_LISTED])
        suffix = "" if len(blocked) <= _MAX_LISTED \
            else f" (+{len(blocked) - _MAX_LISTED} more)"
        lines.append(
            f"blocked pairs ({len(blocked)} agents){suffix}: {shown}")
    if running is not None:
        shown_run = sorted(running)[:_MAX_LISTED]
        suffix = "" if len(running) <= _MAX_LISTED \
            else f" (+{len(running) - _MAX_LISTED} more)"
        lines.append(
            f"running clusters ({len(running)} agents){suffix}: "
            f"{shown_run}")
    if ready_depth is not None or ack_depth is not None:
        lines.append(
            f"queue depths: ready={ready_depth} ack={ack_depth}")
    if last_ack_age is not None:
        lines.append(f"last ack age: {last_ack_age:.3f}s")
    if redispatches is not None:
        lines.append(f"redispatches so far: {redispatches}")
    return "\n  ".join(lines)
