"""Tour every registered scenario: map, population, and OOO headroom.

For each scenario in the registry this prints a thumbnail of the map
(walls and venues), the persona mix, and a quick replay of the active
window comparing parallel-sync against metropolis — the same check the
CI smoke gate enforces, in human-readable form. Third-party scenarios
installed through the ``repro.scenarios`` entry point show up here
automatically.

Run:  python examples/scenario_showcase.py [--agents 10]
"""

import argparse
from collections import Counter

from repro import SchedulerConfig, run_replay
from repro.bench.runner import serving_for
from repro.bench.smoke import scenario_window_trace
from repro.scenarios import get_scenario, scenario_names


def graph_thumbnail(world) -> str:
    """One-line structural sketch for graph (non-grid) worlds."""
    degrees = [len(neigh) for neigh in world.adjacency.values()]
    n_edges = sum(degrees) // 2
    return (f"graph: {world.n_nodes} nodes, {n_edges} edges, "
            f"degree {min(degrees)}..{max(degrees)}, "
            f"{len(world.venues)} single-node venues")


def map_thumbnail(world, width: int = 66, height: int = 22) -> str:
    """Downsample the walkability grid to a terminal-sized sketch."""
    rows = []
    for r in range(height):
        row = []
        for c in range(width):
            x0 = c * world.width // width
            x1 = max(x0 + 1, (c + 1) * world.width // width)
            y0 = r * world.height // height
            y1 = max(y0 + 1, (r + 1) * world.height // height)
            cell = world.walkable[y0:y1, x0:x1]
            row.append("." if cell.all() else
                       "#" if not cell.any() else "+")
        rows.append("".join(row))
    return "\n".join(rows)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--agents", type=int, default=10)
    args = parser.parse_args()

    serving = serving_for("l4-8b", 1)
    for name in scenario_names():
        scn = get_scenario(name)
        world, homes = scn.world()
        print(f"=== {scn.name} — {scn.description}")
        print(f"map {world.width}x{world.height} ({scn.metric} metric), "
              f"{len(world.venues)} venues ({len(homes)} homes), "
              f"{scn.agents_per_segment} agents/segment")
        print(graph_thumbnail(world) if hasattr(world, "adjacency")
              else map_thumbnail(world))

        n_agents = min(args.agents, scn.agents_per_segment)
        personas = scn.make_personas(n_agents, seed=0, homes=homes)
        mix = Counter(p.archetype for p in personas)
        print("personas:", ", ".join(f"{k} x{v}"
                                     for k, v in sorted(mix.items())))

        start, end = scn.active_window
        trace = scenario_window_trace(scn, n_agents=n_agents)
        times = {}
        for policy in ("parallel-sync", "metropolis"):
            times[policy] = run_replay(
                trace, SchedulerConfig(policy=policy, scenario=scn.name),
                serving).completion_time
        print(f"active window [{start}, {end}): {trace.n_calls} calls; "
              f"parallel-sync {times['parallel-sync']:.1f}s vs "
              f"metropolis {times['metropolis']:.1f}s "
              f"({times['parallel-sync'] / times['metropolis']:.2f}x "
              f"OOO speedup)\n")


if __name__ == "__main__":
    main()
