"""The paper's flagship scenario: a full day in SmallVille.

Reproduces the §4.2 experiment end-to-end at adjustable scale: generate a
GenAgent-style day (25 agents, ~55k LLM calls), characterize the trace
(Figure 4c), replay it across data-parallel GPU counts under every
scheduler (Figure 4a), and render an execution-timeline snippet
(Figure 1).

Run:  python examples/smallville_day.py [--hours N] [--gpus 1 8]
"""

import argparse

from repro import (STEPS_PER_HOUR, SchedulerConfig, ServingConfig,
                   cached_day_trace, compute_stats, run_replay)
from repro.instrument import render_ascii_timeline


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--hours", type=int, default=2,
                        help="simulated hours to replay (from 11am)")
    parser.add_argument("--gpus", type=int, nargs="+", default=[1, 4])
    args = parser.parse_args()

    day = cached_day_trace(seed=0)
    stats = compute_stats(day)
    print("=== trace characterization (paper §4.1 / Fig 4c) ===")
    print(f"calls/day: {stats.total_calls}  (paper: ~56.7k)")
    print(f"mean prompt: {stats.mean_input_tokens:.1f} tok (642.6), "
          f"mean output: {stats.mean_output_tokens:.1f} tok (21.9)")
    print(f"mean dependency agents: {stats.mean_dependency_agents:.2f} "
          f"(1.85)")
    print("calls per hour:",
          " ".join(str(int(x)) for x in stats.calls_per_hour))

    window = day.window(11 * STEPS_PER_HOUR,
                        (11 + args.hours) * STEPS_PER_HOUR)
    print(f"\n=== replays: {args.hours}h window, {window.n_calls} calls ===")
    for gpus in args.gpus:
        serving = ServingConfig(model="llama3-8b", gpu="l4", dp=gpus)
        row = {}
        for policy in ("single-thread", "parallel-sync", "metropolis",
                       "oracle"):
            row[policy] = run_replay(window,
                                     SchedulerConfig(policy=policy), serving)
        m = row["metropolis"]
        print(f"\n-- {gpus} x L4, Llama-3-8B --")
        for policy, r in row.items():
            print(f"  {policy:<15} {r.completion_time:>9.1f}s  "
                  f"par={r.achieved_parallelism:.2f}")
        print(f"  speedup vs single-thread: "
              f"{m.speedup_over(row['single-thread']):.2f}x, "
              f"vs parallel-sync: {m.speedup_over(row['parallel-sync']):.2f}x"
              f", {row['oracle'].completion_time / m.completion_time:.0%} "
              f"of oracle")

    print("\n=== execution timeline snippet (Fig 1), parallel-sync ===")
    snippet = day.window(12 * STEPS_PER_HOUR, 12 * STEPS_PER_HOUR + 40)
    result = run_replay(snippet, SchedulerConfig(policy="parallel-sync"),
                        ServingConfig(model="llama3-8b", gpu="l4", dp=1),
                        collect_timeline=True)
    print(render_ascii_timeline(result.timeline.events,
                                snippet.meta.n_agents, width=100,
                                step_marks=result.step_completion_times))


if __name__ == "__main__":
    main()
