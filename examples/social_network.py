"""Non-Euclidean dependency tracking (§6): agents on a social network.

The paper notes its temporal-spatial rules generalize beyond grid worlds
to any space bounding information propagation — e.g. hop distance in a
social graph, where an agent's posts are seen only by neighbours and
information travels one hop per step. This example schedules a rumor-
propagation simulation out-of-order with ``GraphSpace``: densely
connected communities must advance nearly in lock-step, while bridge
nodes and distant communities run far ahead — exactly the coupling
structure the rules promise.

Graph worlds are also first-class scenarios: the second half replays
the registered ``social-graph`` world (a small-world network with a
full diurnal routine) and shows the zero-rescan scheduler running on
hop distance — no linear fallback scans.

Run:  python examples/social_network.py
"""

from repro._util import FastRng
from repro.config import DependencyConfig, SchedulerConfig
from repro.core import DependencyRules, run_replay
from repro.core.dependency_graph import SpatioTemporalGraph
from repro.core.space import GraphSpace


def build_communities(n_communities: int = 4, size: int = 6,
                      bridged: bool = True) -> dict:
    """Cliques, optionally joined in a ring by single bridge edges."""
    adjacency: dict[int, list[int]] = {}
    for c in range(n_communities):
        base = c * size
        for i in range(size):
            node = base + i
            adjacency[node] = [base + j for j in range(size) if j != i]
    if bridged:
        for c in range(n_communities):
            a = c * size  # bridge node of community c
            b = ((c + 1) % n_communities) * size
            adjacency[a].append(b)
            adjacency[b].append(a)
    return adjacency


def schedule_ooo(adjacency: dict, target: int = 40,
                 seed: int = 7) -> tuple[float, int]:
    """OOO-schedule stationary agents on the graph; returns
    (mean cluster size, peak step spread)."""
    n = len(adjacency)
    # Perception = direct neighbours (radius 1 hop); information moves
    # one hop per step.
    rules = DependencyRules(
        DependencyConfig(radius_p=1.0, max_vel=1.0, metric="euclidean"),
        space=GraphSpace(adjacency))
    graph = SpatioTemporalGraph(rules, {aid: aid for aid in range(n)})
    rng = FastRng(seed)
    done: set[int] = set()
    cluster_sizes = []
    peak_spread = 0
    while len(done) < n:
        moved = False
        # Prefer leaders: stresses how far ahead the rules allow agents.
        order = sorted(range(n), key=lambda a: (-graph.step[a], rng.random()))
        for seed_aid in order:
            if (seed_aid in done or graph.running[seed_aid]
                    or graph.is_blocked(seed_aid)):
                continue
            cluster = {seed_aid}
            frontier = [seed_aid]
            while frontier:
                x = frontier.pop()
                for other in range(n):
                    if (other not in cluster and other not in done
                            and graph.step[other] == graph.step[x]
                            and not graph.running[other]
                            and rules.coupled(x, other)):
                        cluster.add(other)
                        frontier.append(other)
            if any(graph.is_blocked(m) for m in cluster):
                continue
            members = sorted(cluster)
            graph.mark_running(members)
            graph.commit(members, {m: m for m in members})
            graph.validate()
            cluster_sizes.append(len(members))
            steps = [graph.step[a] for a in range(n)]
            peak_spread = max(peak_spread, max(steps) - min(steps))
            for m in members:
                if graph.step[m] >= target:
                    done.add(m)
            moved = True
            break
        assert moved, "deadlock"
    return sum(cluster_sizes) / len(cluster_sizes), peak_spread


def main() -> None:
    print("OOO scheduling with graph-distance dependency rules "
          "(perception = 1 hop, propagation = 1 hop/step)\n")

    ring = build_communities(bridged=True)
    mean_size, spread = schedule_ooo(ring)
    print("bridged ring of 4 cliques (connected graph):")
    print(f"  mean cluster size {mean_size:.1f}, peak step spread {spread}")
    print("  -> on a connected graph whose every edge is within the "
          "coupling threshold,\n     transitive coupling spans all agents: "
          "the conservative rules correctly\n     degrade to lock-step "
          "(everyone can read everyone within two hops).\n")

    islands = build_communities(bridged=False)
    mean_size, spread = schedule_ooo(islands)
    print("4 disconnected communities (weak ties removed):")
    print(f"  mean cluster size {mean_size:.1f}, peak step spread {spread}")
    print("  -> infinite graph distance between communities removes all "
          "cross-community\n     dependencies: each clique advances "
          "independently, arbitrarily far ahead.\n")
    print("the §3.2 validity condition held at every state in both runs "
          "(graph.validate()).\n")

    run_scenario()


def run_scenario() -> None:
    """The registered small-world scenario through the real replay path."""
    from repro.bench.smoke import scenario_window_trace

    trace = scenario_window_trace("social-graph")
    times = {}
    extra = {}
    for policy in ("parallel-sync", "metropolis"):
        result = run_replay(trace, SchedulerConfig(
            policy=policy, scenario="social-graph"))
        times[policy] = result.completion_time
        extra = result.driver_stats.extra or extra
    print("registered 'social-graph' scenario, active morning window "
          f"({trace.meta.n_agents} agents, {trace.meta.n_steps} steps, "
          f"hop-distance rules):")
    print(f"  parallel-sync {times['parallel-sync']:.1f}s vs metropolis "
          f"{times['metropolis']:.1f}s "
          f"({times['parallel-sync'] / times['metropolis']:.2f}x OOO "
          f"speedup)")
    print(f"  zero-rescan on the graph metric: "
          f"{extra.get('graph_scan_skips', 0)} scan skips, "
          f"{extra.get('graph_near_checks', 0)} near-set checks, "
          f"{extra.get('graph_fallback_scans', 0)} linear fallback scans")


if __name__ == "__main__":
    main()
