"""Live (wall-clock) execution: the deployable engine.

Runs any registered scenario's world with real threads against a
throttled fake LLM backend, comparing lock-step against out-of-order
control (the same Algorithm 3 the virtual-time benches model, but with
actual worker threads, a transactional KV store, and blocking LLM
calls). It also verifies the headline correctness property: both runs
end in the identical world state.

Run:  python examples/live_simulation.py [--agents 8] [--steps 120]
                                         [--scenario metro-grid]
"""

import argparse

from repro.config import SchedulerConfig
from repro.live import LiveSimulation, ThrottledLLMClient
from repro.live.environment import program_for_scenario
from repro.scenarios import get_scenario, scenario_names


def run(scenario: str, policy: str, n_agents: int, steps: int, seed: int,
        warmup: int):
    program = program_for_scenario(scenario, n_agents, seed)
    for step in range(warmup):  # fast-forward the quiet night
        program.model.step_all(step)
    client = ThrottledLLMClient(base_latency=0.003, per_token=0.0001,
                                slots=8)
    sim = LiveSimulation(program, client,
                         scheduler=SchedulerConfig(policy=policy,
                                                   scenario=scenario),
                         num_workers=8)
    result = sim.run(target_step=warmup + steps, start_step=warmup)
    return program, client, result


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--agents", type=int, default=8)
    parser.add_argument("--steps", type=int, default=120)
    parser.add_argument("--seed", type=int, default=4)
    parser.add_argument("--scenario", default="smallville",
                        choices=scenario_names())
    args = parser.parse_args()

    # Start in the scenario's active morning window (agents awake,
    # planning, and walking) — the busiest regime for the world's size.
    warmup = get_scenario(args.scenario).active_window[0]
    print(f"live run: {args.scenario}, {args.agents} agents, "
          f"{args.steps} steps, 8 worker threads, throttled fake LLM "
          f"backend\n")

    runs = {}
    for policy in ("parallel-sync", "metropolis"):
        program, client, result = run(args.scenario, policy, args.agents,
                                      args.steps, args.seed, warmup)
        runs[policy] = (program, result)
        print(f"{policy:<15} wall={result.wall_time:>6.2f}s  "
              f"clusters={result.clusters_executed:>5}  "
              f"mean size={result.mean_cluster_size:>5.2f}  "
              f"spread={result.max_step_spread}  "
              f"llm calls={client.calls}")

    lock_state = [a.pos for a in runs["parallel-sync"][0].model.agents]
    ooo_state = [a.pos for a in runs["metropolis"][0].model.agents]
    assert lock_state == ooo_state, "OOO changed the simulation outcome!"
    print("\nfinal world states identical across schedulers "
          "(temporal causality preserved)")
    speedup = (runs["parallel-sync"][1].wall_time
               / runs["metropolis"][1].wall_time)
    print(f"out-of-order wall-clock speedup: {speedup:.2f}x")


if __name__ == "__main__":
    main()
