"""Live (wall-clock) execution: the deployable engine.

Runs the SmallVille world with real threads against a throttled fake LLM
backend, comparing lock-step against out-of-order control (the same
Algorithm 3 the virtual-time benches model, but with actual worker
threads, a transactional KV store, and blocking LLM calls). It also
verifies the headline correctness property: both runs end in the
identical world state.

Run:  python examples/live_simulation.py [--agents 8] [--steps 120]
"""

import argparse

from repro.config import SchedulerConfig
from repro.live import LiveSimulation, ThrottledLLMClient
from repro.live.environment import BehaviorProgram
from repro.world import BehaviorModel, build_smallville, make_personas


def make_program(n_agents: int, seed: int) -> BehaviorProgram:
    world, homes = build_smallville()
    personas = make_personas(n_agents, seed=seed, homes=homes)
    return BehaviorProgram(BehaviorModel(world, personas, seed=seed))


#: 7:10am — agents are awake, planning, and walking to work.
WARMUP_STEP = 2580


def run(policy: str, n_agents: int, steps: int, seed: int):
    program = make_program(n_agents, seed)
    for step in range(WARMUP_STEP):  # fast-forward the quiet night
        program.model.step_all(step)
    client = ThrottledLLMClient(base_latency=0.003, per_token=0.0001,
                                slots=8)
    sim = LiveSimulation(program, client,
                         scheduler=SchedulerConfig(policy=policy),
                         num_workers=8)
    result = sim.run(target_step=WARMUP_STEP + steps,
                     start_step=WARMUP_STEP)
    return program, client, result


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--agents", type=int, default=8)
    parser.add_argument("--steps", type=int, default=120)
    parser.add_argument("--seed", type=int, default=4)
    args = parser.parse_args()

    # Start mid-morning commute (persona wake steps are ~6-8am) by running
    # the window where the world is busiest for its size.
    print(f"live run: {args.agents} agents, {args.steps} steps, "
          f"8 worker threads, throttled fake LLM backend\n")

    runs = {}
    for policy in ("parallel-sync", "metropolis"):
        program, client, result = run(policy, args.agents, args.steps,
                                      args.seed)
        runs[policy] = (program, result)
        print(f"{policy:<15} wall={result.wall_time:>6.2f}s  "
              f"clusters={result.clusters_executed:>5}  "
              f"mean size={result.mean_cluster_size:>5.2f}  "
              f"spread={result.max_step_spread}  "
              f"llm calls={client.calls}")

    lock_state = [a.pos for a in runs["parallel-sync"][0].model.agents]
    ooo_state = [a.pos for a in runs["metropolis"][0].model.agents]
    assert lock_state == ooo_state, "OOO changed the simulation outcome!"
    print("\nfinal world states identical across schedulers "
          "(temporal causality preserved)")
    speedup = (runs["parallel-sync"][1].wall_time
               / runs["metropolis"][1].wall_time)
    print(f"out-of-order wall-clock speedup: {speedup:.2f}x")


if __name__ == "__main__":
    main()
