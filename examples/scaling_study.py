"""Scaling study: the §4.3 experiment at adjustable scale.

Concatenates map segments of any registered scenario to grow the agent
population, then measures how each scheduler's busy-hour completion time
scales and where it sits against the hardware bound — the paper's
Figure 5 methodology, on any world.

Run:  python examples/scaling_study.py [--agents 25 50 100] [--gpus 4]
                                       [--scenario market-town]
"""

import argparse

from repro import STEPS_PER_HOUR, generate_concatenated_trace
from repro.bench import bounds_for, run_policies
from repro.scenarios import get_scenario, scenario_names


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--agents", type=int, nargs="+",
                        default=[25, 50, 100])
    parser.add_argument("--gpus", type=int, default=4)
    parser.add_argument("--scenario", default="smallville",
                        choices=scenario_names())
    parser.add_argument("--hour", type=int, default=None,
                        help="simulated hour to replay (default: the "
                             "scenario's busy hour)")
    args = parser.parse_args()

    scn = get_scenario(args.scenario)
    hour = args.hour if args.hour is not None else scn.busy_hour
    policies = ["parallel-sync", "metropolis", "oracle"]
    print(f"{scn.name} busy-hour scaling on {args.gpus} x L4 "
          f"(Llama-3-8B)\n")
    print(f"{'agents':>7} {'calls':>8} | "
          + " ".join(f"{p:>14}" for p in policies)
          + f" {'gpu-limit':>10} {'speedup':>9}")
    for n_agents in args.agents:
        day = generate_concatenated_trace(n_agents, scenario=scn)
        trace = day.window(hour * STEPS_PER_HOUR,
                           (hour + 1) * STEPS_PER_HOUR)
        outcomes = run_policies(trace, "l4-8b", args.gpus, policies)
        bounds = bounds_for(trace, "l4-8b", args.gpus)
        speedup = (outcomes["parallel-sync"].completion_time
                   / outcomes["metropolis"].completion_time)
        print(f"{n_agents:>7} {trace.n_calls:>8} | "
              + " ".join(f"{outcomes[p].completion_time:>13.1f}s"
                         for p in policies)
              + f" {bounds['gpu-limit']:>9.1f}s {speedup:>8.2f}x")
    print("\npaper: metropolis/parallel-sync speedup grows with agents "
          "(1.88x @25 to 4.15x @500 on 8 GPUs), approaching the oracle.")


if __name__ == "__main__":
    main()
