"""Quickstart: replay one busy hour under every scheduler.

Generates (or loads from cache) a standard one-segment day of the chosen
scenario, slices its busy hour, and replays it against a simulated
1x NVIDIA L4 + Llama-3-8B deployment under each scheduling policy —
the paper's core comparison in one script, on any registered world.

Run:  python examples/quickstart.py [--scenario metro-grid]
"""

import argparse

from repro import (STEPS_PER_HOUR, SchedulerConfig, ServingConfig,
                   cached_day_trace, critical_time_for, get_scenario,
                   run_replay, scenario_names)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scenario", default="smallville",
                        choices=scenario_names())
    args = parser.parse_args()

    scn = get_scenario(args.scenario)
    day = cached_day_trace(seed=0, scenario=scn)
    busy = day.window(scn.busy_hour * STEPS_PER_HOUR,
                      (scn.busy_hour + 1) * STEPS_PER_HOUR)
    print(f"{scn.name} busy hour: {busy.n_calls} LLM calls, "
          f"{busy.meta.n_agents} agents, {busy.meta.n_steps} steps")

    serving = ServingConfig(model="llama3-8b", gpu="l4", dp=1)
    results = {}
    for policy in ("single-thread", "parallel-sync", "metropolis", "oracle"):
        results[policy] = run_replay(
            busy, SchedulerConfig(policy=policy, scenario=scn.name), serving)

    critical = critical_time_for(busy, serving)
    baseline = results["parallel-sync"].completion_time
    print(f"\n{'policy':<15}{'time (s)':>10}{'parallelism':>13}"
          f"{'vs parallel-sync':>18}")
    for policy, r in results.items():
        print(f"{policy:<15}{r.completion_time:>10.1f}"
              f"{r.achieved_parallelism:>13.2f}"
              f"{baseline / r.completion_time:>17.2f}x")
    print(f"{'critical':<15}{critical:>10.1f}{'-':>13}{'-':>18}")

    m = results["metropolis"]
    print(f"\nmetropolis ran {m.driver_stats.clusters_dispatched} clusters "
          f"(mean size {m.driver_stats.mean_cluster_size:.2f}), letting "
          f"agents spread up to {m.driver_stats.max_step_spread} steps "
          f"apart while preserving temporal causality.")


if __name__ == "__main__":
    main()
