"""Figure 3, live: inspect the spatiotemporal dependency graph.

Builds the exact situation the paper's Figure 3 illustrates — clusters of
coupled agents at mixed steps, some ready and some blocked — and prints
the graph's nodes, coupled pairs, blocked edges, and dispatchable
clusters.

Run:  python examples/dependency_graph_demo.py
"""

from repro.config import DependencyConfig
from repro.core import DependencyRules
from repro.core.clustering import geo_clustering
from repro.core.dependency_graph import SpatioTemporalGraph

AGENTS = "ABCDEF"


def main() -> None:
    rules = DependencyRules(DependencyConfig(radius_p=4.0, max_vel=1.0))
    # A and B close together; C, D, E in another neighbourhood; F far off.
    positions = {
        0: (0, 0),    # A
        1: (3, 0),    # B   (A-B coupled: dist 3 <= 5)
        2: (30, 0),   # C
        3: (33, 0),   # D   (C-D-E chained into one cluster)
        4: (36, 0),   # E
        5: (80, 40),  # F   (isolated: free to run ahead)
    }
    graph = SpatioTemporalGraph(rules, positions)

    # Let F sprint ahead three steps and advance C-D-E once, as in Fig. 3.
    for _ in range(3):
        graph.mark_running([5])
        graph.commit([5], {5: graph.pos[5]})
    graph.mark_running([2, 3, 4])
    graph.commit([2, 3, 4], {2: (29, 0), 3: (33, 0), 4: (37, 0)})

    # Now stall A@0 and advance B? B is coupled with A - it cannot move
    # alone. Advance C-D-E until they block on A/B's lag.
    while not any(graph.is_blocked(a) for a in (2, 3, 4)):
        graph.mark_running([2, 3, 4])
        graph.commit([2, 3, 4],
                     {2: (28, 0), 3: (32, 0), 4: (36, 0)})

    print("nodes (agent@step):")
    for aid in range(6):
        step, pos = graph.state(aid)
        state = "BLOCKED" if graph.is_blocked(aid) else "ready"
        print(f"  {AGENTS[aid]}@{step}  pos={pos}  [{state}]")

    print("\nblocked edges (laggard -> waiter):")
    for aid in range(6):
        for blocker in sorted(graph.blockers_of(aid)):
            print(f"  {AGENTS[blocker]}@{graph.step[blocker]} -> "
                  f"{AGENTS[aid]}@{graph.step[aid]}")

    ready = [a for a in range(6) if not graph.running[a]]
    same_step: dict[int, list[int]] = {}
    for aid in ready:
        same_step.setdefault(graph.step[aid], []).append(aid)
    print("\nclusters (coupled ready agents, by step):")
    for step, members in sorted(same_step.items()):
        clusters = geo_clustering(
            members, [graph.pos[m] for m in members], rules.space,
            rules.couple_threshold)
        for cluster in clusters:
            tags = ",".join(AGENTS[m] for m in cluster)
            status = ("ready" if all(not graph.is_blocked(m)
                                     for m in cluster) else "waiting")
            print(f"  step {step}: {{{tags}}} [{status}]")

    graph.validate()
    print("\nvalidity condition (§3.2) holds for this state.")


if __name__ == "__main__":
    main()
