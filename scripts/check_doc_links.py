#!/usr/bin/env python3
"""Fail on dead relative links or broken anchors in the markdown docs.

Scans README.md, ROADMAP.md, CHANGES.md and everything under docs/ for
markdown links/images whose target is a relative path, and verifies the
target exists. Links carrying a ``#fragment`` (same-file ``#anchor`` or
``other.md#anchor``) are additionally checked against the target file's
headings using GitHub's slugification, so a renamed section breaks CI
instead of readers. External URLs are ignored. CI runs this as the docs
gate; ``tests/test_docs.py`` runs it in the tier-1 suite.

Usage: python scripts/check_doc_links.py [repo_root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Markdown inline link/image: [text](target) — target captured.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_EXTERNAL = ("http://", "https://", "mailto:")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")
#: Inline markup stripped from heading text before slugification.
_MARKUP = re.compile(r"[`*_]|\[([^\]]*)\]\([^)]*\)")
#: Characters GitHub drops when building a heading slug (everything
#: that is not a word character, space, or hyphen; unicode kept).
_SLUG_DROP = re.compile(r"[^\w\- ]", re.UNICODE)


def doc_files(root: Path) -> list[Path]:
    files = [root / "README.md", root / "ROADMAP.md", root / "CHANGES.md"]
    files += sorted((root / "docs").glob("**/*.md"))
    return [f for f in files if f.exists()]


def heading_slug(text: str) -> str:
    """GitHub's anchor for a heading: lowercase, punctuation dropped,
    spaces to hyphens (existing hyphens kept)."""
    text = _MARKUP.sub(r"\1", text).strip()
    return _SLUG_DROP.sub("", text.lower()).replace(" ", "-")


def anchors_of(doc: Path) -> set[str]:
    """Every heading anchor a markdown file exposes (duplicates get
    ``-1``/``-2``... suffixes, like GitHub renders them)."""
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in doc.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if not match:
            continue
        slug = heading_slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def dead_links(root: Path) -> list[str]:
    """``file:line: target`` for every relative link with no file, plus
    every ``#anchor`` fragment naming no heading in its target."""
    failures: list[str] = []
    anchor_cache: dict[Path, set[str]] = {}
    for doc in doc_files(root):
        for lineno, line in enumerate(
                doc.read_text(encoding="utf-8").splitlines(), start=1):
            for match in _LINK.finditer(line):
                target = match.group(1)
                if target.startswith(_EXTERNAL):
                    continue
                path, _, fragment = target.partition("#")
                resolved = (doc.parent / path).resolve() if path else doc
                if not resolved.exists():
                    failures.append(
                        f"{doc.relative_to(root)}:{lineno}: "
                        f"dead link -> {target}")
                    continue
                if not fragment or resolved.suffix.lower() != ".md":
                    continue
                if resolved not in anchor_cache:
                    anchor_cache[resolved] = anchors_of(resolved)
                if fragment.lower() not in anchor_cache[resolved]:
                    failures.append(
                        f"{doc.relative_to(root)}:{lineno}: "
                        f"broken anchor -> {target} "
                        f"(no such heading in "
                        f"{resolved.relative_to(root)})")
    return failures


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 \
        else Path(__file__).resolve().parent.parent
    failures = dead_links(root)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"docs link check: ok "
              f"({len(doc_files(root))} files scanned)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
