#!/usr/bin/env python3
"""Fail on dead relative links in the repo's markdown docs.

Scans README.md, ROADMAP.md, CHANGES.md and everything under docs/ for
markdown links/images whose target is a relative path, and verifies the
target exists (anchors and external URLs are ignored). CI runs this as
the docs gate; ``tests/test_docs.py`` runs it in the tier-1 suite.

Usage: python scripts/check_doc_links.py [repo_root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Markdown inline link/image: [text](target) — target captured.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_EXTERNAL = ("http://", "https://", "mailto:", "#")


def doc_files(root: Path) -> list[Path]:
    files = [root / "README.md", root / "ROADMAP.md", root / "CHANGES.md"]
    files += sorted((root / "docs").glob("**/*.md"))
    return [f for f in files if f.exists()]


def dead_links(root: Path) -> list[str]:
    """``file:line: target`` for every relative link with no file."""
    failures: list[str] = []
    for doc in doc_files(root):
        for lineno, line in enumerate(
                doc.read_text(encoding="utf-8").splitlines(), start=1):
            for match in _LINK.finditer(line):
                target = match.group(1)
                if target.startswith(_EXTERNAL):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                resolved = (doc.parent / path).resolve()
                if not resolved.exists():
                    failures.append(
                        f"{doc.relative_to(root)}:{lineno}: "
                        f"dead link -> {target}")
    return failures


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 \
        else Path(__file__).resolve().parent.parent
    failures = dead_links(root)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"docs link check: ok "
              f"({len(doc_files(root))} files scanned)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
