"""Figure 2 / §2.2: real dependencies are sparse.

Mines the actual interaction groups from the trace and reports the mean
number of dependency agents (including self) — the paper measures 1.85
against the 25 enforced by global synchronization.
"""


def test_fig2_dependency_sparsity(benchmark, experiment_runner):
    data = experiment_runner("fig2", benchmark)
    assert 1.0 <= data["mean_dependency_agents"] <= 4.0
