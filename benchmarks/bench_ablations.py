"""Ablations of DESIGN.md's design choices (beyond the paper's tables).

* distance metric (§6 generality),
* perception-radius sensitivity of the conservative rules,
* fluid vs per-iteration serving fidelity (our substrate),
* worker-pool sizing (§3.6).
"""


def test_ablation_distance_metric(benchmark, experiment_runner):
    data = experiment_runner("ablation_metric", benchmark)
    # Manhattan dominates Euclidean dominates Chebyshev pointwise on the
    # grid, so coupling is loosest->strictest: chebyshev <= euclidean <=
    # manhattan in completion time (within noise).
    assert data["chebyshev"] <= data["euclidean"] * 1.05
    assert data["euclidean"] <= data["manhattan"] * 1.05


def test_ablation_perception_radius(benchmark, experiment_runner):
    data = experiment_runner("ablation_radius", benchmark)
    radii = sorted(data)
    # Wider perception -> more coupling/blocking -> no faster.
    assert data[radii[0]] <= data[radii[-1]] * 1.02


def test_ablation_serving_fidelity(benchmark, experiment_runner):
    data = experiment_runner("ablation_fidelity", benchmark)
    assert data["gap_pct"] < 2.0  # fluid mode is a faithful fast path


def test_ablation_worker_pool(benchmark, experiment_runner):
    data = experiment_runner("ablation_workers", benchmark)
    # One worker serializes clusters; unbounded matches 8 on this scale.
    assert data["unbounded"] <= data["1"]


def test_ablation_prefix_cache(benchmark, experiment_runner):
    data = experiment_runner("ablation_prefix_cache", benchmark)
    # Monotone gain, bounded by prefill's share of request time.
    assert data[0.6] < data[0.3] < data[0.0]
    assert data[0.6] > 0.6 * data[0.0]


def test_ablation_speculative(benchmark, experiment_runner):
    data = experiment_runner("ablation_speculative", benchmark)
    # Speculation sits between plain metropolis and the oracle.
    for budget in (4, 8, 16):
        assert data[f"spec-{budget}"] <= data["metropolis"] * 1.01
        assert data[f"spec-{budget}"] >= data["oracle"] * 0.99


def test_ablation_interactive(benchmark, experiment_runner):
    data = experiment_runner("ablation_interactive", benchmark)
    # Latency-first scheduling must not blow up total completion time.
    assert data["interactive"]["completion"] <= \
        data["background"]["completion"] * 1.15
