"""Per-scenario replay microbenchmarks.

Times the metropolis driver over each registered scenario's active
window — the same workload the ``repro-bench smoke`` CI gate replays —
so a scheduler change that regresses one world's shape (dense rush-hour
clusters, long-range blocking cones) shows up as a per-scenario number,
not an average.
"""

import pytest

from repro.bench.runner import serving_for
from repro.bench.smoke import scenario_window_trace
from repro.config import SchedulerConfig
from repro.core import run_replay
from repro.scenarios import scenario_names


@pytest.mark.parametrize("scenario", scenario_names())
def test_metropolis_replay_per_scenario(benchmark, scenario):
    trace = scenario_window_trace(scenario)
    serving = serving_for("l4-8b", 1)

    def replay():
        return run_replay(
            trace, SchedulerConfig(policy="metropolis", scenario=scenario),
            serving)

    result = benchmark(replay)
    assert result.n_calls_completed == trace.n_calls
