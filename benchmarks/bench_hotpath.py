"""Controller hot-path throughput (§3.6): the pytest-benchmark wrapper
around ``repro.bench.hotpath``.

The timed quantity is the wall-clock cost of replaying one scenario's
active window; the printed table carries the real metric — controller
agent-steps/sec from the :attr:`DriverStats.controller_time` accounting.
CI runs the full matrix through ``repro-bench hotpath --check`` instead
(see ``.github/workflows/ci.yml``); this wrapper keeps the hot path
visible alongside the other microbenchmarks.
"""

import pytest

from repro.bench.hotpath import bench_one, format_report


@pytest.mark.parametrize("n_agents", [25, 100])
def test_hotpath_smallville(benchmark, n_agents):
    entry = benchmark.pedantic(
        lambda: bench_one("smallville", n_agents), rounds=1, iterations=1)
    print("\n" + format_report({"entries": [entry]}) + "\n")
    assert entry["agent_steps"] == entry["n_agents"] * entry["n_steps"]
    assert entry["agent_steps_per_sec"] > 0
