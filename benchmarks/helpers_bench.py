"""Shared workload builders for the microbenchmarks."""

from __future__ import annotations

import numpy as np

from repro.trace.schema import Trace, TraceMeta


def small_replay_trace(seed: int = 5, n_agents: int = 16,
                       n_steps: int = 60) -> Trace:
    """Dense-ish random trace used to time the replay machinery itself."""
    rng = np.random.Generator(np.random.PCG64(seed))
    positions = np.zeros((n_agents, n_steps + 1, 2), dtype=np.int16)
    positions[:, 0, 0] = rng.integers(0, 80, n_agents)
    positions[:, 0, 1] = rng.integers(0, 60, n_agents)
    moves = np.array([(0, 0), (1, 0), (-1, 0), (0, 1), (0, -1)])
    for s in range(n_steps):
        step = moves[rng.integers(0, 5, n_agents)]
        nxt = positions[:, s, :].astype(np.int32) + step
        nxt[:, 0] = np.clip(nxt[:, 0], 0, 79)
        nxt[:, 1] = np.clip(nxt[:, 1], 0, 59)
        positions[:, s + 1, :] = nxt
    steps, agents, funcs, ins, outs = [], [], [], [], []
    for aid in range(n_agents):
        for s in range(n_steps):
            if rng.random() < 0.4:
                steps.append(s)
                agents.append(aid)
                funcs.append(2)
                ins.append(int(rng.integers(100, 700)))
                outs.append(int(rng.integers(4, 40)))
    meta = TraceMeta(n_agents=n_agents, n_steps=n_steps, seed=seed,
                     width=80, height=60)
    return Trace(meta, positions,
                 np.asarray(steps, dtype=np.int32),
                 np.asarray(agents, dtype=np.int32),
                 np.asarray(funcs, dtype=np.int16),
                 np.asarray(ins, dtype=np.int32),
                 np.asarray(outs, dtype=np.int32))
