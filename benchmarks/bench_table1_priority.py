"""Table 1: priority-scheduling ablation (busy hour, L4).

Turns §3.5's step-priority scheduling off for both metropolis and the
oracle. Paper (500 agents): metropolis loses 3.84% (4 GPUs) to 15.7%
(8 GPUs) without priority — its conservative rules make laggards block
leaders, and priority drains laggards first — while the oracle, already
at ample parallelism, barely moves (1.10% / 0.11%).
"""


def test_table1_priority_ablation(benchmark, experiment_runner):
    data = experiment_runner("table1", benchmark)
    for key, row in data.items():
        policy = key.rsplit("-", 1)[0]
        if policy == "metropolis":
            # Priority must not hurt metropolis (paper: it helps).
            assert row["with"] <= row["without"] * 1.03
        else:
            # Oracle is largely insensitive either way (paper: ~0-1%).
            assert abs(row["speedup_pct"]) <= 12.0
