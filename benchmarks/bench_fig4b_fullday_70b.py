"""Figure 4b: 25-agent SmallVille day, Llama-3-70B (TP4) on A100 GPUs.

Same comparison as Figure 4a on the large-model platform. Paper: 2.45x
over single-thread, 1.45x over parallel-sync, 82% of oracle on 8 GPUs
(DP2 x TP4).
"""


def test_fig4b_fullday_llama70b_a100(benchmark, experiment_runner):
    data = experiment_runner("fig4b", benchmark)
    policies = data["policies"]
    for gpus in data["gpus"]:
        single = policies["single-thread"][gpus]["time"]
        psync = policies["parallel-sync"][gpus]["time"]
        metro = policies["metropolis"][gpus]["time"]
        oracle = policies["oracle"][gpus]["time"]
        assert metro < psync < single
        assert oracle <= metro * 1.05
        assert oracle / metro >= 0.6  # paper: 82%
