"""Figure 1: execution-trace snippet of per-agent LLM invocation streams.

Replays a busy-hour window under parallel-sync with timeline collection
and renders the paper's figure as ASCII: one row per agent, colored bars
(glyphs) per agent function, dashed lines (|) at the global step
barriers. The accompanying number is the achieved parallelism, which the
paper measures at ~1.94 average concurrent queries for this schedule.
"""


def test_fig1_timeline(benchmark, experiment_runner):
    data = experiment_runner("fig1", benchmark)
    # The figure's point: lock-step parallelism is far below agent count.
    assert data["parallelism"] < 8.0
    assert data["events"] > 50
