"""Microbenchmarks of the scheduler's own hot paths (§3.6's concern).

These time the library's algorithmic core (not the simulated GPUs):
geo-clustering, incremental dependency-graph commits, and the serving
simulator's event throughput — the operations whose cost the paper's C++
controller minimizes.
"""

from repro._util import FastRng
from repro.config import DependencyConfig, SchedulerConfig, ServingConfig
from repro.core import DependencyRules, run_replay
from repro.core.clustering import geo_clustering
from repro.core.dependency_graph import SpatioTemporalGraph
from repro.core.space import EuclideanSpace


def _positions(n, seed=0, side=600):
    rng = FastRng(seed)
    return [(rng.integers(0, side), rng.integers(0, side)) for _ in range(n)]


def test_geo_clustering_1000_agents(benchmark):
    ids = list(range(1000))
    pos = _positions(1000)
    clusters = benchmark(geo_clustering, ids, pos, EuclideanSpace(), 5.0)
    assert sum(len(c) for c in clusters) == 1000


def test_dependency_graph_commit_throughput(benchmark):
    rules = DependencyRules(DependencyConfig())
    pos = dict(enumerate(_positions(500)))

    def thousand_commits():
        graph = SpatioTemporalGraph(rules, pos)
        rng = FastRng(1)
        for _ in range(1000):
            aid = rng.integers(0, 500)
            if graph.running[aid] or graph.is_blocked(aid):
                continue
            # singleton commit (agents are sparse at this density)
            cluster = [aid]
            if any(rules.coupled(graph.pos[aid], graph.pos[o])
                   and graph.step[o] == graph.step[aid]
                   and o != aid and not graph.running[o]
                   for o in graph.index.query(graph.pos[aid], 5.0)):
                continue
            graph.mark_running(cluster)
            graph.commit(cluster, {aid: graph.pos[aid]})
        return graph

    graph = benchmark(thousand_commits)
    assert graph.max_step >= 1


def test_replay_event_throughput(benchmark):
    from helpers_bench import small_replay_trace
    trace = small_replay_trace()

    def replay():
        return run_replay(
            trace, SchedulerConfig(policy="metropolis"),
            ServingConfig(model="llama3-8b", gpu="l4", dp=2))

    result = benchmark(replay)
    assert result.n_calls_completed == trace.n_calls
