"""Benchmark suite configuration.

Each benchmark regenerates one paper figure/table via
:mod:`repro.bench.experiments` and prints its table. Experiments run once
per session (``pedantic(rounds=1)``) because each is itself a full
multi-policy replay study; the timed quantity is the wall-clock cost of
regenerating the figure. Set ``REPRO_BENCH_FULL=1`` for paper-scale runs.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.bench import run_experiment


@pytest.fixture(scope="session")
def experiment_runner():
    def run(name: str, benchmark) -> dict:
        result = benchmark.pedantic(
            lambda: run_experiment(name), rounds=1, iterations=1)
        print("\n" + result.table + "\n")
        return result.data

    return run
