"""Figure 6: agent scaling with Llama-3-70B (TP4, DP2) on 8 A100s.

Same methodology as Figure 5 on the large-model platform. Paper: peak
metropolis speedups of 1.97x (busy, 500 agents) and 2.01x (quiet, 1000
agents) over parallel-sync.
"""


def test_fig6_scaling_llama70b_a100(benchmark, experiment_runner):
    data = experiment_runner("fig6", benchmark)
    for key, series in data["series"].items():
        for i in range(len(data["agents"])):
            assert series["metropolis"][i] < series["parallel-sync"][i]
            assert series["oracle"][i] <= series["metropolis"][i] * 1.05
