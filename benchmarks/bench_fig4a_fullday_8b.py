"""Figure 4a: 25-agent SmallVille day, Llama-3-8B on NVIDIA L4 GPUs.

Completion time for single-thread / parallel-sync / metropolis / oracle
(+ the critical bound) across data-parallel GPU counts. Paper results:
metropolis beats single-thread 2.38x (1 GPU) to 3.25x (8 GPUs) and
parallel-sync 1.44x to 1.67x, reaching 74.7-82.9% of oracle; achieved
parallelism 0.95 / 1.94 / 3.46 on 8 GPUs.
"""


def test_fig4a_fullday_llama8b_l4(benchmark, experiment_runner):
    data = experiment_runner("fig4a", benchmark)
    policies = data["policies"]
    for gpus in data["gpus"]:
        single = policies["single-thread"][gpus]["time"]
        psync = policies["parallel-sync"][gpus]["time"]
        metro = policies["metropolis"][gpus]["time"]
        oracle = policies["oracle"][gpus]["time"]
        critical = data["bounds"][gpus]["critical"]
        # Paper's ordering must reproduce at every GPU count.
        assert metro < psync < single
        assert oracle <= metro * 1.05
        assert critical <= oracle * 1.001
        # Shape: speedup bands (loose, simulator not testbed).
        assert 1.15 <= single / metro <= 8.0
        assert 1.05 <= psync / metro <= 4.0
        # Metropolis reaches a large fraction of oracle (paper: 74-83%).
        assert oracle / metro >= 0.6
    # Parallelism ordering on the largest deployment.
    top = max(data["gpus"])
    assert (policies["single-thread"][top]["parallelism"]
            < policies["parallel-sync"][top]["parallelism"]
            < policies["metropolis"][top]["parallelism"])
