"""Figure 4c: LLM query distribution over the simulated day.

Histogram of calls per simulated hour for the 25-agent day: the 1am-4am
trough (all agents asleep), the ~800-call quiet hour (6-7am) and the
~5k-call busy hour (12-1pm) that the scaling benchmarks replay.
"""


def test_fig4c_query_distribution(benchmark, experiment_runner):
    data = experiment_runner("fig4c", benchmark)
    per_hour = data["calls_per_hour"]
    assert per_hour[1] == per_hour[2] == per_hour[3] == 0  # sleeping
    assert 400 <= per_hour[6] <= 1400      # paper ~800
    assert 3000 <= per_hour[12] <= 6500    # paper ~5000
    assert 45_000 <= data["total_calls"] <= 70_000  # paper 56.7k
    assert 550 <= data["mean_input_tokens"] <= 750  # paper 642.6
    assert 15 <= data["mean_output_tokens"] <= 30   # paper 21.9
