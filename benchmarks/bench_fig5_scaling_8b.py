"""Figure 5: scaling to many agents (busy & quiet hours, Llama-3-8B/L4).

Concatenated SmallVilles raise the agent count; each point replays the
12-1pm busy hour (~5k calls / 25 agents) and the 6-7am quiet hour (~800)
under parallel-sync / metropolis / oracle, against the gpu-limit bound.
Paper: the metropolis speedup over parallel-sync grows with agent count
(busy hour: 1.88x @25 up to 4.15x @500 on 8 GPUs, plateauing at 1000),
while metropolis itself converges to the oracle (97% at 1000 agents).
"""


def test_fig5_scaling_llama8b_l4(benchmark, experiment_runner):
    data = experiment_runner("fig5", benchmark)
    agents = data["agents"]
    for key, series in data["series"].items():
        metro = series["metropolis"]
        psync = series["parallel-sync"]
        oracle = series["oracle"]
        speedups = series["metropolis_speedup"]
        for i in range(len(agents)):
            assert metro[i] < psync[i]
            assert oracle[i] <= metro[i] * 1.05
            assert series["gpu-limit"][i] <= oracle[i] * 1.001
        # Busy-hour speedup grows with scale (within the measured range).
        if key.startswith("busy") and len(agents) >= 2:
            assert speedups[-1] >= speedups[0] * 0.9
