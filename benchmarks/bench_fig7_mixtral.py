"""Figure 7: Mixtral-8x7B (MoE) on 8 A100s (TP2, DP4).

The MoE model's lighter per-token compute and I/O leaves more headroom
for data parallelism, which the paper reports as *higher* peak speedups
than dense 70B: 2.97x (busy) and 2.29x (quiet) over parallel-sync at 500
agents.
"""


def test_fig7_scaling_mixtral_a100(benchmark, experiment_runner):
    data = experiment_runner("fig7", benchmark)
    for key, series in data["series"].items():
        for i in range(len(data["agents"])):
            assert series["metropolis"][i] < series["parallel-sync"][i]
            assert series["oracle"][i] <= series["metropolis"][i] * 1.05
        if key.startswith("busy"):
            assert max(series["metropolis_speedup"]) >= 1.2
