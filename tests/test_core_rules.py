"""Tests for the §3.2 / Appendix A dependency rules and distance spaces.

The hypothesis property at the bottom is the paper's soundness theorem:
any schedule that respects the coupled/blocked rules keeps the validity
condition true at every reachable state.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro._util import FastRng
from repro.config import DependencyConfig
from repro.core import DependencyRules
from repro.core.space import (ChebyshevSpace, EuclideanSpace, GraphSpace,
                              ManhattanSpace, space_for)
from repro.errors import CausalityViolation, ConfigError


class TestSpaces:
    def test_euclidean(self):
        s = EuclideanSpace()
        assert s.dist((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_chebyshev(self):
        s = ChebyshevSpace()
        assert s.dist((0, 0), (3, 4)) == 4.0

    def test_manhattan(self):
        s = ManhattanSpace()
        assert s.dist((0, 0), (3, 4)) == 7.0

    def test_metric_ordering_on_grid(self):
        # chebyshev <= euclidean <= manhattan for any pair
        pairs = [((0, 0), (5, 2)), ((1, 7), (4, 3)), ((2, 2), (2, 9))]
        for a, b in pairs:
            che = ChebyshevSpace().dist(a, b)
            euc = EuclideanSpace().dist(a, b)
            man = ManhattanSpace().dist(a, b)
            assert che <= euc <= man

    def test_graph_space_hops(self):
        adj = {"a": ["b"], "b": ["a", "c"], "c": ["b"], "d": []}
        g = GraphSpace(adj)
        assert g.dist("a", "c") == 2.0
        assert g.dist("a", "a") == 0.0
        assert g.dist("a", "d") == math.inf

    def test_graph_space_unknown_node(self):
        with pytest.raises(ConfigError):
            GraphSpace({"a": []}).dist("zzz", "a")

    def test_space_factory(self):
        assert isinstance(space_for("euclidean"), EuclideanSpace)
        assert isinstance(space_for("chebyshev"), ChebyshevSpace)
        assert isinstance(space_for("manhattan"), ManhattanSpace)
        assert isinstance(space_for("graph", adjacency={"a": []}),
                          GraphSpace)
        with pytest.raises(ConfigError):
            space_for("graph")
        with pytest.raises(ConfigError):
            space_for("hilbert")

    def test_bucketing_covers_radius(self):
        s = EuclideanSpace()
        cell = 5.0
        pos = (12, 7)
        buckets = set(s.bucket_range(pos, 11.0, cell))
        # every point within radius 11 must fall in one of the buckets
        for dx in range(-11, 12):
            for dy in range(-11, 12):
                if math.hypot(dx, dy) <= 11.0:
                    b = s.bucket((pos[0] + dx, pos[1] + dy), cell)
                    assert b in buckets


class TestDependencyConfig:
    def test_defaults_match_genagent(self):
        c = DependencyConfig()
        assert c.radius_p == 4.0
        assert c.max_vel == 1.0
        assert c.couple_threshold == 5.0

    def test_block_threshold_formula(self):
        c = DependencyConfig()
        # (gap + 1) * max_vel + radius_p
        assert c.block_threshold(0) == 5.0
        assert c.block_threshold(3) == 8.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            DependencyConfig(radius_p=-1)
        with pytest.raises(ConfigError):
            DependencyConfig(max_vel=0)
        with pytest.raises(ConfigError):
            DependencyConfig().block_threshold(-1)


class TestRulesPredicates:
    def setup_method(self):
        self.rules = DependencyRules(DependencyConfig())

    def test_coupled_at_threshold(self):
        assert self.rules.coupled((0, 0), (5, 0))
        assert not self.rules.coupled((0, 0), (6, 0))

    def test_blocked_requires_smaller_step(self):
        # B at the same or later step never blocks A (Appendix A case 3).
        assert not self.rules.blocked((0, 0), 5, (1, 0), 5)
        assert not self.rules.blocked((0, 0), 5, (1, 0), 7)

    def test_blocked_threshold_grows_with_gap(self):
        pos_a = (0, 0)
        # gap 1 -> threshold 6; gap 4 -> threshold 9
        assert self.rules.blocked(pos_a, 5, (6, 0), 4)
        assert not self.rules.blocked(pos_a, 5, (7, 0), 4)
        assert self.rules.blocked(pos_a, 5, (9, 0), 1)
        assert not self.rules.blocked(pos_a, 5, (10, 0), 1)

    def test_max_runahead_inverse(self):
        r = self.rules
        for distance in (5.5, 7.0, 12.0, 40.0):
            lead = r.max_runahead(distance)
            # leading by `lead` at this distance must not block...
            assert not r.blocked((0, 0), lead, (distance, 0), 0) or lead == 0
            # ...but leading one more must.
            assert r.blocked((0, 0), lead + 1, (distance, 0), 0)

    def test_validate_state_accepts_safe(self):
        self.rules.validate_state([(0, 5, (0, 0)), (1, 6, (20, 0))])

    def test_validate_state_rejects_violation(self):
        # gap 2 -> validity threshold radius_p + 1 = 5; distance 4 violates
        with pytest.raises(CausalityViolation) as err:
            self.rules.validate_state([(0, 5, (0, 0)), (1, 7, (4, 0))])
        assert err.value.distance == pytest.approx(4.0)

    def test_same_step_never_violates(self):
        self.rules.validate_state([(0, 5, (0, 0)), (1, 5, (0, 0))])


# ---------------------------------------------------------------------------
# Soundness property (the Appendix A theorem)
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10**9),
       n_agents=st.integers(2, 8),
       radius_p=st.floats(0.0, 6.0),
       max_vel=st.floats(0.5, 2.0))
def test_rule_respecting_schedules_preserve_validity(seed, n_agents,
                                                     radius_p, max_vel):
    """Drive random rule-respecting schedules; §3.2 must hold throughout.

    Simulates the scheduler abstractly: agents at integer steps with
    positions moving at most ``max_vel`` per committed step. At each round
    a random coupling-closed, unblocked cluster advances. After every
    commit the validity condition must hold — for any geometry and any
    rule parameters.
    """
    rng = FastRng(seed)
    config = DependencyConfig(radius_p=radius_p, max_vel=max_vel)
    rules = DependencyRules(config)
    positions = [(rng.integers(0, 30), rng.integers(0, 30))
                 for _ in range(n_agents)]
    steps = [0] * n_agents

    def coupled_closure(seed_aid):
        members = {seed_aid}
        frontier = [seed_aid]
        while frontier:
            aid = frontier.pop()
            for other in range(n_agents):
                if other in members or steps[other] != steps[aid]:
                    continue
                if rules.coupled(positions[aid], positions[other]):
                    members.add(other)
                    frontier.append(other)
        return sorted(members)

    for _ in range(40):
        start = rng.integers(0, n_agents)
        # pick the first dispatchable cluster scanning from `start`
        dispatched = False
        for offset in range(n_agents):
            aid = (start + offset) % n_agents
            cluster = coupled_closure(aid)
            blocked = any(
                rules.blocked(positions[m], steps[m], positions[b], steps[b])
                for m in cluster for b in range(n_agents)
                if b not in cluster)
            if blocked:
                continue
            # commit: advance step and move each member by <= max_vel
            for m in cluster:
                steps[m] += 1
                angle = rng.random() * 2 * math.pi
                r = rng.random() * max_vel
                x, y = positions[m]
                positions[m] = (x + r * math.cos(angle),
                                y + r * math.sin(angle))
            dispatched = True
            break
        assert dispatched, "rules must never deadlock all agents"
        rules.validate_state(
            [(i, steps[i], positions[i]) for i in range(n_agents)])
