"""Docs stay honest: no dead relative links, and the architecture doc
tracks the modules it points into."""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).parent.parent
sys.path.insert(0, str(ROOT / "scripts"))

from check_doc_links import dead_links, doc_files  # noqa: E402


def test_no_dead_relative_links():
    assert dead_links(ROOT) == []


def test_architecture_doc_exists_and_scanned():
    files = [f.name for f in doc_files(ROOT)]
    assert "README.md" in files
    assert "ARCHITECTURE.md" in files


def test_architecture_doc_pointers_resolve():
    """Every `src/repro/...` style path the doc names must exist."""
    import re

    text = (ROOT / "docs" / "ARCHITECTURE.md").read_text()
    for match in re.finditer(r"`(?:src/)?(repro/[\w/]+\.py)`", text):
        assert (ROOT / "src" / match.group(1)).exists(), match.group(1)


def test_checker_cli_passes_on_repo():
    result = subprocess.run(
        [sys.executable, str(ROOT / "scripts" / "check_doc_links.py"),
         str(ROOT)],
        capture_output=True, text=True)
    assert result.returncode == 0, result.stderr


def test_checker_flags_dead_link(tmp_path):
    (tmp_path / "README.md").write_text("see [gone](missing/file.md)\n")
    assert any("missing/file.md" in f for f in dead_links(tmp_path))
