"""Docs stay honest: no dead relative links, and the architecture doc
tracks the modules it points into."""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).parent.parent
sys.path.insert(0, str(ROOT / "scripts"))

from check_doc_links import (anchors_of, dead_links,  # noqa: E402
                             doc_files, heading_slug)


def test_no_dead_relative_links():
    assert dead_links(ROOT) == []


def test_architecture_doc_exists_and_scanned():
    files = [f.name for f in doc_files(ROOT)]
    assert "README.md" in files
    assert "ARCHITECTURE.md" in files


def test_architecture_doc_pointers_resolve():
    """Every `src/repro/...` style path the doc names must exist."""
    import re

    text = (ROOT / "docs" / "ARCHITECTURE.md").read_text()
    for match in re.finditer(r"`(?:src/)?(repro/[\w/]+\.py)`", text):
        assert (ROOT / "src" / match.group(1)).exists(), match.group(1)


def test_checker_cli_passes_on_repo():
    result = subprocess.run(
        [sys.executable, str(ROOT / "scripts" / "check_doc_links.py"),
         str(ROOT)],
        capture_output=True, text=True)
    assert result.returncode == 0, result.stderr


def test_checker_flags_dead_link(tmp_path):
    (tmp_path / "README.md").write_text("see [gone](missing/file.md)\n")
    assert any("missing/file.md" in f for f in dead_links(tmp_path))


class TestAnchors:
    def test_heading_slugification(self):
        assert heading_slug("Serving layer") == "serving-layer"
        assert heading_slug("The §3.6 Hot-Path!") == "the-36-hot-path"
        assert heading_slug("`code` and *emph*") == "code-and-emph"
        assert heading_slug("[link text](target.md)") == "link-text"

    def test_anchors_of_dedupes_and_skips_fences(self, tmp_path):
        doc = tmp_path / "README.md"
        doc.write_text("# Title\n\n## Same\n\n## Same\n\n"
                       "```\n# not a heading\n```\n")
        anchors = anchors_of(doc)
        assert anchors == {"title", "same", "same-1"}

    def test_flags_broken_same_file_anchor(self, tmp_path):
        (tmp_path / "README.md").write_text(
            "# Intro\n\nsee [below](#no-such-section)\n")
        failures = dead_links(tmp_path)
        assert any("broken anchor" in f and "#no-such-section" in f
                   for f in failures)

    def test_flags_broken_cross_file_anchor(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "other.md").write_text("# Real Section\n")
        (tmp_path / "README.md").write_text(
            "see [ok](docs/other.md#real-section) and "
            "[bad](docs/other.md#fake-section)\n")
        failures = dead_links(tmp_path)
        assert any("#fake-section" in f for f in failures)
        assert not any("#real-section" in f for f in failures)

    def test_good_anchor_passes(self, tmp_path):
        (tmp_path / "README.md").write_text(
            "# One Section\n\nsee [up](#one-section)\n")
        assert dead_links(tmp_path) == []

    def test_non_markdown_fragment_ignored(self, tmp_path):
        (tmp_path / "README.md").write_text("see [src](foo.py#L10)\n")
        (tmp_path / "foo.py").write_text("x = 1\n")
        assert dead_links(tmp_path) == []

    def test_repo_docs_anchors_resolve(self):
        # The README's pointer into ARCHITECTURE.md's serving section
        # (among others) must stay valid.
        assert "serving-layer" in anchors_of(
            ROOT / "docs" / "ARCHITECTURE.md")
        assert dead_links(ROOT) == []
