"""Tests for the transactional KV store (Redis substitute)."""

import threading

import pytest
from hypothesis import given, strategies as st

from repro.errors import TransactionError, WatchError
from repro.kvstore import KVStore


class TestPlainValues:
    def test_get_set(self):
        s = KVStore()
        s.set("k", 42)
        assert s.get("k") == 42

    def test_get_default(self):
        assert KVStore().get("missing", "fallback") == "fallback"

    def test_setnx(self):
        s = KVStore()
        assert s.setnx("k", 1)
        assert not s.setnx("k", 2)
        assert s.get("k") == 1

    def test_delete(self):
        s = KVStore()
        s.set("a", 1)
        s.set("b", 2)
        assert s.delete("a", "b", "missing") == 2
        assert not s.exists("a")

    def test_incr(self):
        s = KVStore()
        assert s.incr("n") == 1
        assert s.incr("n", 5) == 6

    def test_incr_type_error(self):
        s = KVStore()
        s.set("k", "text")
        with pytest.raises(TypeError):
            s.incr("k")

    def test_keys_prefix(self):
        s = KVStore()
        s.set("agent:1", 1)
        s.set("agent:2", 2)
        s.set("other", 3)
        assert sorted(s.keys("agent:")) == ["agent:1", "agent:2"]

    def test_version_bumps_on_write(self):
        s = KVStore()
        assert s.version("k") == 0
        s.set("k", 1)
        v1 = s.version("k")
        s.set("k", 1)  # same value still bumps (write happened)
        assert s.version("k") > v1

    def test_delete_bumps_version(self):
        s = KVStore()
        s.set("k", 1)
        v = s.version("k")
        s.delete("k")
        assert s.version("k") > v


class TestHashes:
    def test_hset_hget(self):
        s = KVStore()
        s.hset("h", "f", "v")
        assert s.hget("h", "f") == "v"
        assert s.hget("h", "missing", 0) == 0
        assert s.hget("nohash", "f") is None

    def test_hgetall_copy(self):
        s = KVStore()
        s.hset("h", "a", 1)
        d = s.hgetall("h")
        d["b"] = 2
        assert s.hgetall("h") == {"a": 1}

    def test_hdel_and_hlen(self):
        s = KVStore()
        s.hset("h", "a", 1)
        s.hset("h", "b", 2)
        assert s.hlen("h") == 2
        assert s.hdel("h", "a", "zz") == 1
        assert s.hlen("h") == 1

    def test_type_conflict(self):
        s = KVStore()
        s.set("k", 3)
        with pytest.raises(TypeError):
            s.hset("k", "f", 1)


class TestSets:
    def test_sadd_smembers(self):
        s = KVStore()
        assert s.sadd("s", 1, 2, 2) == 2
        assert s.smembers("s") == {1, 2}

    def test_srem(self):
        s = KVStore()
        s.sadd("s", 1, 2, 3)
        assert s.srem("s", 2, 9) == 1
        assert s.smembers("s") == {1, 3}

    def test_scard_sismember(self):
        s = KVStore()
        s.sadd("s", "x")
        assert s.scard("s") == 1
        assert s.sismember("s", "x")
        assert not s.sismember("s", "y")
        assert s.scard("missing") == 0


class TestSortedSets:
    def test_zadd_zrange(self):
        s = KVStore()
        s.zadd("z", "b", 2.0)
        s.zadd("z", "a", 1.0)
        s.zadd("z", "c", 3.0)
        assert s.zrange("z") == ["a", "b", "c"]
        assert s.zrange("z", 0, 1) == ["a", "b"]

    def test_zscore_and_update(self):
        s = KVStore()
        s.zadd("z", "a", 1.0)
        s.zadd("z", "a", 5.0)
        assert s.zscore("z", "a") == 5.0
        assert s.zscore("z", "missing") is None

    def test_zpopmin(self):
        s = KVStore()
        s.zadd("z", "b", 2.0)
        s.zadd("z", "a", 1.0)
        assert s.zpopmin("z") == ("a", 1.0)
        assert s.zpopmin("z") == ("b", 2.0)
        assert s.zpopmin("z") is None


class TestTransactions:
    def test_read_buffer_commit(self):
        s = KVStore()
        s.set("balance", 10)

        def body(txn):
            value = txn.get("balance")
            txn.set("balance", value + 5)

        s.transaction(body)
        assert s.get("balance") == 15

    def test_watch_conflict_aborts_single_attempt(self):
        s = KVStore()
        s.set("k", 1)
        txn = s.pipeline()
        assert txn.get("k") == 1
        s.set("k", 2)  # concurrent write
        txn.set("k", 99)
        with pytest.raises(WatchError):
            txn.commit()
        assert s.get("k") == 2  # buffered write was not applied

    def test_transaction_retries_until_success(self):
        s = KVStore()
        s.set("k", 0)
        attempts = []

        def body(txn):
            value = txn.get("k")
            if len(attempts) < 2:
                attempts.append(1)
                s.set("k", value + 1)  # force a conflict (out of band)
            txn.set("k", value + 10)

        s.transaction(body)
        assert len(attempts) == 2
        assert s.get("k") == 12  # applied on top of the conflicting writes

    def test_transaction_gives_up(self):
        s = KVStore()
        s.set("k", 0)

        def always_conflicts(txn):
            txn.get("k")
            s.set("k", s.get("k") + 1)
            txn.set("k", -1)

        with pytest.raises(TransactionError):
            s.transaction(always_conflicts, max_retries=3)

    def test_commit_twice_rejected(self):
        s = KVStore()
        txn = s.pipeline()
        txn.set("k", 1)
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_atomicity_of_buffered_writes(self):
        s = KVStore()

        def body(txn):
            txn.set("a", 1)
            txn.hset("h", "f", 2)
            txn.sadd("set", 3)

        s.transaction(body)
        assert s.get("a") == 1
        assert s.hget("h", "f") == 2
        assert s.smembers("set") == {3}

    def test_concurrent_increments_are_exact(self):
        s = KVStore()
        s.set("counter", 0)
        n_threads, n_iters = 8, 50

        def worker():
            for _ in range(n_iters):
                s.transaction(
                    lambda txn: txn.set("counter", txn.get("counter") + 1),
                    max_retries=10_000)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert s.get("counter") == n_threads * n_iters

    @given(st.lists(st.tuples(st.sampled_from(["set", "delete", "incr"]),
                              st.sampled_from(["a", "b"])), max_size=30))
    def test_versions_monotonic(self, ops):
        s = KVStore()
        last = {"a": 0, "b": 0}
        for op, key in ops:
            if op == "set":
                s.set(key, 1)
            elif op == "delete":
                s.delete(key)
            else:
                s.set(key, 0)
                s.incr(key)
            assert s.version(key) >= last[key]
            last[key] = s.version(key)


class TestFaultInjection:
    def test_retries_are_counted(self):
        s = KVStore()
        s.set("k", 0)
        fired = []

        def body(txn):
            value = txn.get("k")
            if not fired:
                fired.append(1)
                s.set("k", value + 1)  # out-of-band conflicting write
            txn.set("k", value + 10)

        s.transaction(body)
        assert s.tx_retries == 1

    def test_forced_conflicts_consumed_and_counted(self):
        s = KVStore()
        s.set("k", 0)
        s.force_conflicts(2)
        s.transaction(lambda txn: txn.set("k", txn.get("k") + 1))
        assert s.injected_conflicts == 2
        assert s.tx_retries == 2
        assert s.get("k") == 1  # the storm is transparent to the caller
        # The budget is spent: the next transaction commits first try.
        s.transaction(lambda txn: txn.set("k", txn.get("k") + 1))
        assert s.tx_retries == 2

    def test_storm_exceeding_budget_raises_transaction_error(self):
        s = KVStore()
        s.set("k", 0)
        s.force_conflicts(10)
        with pytest.raises(TransactionError, match="after 3 retries"):
            s.transaction(lambda txn: txn.set("k", 1), max_retries=3)
        assert s.get("k") == 0  # no buffered write leaked
        assert s.tx_retries == 3

    def test_backoff_jitter_is_seeded(self):
        a, b = KVStore(seed=9), KVStore(seed=9)
        assert [a._rng.random() for _ in range(8)] == \
            [b._rng.random() for _ in range(8)]
