"""Tests for configuration objects."""

import pytest

from repro.config import (STEPS_PER_DAY, STEPS_PER_HOUR, OverheadConfig,
                          SchedulerConfig, ServingConfig)
from repro.errors import ConfigError


class TestConstants:
    def test_steps_per_day(self):
        assert STEPS_PER_DAY == 8640  # 10-second steps
        assert STEPS_PER_HOUR == 360


class TestSchedulerConfig:
    def test_defaults(self):
        c = SchedulerConfig()
        assert c.policy == "metropolis"
        assert c.priority
        assert c.dependency.radius_p == 4.0

    def test_with_policy(self):
        c = SchedulerConfig().with_policy("oracle", priority=False)
        assert c.policy == "oracle"
        assert not c.priority

    def test_frozen(self):
        with pytest.raises(Exception):
            SchedulerConfig().policy = "x"


class TestServingConfig:
    def test_defaults(self):
        c = ServingConfig()
        assert c.num_gpus == 1
        assert c.fidelity == "fluid"

    def test_num_gpus(self):
        assert ServingConfig(dp=2, tp=4).num_gpus == 8

    def test_validation(self):
        with pytest.raises(ConfigError):
            ServingConfig(dp=0)
        with pytest.raises(ConfigError):
            ServingConfig(tp=0)
        with pytest.raises(ConfigError):
            ServingConfig(kv_memory_fraction=0.0)
        with pytest.raises(ConfigError):
            ServingConfig(kv_memory_fraction=1.5)
        with pytest.raises(ConfigError):
            ServingConfig(max_running_requests=0)


class TestOverheadConfig:
    def test_defaults_small(self):
        o = OverheadConfig()
        assert 0 < o.agent_step < 0.1
        assert o.cluster_commit < o.agent_step
