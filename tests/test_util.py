"""Tests for repro._util."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro._util import (FastRng, UnionFind, fast_rng_for, rng_for,
                         stable_seed, weighted_mean)


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed(1, "a", 2) == stable_seed(1, "a", 2)

    def test_order_sensitive(self):
        assert stable_seed(1, 2) != stable_seed(2, 1)

    def test_part_boundaries_matter(self):
        # ("ab", "c") must differ from ("a", "bc")
        assert stable_seed("ab", "c") != stable_seed("a", "bc")

    def test_nonnegative_63_bit(self):
        for parts in [(0,), ("x", 1), (12345, "y", 7)]:
            seed = stable_seed(*parts)
            assert 0 <= seed < 2**63

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=5))
    def test_hypothesis_deterministic(self, parts):
        assert stable_seed(*parts) == stable_seed(*parts)


class TestRngFor:
    def test_same_key_same_stream(self):
        a = rng_for(5, "agent", 3).random(4)
        b = rng_for(5, "agent", 3).random(4)
        assert np.array_equal(a, b)

    def test_different_keys_differ(self):
        a = rng_for(5, "agent", 3).random(4)
        b = rng_for(5, "agent", 4).random(4)
        assert not np.array_equal(a, b)


class TestFastRng:
    def test_deterministic(self):
        r1, r2 = FastRng(42), FastRng(42)
        assert [r1.random() for _ in range(10)] == \
            [r2.random() for _ in range(10)]

    def test_random_in_unit_interval(self):
        rng = FastRng(7)
        for _ in range(1000):
            x = rng.random()
            assert 0.0 <= x < 1.0

    def test_integers_bounds(self):
        rng = FastRng(1)
        values = [rng.integers(3, 9) for _ in range(500)]
        assert min(values) >= 3
        assert max(values) <= 8

    def test_integers_rejects_empty_range(self):
        with pytest.raises(ValueError):
            FastRng(0).integers(5, 5)

    def test_rough_uniformity(self):
        rng = FastRng(99)
        counts = [0] * 8
        for _ in range(8000):
            counts[rng.integers(0, 8)] += 1
        assert min(counts) > 800  # each bin ~1000

    def test_fast_rng_for_keyed(self):
        assert fast_rng_for(1, "x").random() == fast_rng_for(1, "x").random()
        assert fast_rng_for(1, "x").random() != fast_rng_for(1, "y").random()


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(4)
        assert len({uf.find(i) for i in range(4)}) == 4

    def test_union_merges(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.find(0) == uf.find(1)

    def test_union_idempotent(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        assert not uf.union(1, 0)

    def test_groups(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(3, 4)
        groups = sorted(sorted(g) for g in uf.groups(range(5)))
        assert groups == [[0, 1], [2], [3, 4]]

    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)),
                    max_size=30))
    def test_matches_naive_partition(self, pairs):
        uf = UnionFind(10)
        naive = {i: {i} for i in range(10)}
        for a, b in pairs:
            uf.union(a, b)
            merged = naive[a] | naive[b]
            for m in merged:
                naive[m] = merged
        for i in range(10):
            for j in range(10):
                assert (uf.find(i) == uf.find(j)) == (j in naive[i])


class TestWeightedMean:
    def test_basic(self):
        assert weighted_mean([1.0, 3.0], [1.0, 1.0]) == pytest.approx(2.0)

    def test_weights(self):
        assert weighted_mean([1.0, 3.0], [3.0, 1.0]) == pytest.approx(1.5)

    def test_zero_weights(self):
        assert weighted_mean([1.0, 2.0], [0.0, 0.0]) == 0.0
