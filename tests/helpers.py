"""Test utilities: compact synthetic traces with full structural control."""

from __future__ import annotations

import numpy as np

from repro.trace.schema import Trace, TraceMeta


def random_trace(seed: int, n_agents: int = 6, n_steps: int = 40,
                 width: int = 40, height: int = 30,
                 p_call: float = 0.35, max_chain: int = 3,
                 radius_p: float = 4.0) -> Trace:
    """A random-walk trace with sparse small LLM calls.

    Positions move at most one tile per step (Manhattan), so the §3.2
    movement-speed assumption holds by construction.
    """
    rng = np.random.Generator(np.random.PCG64(seed))
    positions = np.zeros((n_agents, n_steps + 1, 2), dtype=np.int16)
    positions[:, 0, 0] = rng.integers(0, width, n_agents)
    positions[:, 0, 1] = rng.integers(0, height, n_agents)
    moves = np.array([(0, 0), (1, 0), (-1, 0), (0, 1), (0, -1)])
    for s in range(n_steps):
        step_moves = moves[rng.integers(0, len(moves), n_agents)]
        nxt = positions[:, s, :].astype(np.int32) + step_moves
        nxt[:, 0] = np.clip(nxt[:, 0], 0, width - 1)
        nxt[:, 1] = np.clip(nxt[:, 1], 0, height - 1)
        positions[:, s + 1, :] = nxt
    steps, agents, funcs, ins, outs = [], [], [], [], []
    for aid in range(n_agents):
        for s in range(n_steps):
            if rng.random() < p_call:
                for _ in range(int(rng.integers(1, max_chain + 1))):
                    steps.append(s)
                    agents.append(aid)
                    funcs.append(int(rng.integers(0, 10)))
                    ins.append(int(rng.integers(32, 128)))
                    outs.append(int(rng.integers(2, 8)))
    meta = TraceMeta(n_agents=n_agents, n_steps=n_steps, seed=seed,
                     width=width, height=height, radius_p=radius_p)
    return Trace(meta, positions,
                 np.asarray(steps, dtype=np.int32),
                 np.asarray(agents, dtype=np.int32),
                 np.asarray(funcs, dtype=np.int16),
                 np.asarray(ins, dtype=np.int32),
                 np.asarray(outs, dtype=np.int32))
