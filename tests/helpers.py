"""Test utilities: compact synthetic traces and seeded world builders
shared across the scheduler, sharding, fault, and speculation suites."""

from __future__ import annotations

import numpy as np

from repro._util import FastRng
from repro.config import FaultPolicy
from repro.core.space import GraphSpace
from repro.trace.schema import Trace, TraceMeta


def trajectory_trace(trajectories, chains, *, radius_p: float = 4.0,
                     width: int = 64, height: int = 64,
                     seed: int = 0) -> Trace:
    """Fully deterministic trace from explicit per-agent trajectories.

    ``trajectories``: list indexed by agent id; each entry is either a
    single ``(x, y)`` (static agent) or a list of ``n_steps + 1``
    positions walking at most ``max_vel`` per step.
    ``chains``: list of ``(calls_per_step, prompt_tokens, out_tokens)``
    per agent — heavier chains make that agent a laggard.
    """
    n_agents = len(trajectories)
    n_steps = max(len(t) - 1 for t in trajectories
                  if not isinstance(t, tuple))
    positions = np.zeros((n_agents, n_steps + 1, 2), dtype=np.int16)
    for aid, traj in enumerate(trajectories):
        if isinstance(traj, tuple):
            positions[aid, :, :] = traj
        else:
            assert len(traj) == n_steps + 1
            positions[aid, :, :] = traj
    steps, agents, funcs, ins, outs = [], [], [], [], []
    for aid, (k, n_in, n_out) in enumerate(chains):
        for s in range(n_steps):
            for c in range(k):
                steps.append(s)
                agents.append(aid)
                funcs.append(c % 10)
                ins.append(n_in)
                outs.append(n_out)
    meta = TraceMeta(n_agents=n_agents, n_steps=n_steps, seed=seed,
                     width=width, height=height, radius_p=radius_p)
    return Trace(meta, positions,
                 np.asarray(steps, dtype=np.int32),
                 np.asarray(agents, dtype=np.int32),
                 np.asarray(funcs, dtype=np.int16),
                 np.asarray(ins, dtype=np.int32),
                 np.asarray(outs, dtype=np.int32))


def grid_positions(rng: FastRng, n: int, *, x_lo: int = 40,
                   x_hi: int = 120, y_lo: int = 0,
                   y_hi: int = 60) -> dict:
    """Seeded agent positions spanning several fine cells (and region
    boundaries), so commit fuzzes exercise step-bucket migration."""
    return {i: (rng.integers(x_lo, x_hi), rng.integers(y_lo, y_hi))
            for i in range(n)}


def grid_moves(pos):
    """The five Manhattan move candidates (stay + 4-neighborhood) used
    by every coordinate-metric commit fuzz; respects max_vel=1."""
    x, y = pos
    return [(x, y), (x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)]


def ring_space(v: int, chords: int = 0, seed: int = 0) -> GraphSpace:
    """A v-node ring with optional random chords, as a GraphSpace."""
    rng = FastRng(seed)
    nodes = [(i, 0) for i in range(v)]
    adj = {node: set() for node in nodes}
    for i in range(v):
        adj[nodes[i]].add(nodes[(i + 1) % v])
        adj[nodes[(i + 1) % v]].add(nodes[i])
    for _ in range(chords):
        a, b = rng.integers(0, v), rng.integers(0, v)
        if a != b:
            adj[nodes[a]].add(nodes[b])
            adj[nodes[b]].add(nodes[a])
    return GraphSpace({k: tuple(sorted(vs)) for k, vs in adj.items()})


def tree_chord_space(rng: FastRng, v: int):
    """A random connected graph: spanning tree plus v//2 chord edges.

    Returns ``(space, adj)`` — the adjacency dict doubles as the move
    candidate source (``[pos, *adj[pos]]`` = stay or one hop).
    """
    nodes = [(i, 0) for i in range(v)]
    adj = {node: set() for node in nodes}
    for i in range(1, v):  # random tree keeps it connected
        j = rng.integers(0, i)
        adj[nodes[i]].add(nodes[j])
        adj[nodes[j]].add(nodes[i])
    for _ in range(v // 2):  # extra chords make cycles
        a, b = rng.integers(0, v), rng.integers(0, v)
        if a != b:
            adj[nodes[a]].add(nodes[b])
            adj[nodes[b]].add(nodes[a])
    space = GraphSpace({k: tuple(sorted(vs)) for k, vs in adj.items()})
    return space, adj


def fast_fault_policy(**overrides) -> FaultPolicy:
    """FaultPolicy with near-zero backoffs so retry paths run fast."""
    defaults = dict(backoff_base=0.0001, backoff_max=0.001,
                    watchdog_timeout=30.0, worker_join_grace=2.0)
    defaults.update(overrides)
    return FaultPolicy(**defaults)


def random_trace(seed: int, n_agents: int = 6, n_steps: int = 40,
                 width: int = 40, height: int = 30,
                 p_call: float = 0.35, max_chain: int = 3,
                 radius_p: float = 4.0) -> Trace:
    """A random-walk trace with sparse small LLM calls.

    Positions move at most one tile per step (Manhattan), so the §3.2
    movement-speed assumption holds by construction.
    """
    rng = np.random.Generator(np.random.PCG64(seed))
    positions = np.zeros((n_agents, n_steps + 1, 2), dtype=np.int16)
    positions[:, 0, 0] = rng.integers(0, width, n_agents)
    positions[:, 0, 1] = rng.integers(0, height, n_agents)
    moves = np.array([(0, 0), (1, 0), (-1, 0), (0, 1), (0, -1)])
    for s in range(n_steps):
        step_moves = moves[rng.integers(0, len(moves), n_agents)]
        nxt = positions[:, s, :].astype(np.int32) + step_moves
        nxt[:, 0] = np.clip(nxt[:, 0], 0, width - 1)
        nxt[:, 1] = np.clip(nxt[:, 1], 0, height - 1)
        positions[:, s + 1, :] = nxt
    steps, agents, funcs, ins, outs = [], [], [], [], []
    for aid in range(n_agents):
        for s in range(n_steps):
            if rng.random() < p_call:
                for _ in range(int(rng.integers(1, max_chain + 1))):
                    steps.append(s)
                    agents.append(aid)
                    funcs.append(int(rng.integers(0, 10)))
                    ins.append(int(rng.integers(32, 128)))
                    outs.append(int(rng.integers(2, 8)))
    meta = TraceMeta(n_agents=n_agents, n_steps=n_steps, seed=seed,
                     width=width, height=height, radius_p=radius_p)
    return Trace(meta, positions,
                 np.asarray(steps, dtype=np.int32),
                 np.asarray(agents, dtype=np.int32),
                 np.asarray(funcs, dtype=np.int16),
                 np.asarray(ins, dtype=np.int32),
                 np.asarray(outs, dtype=np.int32))
