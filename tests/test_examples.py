"""Every shipped example must run end-to-end (scaled down where slow)."""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(script: str, *args: str, timeout: int = 600) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = _run("quickstart.py")
    assert "metropolis" in out
    assert "vs parallel-sync" in out


def test_quickstart_other_scenario():
    out = _run("quickstart.py", "--scenario", "market-town")
    assert "market-town" in out
    assert "metropolis" in out


def test_scenario_showcase():
    out = _run("scenario_showcase.py", "--agents", "6")
    for name in ("smallville", "metro-grid", "market-town",
                 "social-graph"):
        assert name in out
    assert "graph metric" in out  # the non-grid world renders too
    assert "OOO speedup" in out


def test_dependency_graph_demo():
    out = _run("dependency_graph_demo.py")
    assert "BLOCKED" in out
    assert "validity condition" in out


def test_social_network():
    out = _run("social_network.py")
    assert "disconnected communities" in out
    assert "validity condition" in out


def test_live_simulation():
    out = _run("live_simulation.py", "--agents", "5", "--steps", "40")
    assert "identical across schedulers" in out


def test_scaling_study():
    out = _run("scaling_study.py", "--agents", "25", "--gpus", "2")
    assert "metropolis" in out


def test_smallville_day():
    out = _run("smallville_day.py", "--hours", "1", "--gpus", "1")
    assert "trace characterization" in out
    assert "execution timeline" in out
