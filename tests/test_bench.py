"""Tests for the benchmark harness (runner, report, experiments, CLI)."""

import pytest

from repro.bench import (EXPERIMENTS, bounds_for, format_table, hour_window,
                         run_experiment, run_policies)
from repro.bench.cli import main as cli_main
from repro.bench.report import format_series
from repro.bench.runner import PLATFORMS, serving_for
from repro.errors import ConfigError


class TestServingFor:
    def test_platforms_exist(self):
        assert {"l4-8b", "a100-70b", "a100-mixtral"} == set(PLATFORMS)

    def test_dp_tp_split(self):
        cfg = serving_for("a100-70b", 8)
        assert cfg.dp == 2 and cfg.tp == 4

    def test_indivisible_rejected(self):
        with pytest.raises(ConfigError):
            serving_for("a100-70b", 6)

    def test_unknown_platform(self):
        with pytest.raises(ConfigError):
            serving_for("tpu-v9", 8)


class TestRunnerPieces:
    def test_run_policies_shapes(self, synthetic_trace):
        out = run_policies(synthetic_trace, "l4-8b", 1,
                           ["parallel-sync", "metropolis"])
        assert set(out) == {"parallel-sync", "metropolis"}
        assert out["metropolis"].completion_time > 0

    def test_bounds(self, synthetic_trace):
        b = bounds_for(synthetic_trace, "l4-8b", 1)
        assert b["gpu-limit"] == max(b["critical"], b["no-dependency"])

    def test_hour_window(self, day_trace):
        w = hour_window(day_trace, 12)
        assert w.meta.n_steps == 360
        assert w.meta.base_step == 12 * 360


class TestReport:
    def test_format_table(self):
        out = format_table("T", ["a", "bb"], [[1, 2.5], ["x", "y"]],
                           note="n")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert "2.5" in out and "(n)" in out

    def test_format_series(self):
        out = format_series("S", [25, 100], {"m": [1.0, 2.0]})
        assert "25" in out and "100" in out and "m" in out


class TestExperiments:
    def test_registry_covers_every_figure_and_table(self):
        needed = {"fig1", "fig2", "fig4a", "fig4b", "fig4c",
                  "fig5", "fig6", "fig7", "table1"}
        assert needed <= set(EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_fig4c_shape(self):
        result = run_experiment("fig4c", full=False)
        per_hour = result.data["calls_per_hour"]
        assert len(per_hour) == 24
        assert per_hour[2] == 0  # asleep
        assert per_hour[12] > per_hour[6]
        assert "fig4c" in result.table

    def test_fig2_sparsity(self):
        result = run_experiment("fig2", full=False)
        assert 1.0 <= result.data["mean_dependency_agents"] <= 4.0

    def test_fig1_renders(self):
        result = run_experiment("fig1", full=False)
        assert "agent" in result.table
        assert result.data["events"] > 0


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4a" in out and "table1" in out

    def test_scenarios_listing_documents_metric_and_agents(self, capsys):
        """`repro-bench scenarios` shows each world's metric and default
        population alongside the registry description."""
        assert cli_main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "metric" in out and "agents/seg" in out
        lines = {line.split()[0]: line for line in out.splitlines()
                 if line and not line.startswith(("name", "-"))}
        assert "euclidean" in lines["smallville"]
        assert "25" in lines["smallville"]
        assert "graph" in lines["social-graph"]
        assert "24" in lines["social-graph"]

    def test_run_writes_output(self, tmp_path, capsys):
        assert cli_main(["run", "fig4c", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "fig4c.txt").exists()
        assert "fig4c" in capsys.readouterr().out
