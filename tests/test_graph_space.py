"""GraphSpace landmark bucketing and the graph-metric zero-rescan path.

Covers the §6 extension now that graph worlds are first-class: the
landmark cells' Lipschitz lower bound, disconnected components (infinite
distance never blocks or couples), unknown-node errors, fuzz parity of
the bucketed fast path against both the linear ``_scan_fallback`` path
and the dict-reference oracle on random small-world graphs, and the
steady-state regression gate — a graph-metric replay must never touch
the fallback scan.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro._util import FastRng
from repro.bench.smoke import scenario_window_trace
from repro.config import DependencyConfig, SchedulerConfig
from repro.core import DependencyRules, run_replay
from repro.core.dependency_graph import SpatioTemporalGraph
from repro.core.space import GraphSpace, space_for
from repro.errors import ConfigError

from test_hotpath_scheduler import (DictReferenceGraph,
                                    _assert_fastpath_invariants,
                                    _assert_graph_matches_reference,
                                    _random_cluster)


def small_world(rng, n, k=2, ties=2) -> dict[int, list[int]]:
    """A random ring-lattice-with-shortcuts adjacency."""
    adj = {node: [] for node in range(n)}
    for node in range(n):
        for off in range(1, k + 1):
            adj[node].append((node + off) % n)
            adj[node].append((node - off) % n)
    for _ in range(ties):
        a = rng.integers(0, n)
        b = rng.integers(0, n)
        if a != b and b not in adj[a]:
            adj[a].append(b)
            adj[b].append(a)
    return adj


class TestGraphSpaceBasics:
    def test_hop_distance(self):
        space = GraphSpace({0: [1], 1: [0, 2], 2: [1]})
        assert space.dist(0, 2) == 2.0
        assert space.dist(2, 2) == 0.0
        assert space.within(0, 1, 1.0)
        assert not space.within(0, 2, 1.0)

    def test_disconnected_components_infinite(self):
        space = GraphSpace({0: [1], 1: [0], 2: [3], 3: [2]})
        assert space.dist(0, 2) == math.inf
        assert not space.within(0, 3, 1e9)

    def test_unknown_node_raises(self):
        space = GraphSpace({0: [1], 1: [0]})
        with pytest.raises(ConfigError, match="unknown node"):
            space.dist(0, 7)
        with pytest.raises(ConfigError, match="unknown node"):
            space.dist(7, 0)
        with pytest.raises(ConfigError, match="unknown node"):
            space.bucket(7, 1.0)

    def test_dangling_edge_rejected(self):
        with pytest.raises(ConfigError, match="missing from"):
            GraphSpace({0: [1, 9], 1: [0]})

    def test_space_for_graph(self):
        space = space_for("graph", adjacency={0: [1], 1: [0]})
        assert space.cell_bucketing
        slow = space_for("graph", adjacency={0: [1], 1: [0]},
                         bucketing=False)
        assert not slow.cell_bucketing
        assert slow.bucket(0, 1.0) == ()
        with pytest.raises(ConfigError, match="adjacency"):
            space_for("graph")

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10**9), n=st.integers(4, 40))
    def test_landmark_cells_lower_bound_distance(self, seed, n):
        """The cell_bucketing contract: cells ``dc`` apart on any axis
        imply ``dist >= (dc - 1) * cell`` — the only property the
        step-bucketed blocker index relies on."""
        rng = FastRng(seed)
        space = GraphSpace(small_world(rng, n))
        for cell in (1.0, 2.0, 3.0):
            buckets = {node: space.bucket(node, cell) for node in range(n)}
            for a in range(n):
                for b in range(a + 1, n):
                    dc = max(abs(buckets[a][0] - buckets[b][0]),
                             abs(buckets[a][1] - buckets[b][1]))
                    assert space.dist(a, b) >= (dc - 1) * cell

    def test_bucket_range_covers_radius(self):
        rng = FastRng(5)
        space = GraphSpace(small_world(rng, 30))
        for cell in (1.0, 2.0):
            for source in (0, 7, 19):
                for radius in (1.0, 2.0, 5.0):
                    cells = set(space.bucket_range(source, radius, cell))
                    for node in range(30):
                        if space.dist(source, node) <= radius:
                            assert space.bucket(node, cell) in cells


class TestDistanceCacheLRU:
    """The per-source BFS cache is bounded (ROADMAP memory item)."""

    def test_cache_never_exceeds_cap(self):
        rng = FastRng(7)
        space = GraphSpace(small_world(rng, 64), dist_cache_size=8)
        for source in range(64):
            assert space.dist(source, (source + 5) % 64) >= 1.0
        assert len(space._cache) <= 8

    def test_eviction_preserves_correctness(self):
        space = GraphSpace({0: [1], 1: [0, 2], 2: [1, 3], 3: [2]},
                           dist_cache_size=1)
        assert space.dist(0, 3) == 3.0
        assert space.dist(3, 0) == 3.0  # evicts source 0
        assert space.dist(0, 2) == 2.0  # re-BFS after eviction
        assert len(space._cache) == 1

    def test_lru_keeps_hot_sources(self):
        rng = FastRng(11)
        space = GraphSpace(small_world(rng, 32), dist_cache_size=4)
        space.dist(0, 1)
        for source in range(1, 4):
            space.dist(source, 0)
        space.dist(0, 2)          # touch source 0 again: most recent
        space.dist(9, 0)          # evicts the least recent (source 1)
        assert 0 in space._cache
        assert 1 not in space._cache

    def test_default_cap_applies(self):
        space = GraphSpace({0: [1], 1: [0]})
        assert space._cache_cap == GraphSpace.DIST_CACHE_SIZE


class TestGraphBlocking:
    def _rules(self, adjacency, bucketing=True):
        return DependencyRules(
            DependencyConfig(radius_p=1.0, max_vel=1.0),
            space=GraphSpace(adjacency, bucketing=bucketing))

    def test_disconnected_never_blocks(self):
        """Infinite distance: the other component's laggard can never
        block, no matter how far ahead the leader runs."""
        rules = self._rules({0: [1], 1: [0], 2: [3], 3: [2]})
        graph = SpatioTemporalGraph(rules, {0: 0, 1: 1, 2: 2, 3: 3})
        assert graph._bucket_fast
        for _ in range(50):
            graph.mark_running([0, 1])
            graph.commit([0, 1], {0: 0, 1: 1})
        assert not graph.is_blocked(0) and not graph.is_blocked(1)
        assert graph.step[0] == 50 and graph.step[2] == 0
        graph.validate()  # infinite distance satisfies §3.2 trivially

    def test_connected_laggard_blocks(self):
        """Same chain, but connected: the hop threshold must bite."""
        chain = {i: [j for j in (i - 1, i + 1) if 0 <= j <= 6]
                 for i in range(7)}
        rules = self._rules(chain)
        graph = SpatioTemporalGraph(rules, {0: 0, 1: 6})
        ref = DictReferenceGraph(rules, {0: 0, 1: 6})
        lead = 0
        while not graph.is_blocked(0):
            graph.mark_running([0])
            ref.running[0] = True
            graph.commit([0], {0: 0})
            ref.commit([0], {0: 0})
            lead += 1
            assert graph.blocked_by[0] == ref.blockers(0)
        # blocked exactly when (gap + 1) * 1 + 1 >= 6, i.e. gap 4.
        assert lead == 4
        assert graph.blockers_of(0) == frozenset({1})

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**9), n=st.integers(2, 10))
    def test_fast_path_matches_fallback_and_reference(self, seed, n):
        """Fuzz parity on random small worlds: the landmark-bucketed
        fast path, the linear ``_scan_fallback`` path, and the
        dict-reference oracle must agree on every edge set."""
        rng = FastRng(seed)
        n_nodes = max(n * 3, 8)
        adjacency = small_world(rng, n_nodes,
                                ties=rng.integers(0, 4))
        positions = {aid: rng.integers(0, n_nodes) for aid in range(n)}
        fast_rules = self._rules(adjacency, bucketing=True)
        slow_rules = self._rules(adjacency, bucketing=False)
        fast = SpatioTemporalGraph(fast_rules, positions)
        slow = SpatioTemporalGraph(slow_rules, positions)
        ref = DictReferenceGraph(fast_rules, positions)
        assert fast._bucket_fast and not slow._bucket_fast

        for _ in range(30):
            members = _random_cluster(fast, fast_rules, rng, n)
            assert members is not None, "graph deadlocked"
            fast.mark_running(members)
            slow.mark_running(members)
            for m in members:
                ref.running[m] = True
            new_pos = {}
            for m in members:
                node = fast.pos[m]
                neighbors = adjacency[node]
                pick = rng.integers(0, len(neighbors) + 1)
                new_pos[m] = node if pick == len(neighbors) \
                    else neighbors[pick]
            fast_result = fast.commit(members, new_pos)
            slow_result = slow.commit(members, new_pos)
            ref_unblocked, ref_neighbors, ref_member = ref.commit(
                members, new_pos)

            assert fast_result.unblocked == slow_result.unblocked \
                == ref_unblocked
            assert fast_result.neighbors == slow_result.neighbors \
                == ref_neighbors
            for m, lst in fast_result.member_neighbors.items():
                assert set(lst) == ref_member[m]
            for aid in range(n):
                assert fast.blocked_by[aid] == slow.blocked_by[aid]
            _assert_graph_matches_reference(fast, ref, n)
            _assert_fastpath_invariants(fast, ref, fast_rules, n)
            fast.validate()
        assert fast.fallback_scans == 0
        # every blocker scan the slow graph did went through the
        # linear fallback (it has no bucketed path at all)
        assert slow.fallback_scans == slow.scans


class TestGraphSteadyState:
    """The acceptance gate: graph-metric replays never take the
    linear fallback scan, and the zero-rescan machinery engages."""

    def test_social_graph_replay_never_falls_back(self):
        trace = scenario_window_trace("social-graph")
        result = run_replay(trace, SchedulerConfig(
            policy="metropolis", scenario="social-graph"))
        extra = result.driver_stats.extra
        assert extra["graph_fallback_scans"] == 0
        assert extra["graph_scan_skips"] > 0  # slack licences fire
        assert extra["graph_near_checks"] > 0  # near sets fire
        assert result.n_calls_completed == trace.n_calls

    def test_social_graph_scenario_rules_are_graph_metric(self):
        from repro.core.rules import rules_for
        trace = scenario_window_trace("social-graph")
        rules = rules_for(SchedulerConfig(scenario="social-graph"),
                          trace.meta)
        assert isinstance(rules.space, GraphSpace)
        assert rules.config.metric == "graph"
        assert rules.radius_p == 1.0

    def test_graph_trace_with_unresolvable_scenario_refuses(self):
        """A metric='graph' trace must never degrade to Euclidean rules
        — an unresolvable (or mislabeled) scenario fails loudly."""
        import dataclasses

        from repro.core.rules import rules_for
        from repro.errors import ScenarioError
        trace = scenario_window_trace("social-graph")
        gone = dataclasses.replace(trace.meta, scenario="not-a-scenario")
        with pytest.raises(ScenarioError, match="metric='graph'"):
            rules_for(None, gone)
        with pytest.raises(ScenarioError, match="metric='graph'"):
            rules_for(SchedulerConfig(scenario="smallville"), trace.meta)

    def test_loaded_graph_trace_validates_hop_speed(self, tmp_path):
        """Round-trip keeps graph traces honest: a corrupted position
        that teleports an agent is rejected at load."""
        import numpy as np

        from repro.errors import TraceError
        from repro.trace import load_trace, save_trace
        trace = scenario_window_trace("social-graph")
        path = tmp_path / "ok.npz"
        save_trace(trace, path)
        load_trace(path)  # intact: loads fine
        bad = np.array(trace.positions, copy=True)
        bad[0, 5, 0] = (bad[0, 4, 0] + 60) % 240  # ~30-hop teleport
        save_trace(
            type(trace)(trace.meta, bad, trace.call_step,
                        trace.call_agent, trace.call_func,
                        trace.call_in, trace.call_out),
            tmp_path / "bad.npz")
        with pytest.raises(TraceError, match="hops"):
            load_trace(tmp_path / "bad.npz")

    def test_concatenated_segments_stay_disjoint(self):
        """Multi-segment graph traces: the union space keeps segments
        at infinite distance, so cross-segment pairs never block."""
        from repro.scenarios import get_scenario
        scn = get_scenario("social-graph")
        space = scn.space(segments=2)
        world, _ = scn.world()
        stride = world.width + 1
        assert space.dist((0, 0), (1, 0)) <= 2.0
        assert space.dist((0, 0), (stride, 0)) == math.inf
        # and within one copy the metric matches the base space
        base = scn.space()
        assert space.dist((stride + 3, 0), (stride + 9, 0)) == \
            base.dist((3, 0), (9, 0))


class TestSampledLandmarks:
    """Approximate landmarks stay 1-Lipschitz, so every bucketing
    contract the blocker index relies on survives the sampled path."""

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**9), n=st.integers(6, 60))
    def test_sampled_cells_keep_the_lipschitz_lower_bound(self, seed, n):
        rng = FastRng(seed)
        adj = small_world(rng, n)
        space = GraphSpace(adj, sampled_component_min=2)  # force sampling
        for cell in (1.0, 2.0):
            buckets = {node: space.bucket(node, cell) for node in range(n)}
            for a in range(n):
                for b in range(a + 1, n):
                    dc = max(abs(buckets[a][0] - buckets[b][0]),
                             abs(buckets[a][1] - buckets[b][1]))
                    assert space.dist(a, b) >= (dc - 1) * cell

    def test_sampled_bucket_range_covers_radius(self):
        rng = FastRng(3)
        space = GraphSpace(small_world(rng, 40), sampled_component_min=2)
        for cell in (1.0, 2.0):
            for source in (0, 13, 27):
                for radius in (1.0, 3.0):
                    cells = set(space.bucket_range(source, radius, cell))
                    for node in range(40):
                        if space.dist(source, node) <= radius:
                            assert space.bucket(node, cell) in cells

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10**9), n=st.integers(2, 8),
           v=st.integers(8, 20))
    def test_blocking_fuzz_under_sampled_landmarks(self, seed, n, v):
        """The full dict-reference gate with sampling forced on: blocked
        edges must stay bit-equal even with approximate cells."""
        from test_hotpath_scheduler import _run_commit_fuzz
        rng = FastRng(seed)
        nodes = [(i, 0) for i in range(v)]
        adj = {node: set() for node in nodes}
        for i in range(1, v):
            j = rng.integers(0, i)
            adj[nodes[i]].add(nodes[j])
            adj[nodes[j]].add(nodes[i])
        space = GraphSpace({k: tuple(sorted(vs)) for k, vs in adj.items()},
                           sampled_component_min=2)
        rules = DependencyRules(
            DependencyConfig(radius_p=1.0, max_vel=1.0, metric="graph"),
            space=space)
        positions = {i: nodes[rng.integers(0, v)] for i in range(n)}

        def moves(pos):
            return [pos, *adj[pos]]

        _run_commit_fuzz(rules, positions, moves, rng, n, iters=15)

    def test_dense_id_levels_have_no_dict(self):
        """Dense ``(id, 0)`` graphs store levels in the numpy table
        only — the per-node dict would be ~100 bytes/node at 1M."""
        adj = {(i, 0): ((i + 1, 0),) if i + 1 < 50 else ()
               for i in range(50)}
        adj = {k: tuple(v) for k, v in adj.items()}
        full = {k: set(v) for k, v in adj.items()}
        for k, vs in adj.items():
            for o in vs:
                full[o].add(k)
        space = GraphSpace({k: tuple(sorted(v)) for k, v in full.items()},
                           sampled_component_min=4)
        assert space._larr is not None
        assert not space._levels
        assert space.bucket((0, 0), 1.0) is not None


class TestDistWithin:
    """Capped BFS: the scan paths only need distances up to their
    threshold, so far pairs must not cost a full-component BFS."""

    def test_within_cap_is_exact(self):
        rng = FastRng(9)
        space = GraphSpace(small_world(rng, 40))
        for a in range(0, 40, 5):
            for b in range(0, 40, 7):
                d = space.dist(a, b)
                if d <= 6.0:
                    assert space.dist_within(a, b, 6.0) == d

    def test_beyond_cap_reports_beyond(self):
        # A long path: distances beyond the cap must come back > cap
        # (inf from the truncated BFS, or exact from a warm cache).
        chain = {i: tuple(x for x in (i - 1, i + 1) if 0 <= x < 30)
                 for i in range(30)}
        space = GraphSpace(chain)
        assert space.dist_within(0, 29, 5.0) > 5.0
        assert space.dist_within(0, 3, 5.0) == 3.0

    def test_growing_cap_recomputes(self):
        chain = {i: tuple(x for x in (i - 1, i + 1) if 0 <= x < 20)
                 for i in range(20)}
        space = GraphSpace(chain)
        assert space.dist_within(0, 10, 3.0) > 3.0
        assert space.dist_within(0, 10, 12.0) == 10.0  # larger cap: redo
        assert space.dist_within(0, 4, 12.0) == 4.0    # memoized field

    def test_disconnected_is_infinite(self):
        space = GraphSpace({0: (1,), 1: (0,), 2: (3,), 3: (2,)})
        assert space.dist_within(0, 2, 100.0) == math.inf

    def test_agrees_with_dist_after_cache_warm(self):
        rng = FastRng(21)
        space = GraphSpace(small_world(rng, 30))
        for b in range(30):
            space.dist(0, b)  # warm the full-BFS cache for source 0
        for b in range(30):
            d = space.dist(0, b)
            got = space.dist_within(0, b, 2.0)
            # Warm cache may return the exact distance above the cap —
            # callers only compare against thresholds <= cap, so any
            # value > cap is equivalent to inf for them.
            assert got == d or (got > 2.0 and d > 2.0)
