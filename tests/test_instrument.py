"""Tests for timelines and concurrency instrumentation."""

from repro.config import SchedulerConfig
from repro.core import run_replay
from repro.instrument import (TimelineRecorder, concurrency_at,
                              concurrency_series, render_ascii_timeline)
from repro.instrument.timeline import TimelineEvent
from repro.serving.metrics import RequestRecord


def _record(start, end, rid=0):
    return RequestRecord(
        request_id=rid, replica_id=0, prompt_tokens=10, output_tokens=5,
        priority=0.0, submit_time=start, prefill_start=start,
        decode_start=start, finish_time=end)


class TestTimelineRecorder:
    def test_records_and_filters(self):
        rec = TimelineRecorder()
        rec.record(0, 3, 2, 1.0, 2.0)
        rec.record(1, 3, 2, 1.5, 2.5)
        assert len(rec.events) == 2
        assert [e.agent for e in rec.for_agent(1)] == [1]
        assert rec.span() == (1.0, 2.5)

    def test_event_func_name(self):
        e = TimelineEvent(0, 0, 0, 0.0, 1.0)
        assert e.func == "daily_plan"

    def test_empty_span(self):
        assert TimelineRecorder().span() == (0.0, 0.0)


class TestAsciiRendering:
    def test_renders_rows_per_agent(self):
        events = [TimelineEvent(0, 0, 2, 0.0, 5.0),
                  TimelineEvent(2, 0, 6, 5.0, 9.0)]
        art = render_ascii_timeline(events, n_agents=3, width=40)
        lines = art.splitlines()
        assert len([ln for ln in lines if ln.startswith("agent")]) == 3
        assert "A" in lines[1]  # action_decide glyph on agent 0's row
        assert "U" in lines[3]  # utterance glyph on agent 2's row

    def test_step_marks(self):
        events = [TimelineEvent(0, 0, 0, 0.0, 10.0)]
        art = render_ascii_timeline(events, n_agents=2, width=20,
                                    step_marks=[5.0])
        assert "|" in art.splitlines()[2]

    def test_empty(self):
        assert render_ascii_timeline([], 3) == "(no events)"

    def test_replay_integration(self, synthetic_trace, l4_serving):
        result = run_replay(synthetic_trace,
                            SchedulerConfig(policy="parallel-sync"),
                            l4_serving, collect_timeline=True)
        assert len(result.timeline.events) == synthetic_trace.n_calls
        art = render_ascii_timeline(
            result.timeline.events, synthetic_trace.meta.n_agents,
            step_marks=result.step_completion_times)
        assert "agent" in art


class TestConcurrency:
    def test_series_counts_overlap(self):
        records = [_record(0.0, 10.0), _record(2.0, 8.0), _record(12.0, 14.0)]
        times, counts = concurrency_series(records, resolution=100)
        assert counts.max() == 2
        assert counts.min() == 0

    def test_concurrency_at(self):
        records = [_record(0.0, 10.0), _record(2.0, 8.0)]
        assert concurrency_at(records, 5.0) == 2
        assert concurrency_at(records, 9.0) == 1
        assert concurrency_at(records, 11.0) == 0

    def test_empty_series(self):
        times, counts = concurrency_series([])
        assert len(times) == 0 and len(counts) == 0

    def test_integral_matches_metric(self, synthetic_trace, l4_serving):
        result = run_replay(synthetic_trace,
                            SchedulerConfig(policy="parallel-sync"),
                            l4_serving)
        times, counts = concurrency_series(
            result.engine_metrics.records, resolution=4000)
        sampled_mean = counts.mean()
        span = times[-1] - times[0]
        reported = result.engine_metrics.achieved_parallelism(span)
        assert abs(sampled_mean - reported) / max(reported, 1e-9) < 0.1
