"""Tests for the fault-tolerance subsystem (``repro.faults``): chaos
injection, the resilient client (retry/backoff/breaker/fallback), the
live engine's abort-and-redispatch + watchdog paths, serving-replica
blackouts, and the fault accounting surfaced on results.
"""

import threading
import time

import pytest

from repro.config import SchedulerConfig, ServingConfig
from repro.devent import Kernel
from repro.errors import (ConfigError, LLMCallError, SchedulingError,
                          ServingError, TransientLLMError)
from repro.faults import (ChaosClient, CircuitBreaker, FallbackLLMClient,
                          FaultSchedule, FaultStats, ResilientClient,
                          scheduler_diagnostics)
from repro.live import EchoLLMClient, LiveSimulation
from repro.serving import ServingEngine

from helpers import fast_fault_policy as _fast_policy


class TestFaultSchedule:
    def test_seeded_stream_is_reproducible(self):
        a = FaultSchedule(seed=7, transient_rate=0.3, hard_rate=0.2,
                          straggler_rate=0.1)
        b = FaultSchedule(seed=7, transient_rate=0.3, hard_rate=0.2,
                          straggler_rate=0.1)
        assert [a.next_verdict() for _ in range(200)] == \
            [b.next_verdict() for _ in range(200)]

    def test_burst_forces_hard_failures_first(self):
        sched = FaultSchedule(seed=0, burst=3)
        kinds = [sched.next_verdict()[0] for _ in range(5)]
        assert kinds[:3] == ["hard"] * 3
        assert kinds[3:] == [None, None]  # no rates: clean after burst

    def test_rate_validation(self):
        with pytest.raises(ConfigError):
            FaultSchedule(transient_rate=1.5)
        with pytest.raises(ConfigError):
            FaultSchedule(burst=-1)
        with pytest.raises(ConfigError):
            FaultSchedule(straggler_delay=-0.1)


class TestChaosClient:
    def test_hard_fault_raises_and_counts(self):
        client = ChaosClient(EchoLLMClient(),
                             FaultSchedule(seed=0, hard_rate=1.0))
        with pytest.raises(LLMCallError):
            client.complete("p", 8)
        assert client.injected["hard"] == 1

    def test_transient_fault_raises_and_counts(self):
        client = ChaosClient(EchoLLMClient(),
                             FaultSchedule(seed=0, transient_rate=1.0))
        with pytest.raises(TransientLLMError):
            client.complete("p", 8)
        assert client.injected["transient"] == 1

    def test_clean_call_delegates(self):
        inner = EchoLLMClient()
        client = ChaosClient(inner, FaultSchedule(seed=0))
        out = client.complete("p", 8)
        assert inner.calls == 1 and out

    def test_straggler_delays_then_delegates(self):
        inner = EchoLLMClient()
        client = ChaosClient(
            inner, FaultSchedule(seed=0, straggler_rate=1.0,
                                 straggler_delay=0.01))
        started = time.monotonic()
        client.complete("p", 8)
        assert time.monotonic() - started >= 0.01
        assert client.injected["straggler"] == 1 and inner.calls == 1


class _FlakyClient:
    """Fails the first ``fail_n`` calls with ``exc``, then echoes."""

    def __init__(self, fail_n: int, exc=TransientLLMError) -> None:
        self.fail_n = fail_n
        self.exc = exc
        self.calls = 0

    def complete(self, prompt, max_tokens, priority=0.0):
        self.calls += 1
        if self.calls <= self.fail_n:
            raise self.exc("flaky")
        return "ok"


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=2, cooldown=60.0)
        breaker.record_failure()
        assert not breaker.is_open
        breaker.record_failure()
        assert breaker.is_open and breaker.opens == 1
        assert not breaker.allow_call()

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2, cooldown=60.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert not breaker.is_open

    def test_half_open_trial_closes_on_success(self):
        breaker = CircuitBreaker(threshold=1, cooldown=0.01)
        breaker.record_failure()
        assert breaker.is_open
        time.sleep(0.02)
        assert breaker.allow_call()  # the half-open trial
        assert not breaker.allow_call()  # only one trial in flight
        breaker.record_success()
        assert not breaker.is_open and breaker.closes == 1
        assert breaker.allow_call()

    def test_failed_trial_restarts_cooldown(self):
        breaker = CircuitBreaker(threshold=1, cooldown=0.05)
        breaker.record_failure()
        time.sleep(0.06)
        assert breaker.allow_call()
        breaker.record_failure()
        assert breaker.is_open
        assert not breaker.allow_call()  # cooldown restarted


class TestResilientClient:
    def test_transient_failures_retried_to_success(self):
        inner = _FlakyClient(fail_n=2)
        client = ResilientClient(inner, _fast_policy(max_call_retries=3))
        assert client.complete("p", 8) == "ok"
        assert client.retries == 2 and inner.calls == 3

    def test_budget_exhausted_raises_hard(self):
        inner = _FlakyClient(fail_n=100)
        client = ResilientClient(inner, _fast_policy(max_call_retries=2))
        with pytest.raises(LLMCallError, match="after 3 attempts"):
            client.complete("p", 8)
        assert inner.calls == 3 and client.failures == 1

    def test_hard_failure_propagates_immediately(self):
        inner = _FlakyClient(fail_n=100, exc=LLMCallError)
        client = ResilientClient(inner, _fast_policy(max_call_retries=5))
        with pytest.raises(LLMCallError):
            client.complete("p", 8)
        assert inner.calls == 1  # hard failures are never retried in-place

    def test_slow_call_counts_as_timeout_and_retries(self):
        class Slow:
            calls = 0

            def complete(self, prompt, max_tokens, priority=0.0):
                self.calls += 1
                if self.calls == 1:
                    time.sleep(0.05)
                return "ok"

        inner = Slow()
        client = ResilientClient(
            inner, _fast_policy(call_timeout=0.01, max_call_retries=1))
        assert client.complete("p", 8) == "ok"
        assert client.timeouts == 1 and client.retries == 1

    def test_open_breaker_serves_fallback(self):
        fallback = FallbackLLMClient("degraded plan")
        inner = _FlakyClient(fail_n=100, exc=LLMCallError)
        client = ResilientClient(
            inner, _fast_policy(breaker_threshold=1,
                                breaker_cooldown=60.0),
            fallback=fallback)
        with pytest.raises(LLMCallError):
            client.complete("p", 8)
        assert client.breaker.is_open
        assert client.complete("p", 8) == "degraded plan"
        assert client.degraded == 1 and fallback.calls == 1
        assert inner.calls == 1  # primary untouched while open

    def test_backoff_stream_is_seeded(self):
        a = ResilientClient(_FlakyClient(2), _fast_policy(seed=3))
        b = ResilientClient(_FlakyClient(2), _fast_policy(seed=3))
        assert [a._rng.random() for _ in range(8)] == \
            [b._rng.random() for _ in range(8)]


class TestDiagnosticsAndStats:
    def test_diagnostics_sections(self):
        text = scheduler_diagnostics(
            done=3, total=10, blocked={1: [2], 4: [5, 6]}, running=[7],
            ready_depth=2, ack_depth=0, last_ack_age=1.5, redispatches=4)
        assert "progress: 3/10 agents done" in text
        assert "blocked pairs (2 agents)" in text
        assert "running clusters (1 agents)" in text
        assert "ready=2 ack=0" in text
        assert "redispatches so far: 4" in text

    def test_diagnostics_truncates_long_lists(self):
        blocked = {i: [i + 1] for i in range(50)}
        text = scheduler_diagnostics(done=0, total=60, blocked=blocked)
        assert "(+30 more)" in text

    def test_fault_stats_flattens_injected(self):
        stats = FaultStats(llm_retries=2, injected={"hard": 3})
        flat = stats.as_dict()
        assert flat["llm_retries"] == 2
        assert flat["injected_hard"] == 3
        assert stats.any_faults


class _GridProgram:
    """Far-apart agents, one deterministic move + LLM call per step."""

    def __init__(self, n_agents: int = 4) -> None:
        self.n_agents = n_agents
        self._pos = {aid: (0.0, float(aid) * 1000.0)
                     for aid in range(n_agents)}
        self._stepped: dict[int, int] = {}

    def position(self, aid):
        return self._pos[aid]

    def execute(self, step, agent_ids, client):
        for aid in agent_ids:
            if self._stepped.get(aid, -1) < step:  # idempotent re-delivery
                x, y = self._pos[aid]
                self._pos[aid] = (x + 1.0, y)
                self._stepped[aid] = step
            client.complete(f"agent {aid} step {step}", 8,
                            priority=float(step))


class TestLiveEngineFaultTolerance:
    def test_clean_run_reports_zero_faults(self):
        sim = LiveSimulation(_GridProgram(), EchoLLMClient(),
                             scheduler=SchedulerConfig(
                                 faults=_fast_policy()),
                             num_workers=2)
        result = sim.run(target_step=3)
        assert not result.faults.any_faults
        assert result.final_positions[0] == (3.0, 0.0)

    def test_transient_chaos_absorbed_by_retries(self):
        sim = LiveSimulation(
            _GridProgram(),
            ChaosClient(EchoLLMClient(),
                        FaultSchedule(seed=1, transient_rate=0.4)),
            scheduler=SchedulerConfig(
                faults=_fast_policy(max_call_retries=8)),
            num_workers=2)
        result = sim.run(target_step=5)
        assert result.faults.llm_retries >= 1
        assert result.faults.injected.get("transient", 0) >= 1
        assert result.faults.aborted_clusters == 0
        for aid in range(4):
            assert result.final_positions[aid][0] == 5.0

    def test_hard_failures_abort_and_redispatch(self):
        sim = LiveSimulation(
            _GridProgram(),
            ChaosClient(EchoLLMClient(),
                        FaultSchedule(seed=2, hard_rate=0.3)),
            scheduler=SchedulerConfig(faults=_fast_policy()),
            num_workers=2)
        result = sim.run(target_step=5)
        assert result.faults.aborted_clusters >= 1
        assert result.faults.redispatches >= 1
        assert result.faults.leaked_workers == 0
        for aid in range(4):
            assert result.final_positions[aid][0] == 5.0

    def test_persistent_failure_degrades_to_fallback(self):
        fallback = FallbackLLMClient()
        sim = LiveSimulation(
            _GridProgram(n_agents=2),
            ChaosClient(EchoLLMClient(),
                        FaultSchedule(seed=0, hard_rate=1.0)),
            scheduler=SchedulerConfig(
                faults=_fast_policy(max_redispatches=1,
                                    breaker_threshold=100)),
            num_workers=2, fallback_client=fallback)
        result = sim.run(target_step=2)
        assert result.faults.degraded_completions >= 1
        assert fallback.calls >= 1
        for aid in range(2):
            assert result.final_positions[aid][0] == 2.0

    def test_burst_opens_breaker(self):
        sim = LiveSimulation(
            _GridProgram(n_agents=2),
            ChaosClient(EchoLLMClient(), FaultSchedule(seed=0, burst=4)),
            scheduler=SchedulerConfig(
                faults=_fast_policy(breaker_threshold=2,
                                    breaker_cooldown=60.0)),
            num_workers=2)
        result = sim.run(target_step=3)
        assert result.faults.breaker_opens >= 1
        assert result.faults.degraded_completions >= 1

    def test_lockstep_mode_redispatches_too(self):
        sim = LiveSimulation(
            _GridProgram(),
            ChaosClient(EchoLLMClient(),
                        FaultSchedule(seed=3, hard_rate=0.2)),
            scheduler=SchedulerConfig(policy="parallel-sync",
                                      faults=_fast_policy()),
            num_workers=2)
        result = sim.run(target_step=4)
        assert result.faults.redispatches >= 1
        for aid in range(4):
            assert result.final_positions[aid][0] == 4.0

    def test_watchdog_converts_hang_into_diagnostic_error(self):
        class Hanging:
            def __init__(self):
                self.release = threading.Event()
                self._first = True
                self._lock = threading.Lock()

            def complete(self, prompt, max_tokens, priority=0.0):
                with self._lock:
                    hang, self._first = self._first, False
                if hang:
                    self.release.wait()
                return "ok"

        client = Hanging()
        sim = LiveSimulation(
            _GridProgram(n_agents=2), client,
            scheduler=SchedulerConfig(
                faults=_fast_policy(watchdog_timeout=0.2,
                                    worker_join_grace=0.1,
                                    call_timeout=3600.0)),
            num_workers=1)
        started = time.monotonic()
        with pytest.raises(SchedulingError, match="watchdog"):
            sim.run(target_step=3)
        assert time.monotonic() - started < 5.0
        client.release.set()

    def test_scenario_fallback_client_hook(self):
        from repro.scenarios import get_scenario
        client = get_scenario("smallville").fallback_client()
        assert client.complete("p", 8)


class TestReplicaBlackout:
    def _engine(self, fidelity: str, kv_policy: str = "none"):
        kernel = Kernel()
        engine = ServingEngine(
            kernel, ServingConfig(dp=2, fidelity=fidelity,
                                  kv_policy=kv_policy))
        return kernel, engine

    @pytest.mark.parametrize("fidelity", ["iteration", "fluid"])
    def test_inflight_requests_rerouted_and_served(self, fidelity):
        kernel, engine = self._engine(fidelity)
        done = []
        for i in range(8):
            engine.generate(prompt_tokens=400, output_tokens=20,
                            on_complete=lambda r: done.append(r.request_id),
                            agent_id=i)
        kernel.call_at(1e-4, engine.blackout_replica, 1)
        kernel.run()
        assert sorted(done) == list(range(1, 9))  # every call served once
        assert engine.replica_blackouts == 1
        assert engine.rerouted_requests >= 1
        assert engine.idle()

    @pytest.mark.parametrize("fidelity", ["iteration", "fluid"])
    def test_retained_kv_lost_on_blackout(self, fidelity):
        kernel, engine = self._engine(fidelity, kv_policy="lru")
        for i in range(4):
            engine.generate(prompt_tokens=400, output_tokens=20,
                            agent_id=i)
        kernel.run()
        victim = next(r for r in engine.replicas
                      if r.kv.retained_tokens > 0)
        retained = victim.kv.retained_tokens
        engine.blackout_replica(victim.replica_id)
        assert engine.lost_retained_tokens == retained
        fresh = engine.replicas[victim.replica_id]
        assert fresh is not victim and fresh.kv.retained_tokens == 0

    def test_busy_time_and_kv_stats_carried(self):
        kernel, engine = self._engine("fluid", kv_policy="lru")
        for i in range(4):
            engine.generate(prompt_tokens=400, output_tokens=20,
                            agent_id=i)
        kernel.run()
        before = engine.kv_stats()
        busy_before = sum(r.busy_time for r in engine.replicas)
        engine.blackout_replica(0)
        after = engine.kv_stats()
        assert after["hits"] == before["hits"]
        assert after["misses"] == before["misses"]
        assert engine.busy_fraction(1.0) == pytest.approx(
            busy_before / len(engine.replicas))
        stats = engine.fault_stats()
        assert stats["replica_blackouts"] == 1

    def test_blackout_of_unknown_replica_raises(self):
        _, engine = self._engine("fluid")
        with pytest.raises(ServingError):
            engine.blackout_replica(5)
