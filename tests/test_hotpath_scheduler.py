"""Tests for the §3.6 hot-path overhaul: the array-backed dependency
graph against a dict-based reference model (randomized commit-order
fuzz, grid and graph metrics), the graph-native coupling components,
the single-event round loop's kernel-event budget, the buffered spatial
queries, and the hotpath benchmark harness.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro._util import FastRng
from repro.config import DependencyConfig
from repro.core import DependencyRules
from repro.core.clustering import ClusterCache, SpatialIndex
from repro.core.dependency_graph import SpatioTemporalGraph
from repro.core.space import EuclideanSpace
from repro.errors import CausalityViolation, SchedulingError

from helpers import grid_moves, grid_positions, tree_chord_space


class DictReferenceGraph:
    """From-scratch, dict-based model of the dependency graph.

    Everything is recomputed on demand from the §3.2 predicates — no
    incremental bookkeeping, no spatial pruning — so any divergence in
    the array-backed implementation's caches shows up as a mismatch.
    """

    def __init__(self, rules, positions, start_step=0):
        self.rules = rules
        self.step = {aid: start_step for aid in positions}
        self.pos = dict(positions)
        self.running = {aid: False for aid in positions}

    def blockers(self, aid):
        return {b for b in self.pos
                if b != aid and self.rules.blocked(
                    self.pos[aid], self.step[aid],
                    self.pos[b], self.step[b])}

    def commit(self, members, new_positions):
        members = set(members)
        blocked_before = {a: bool(self.blockers(a)) for a in self.pos}
        for m in members:
            assert self.running[m], "reference: commit of a non-running"
            self.running[m] = False
            self.step[m] += 1
            self.pos[m] = new_positions[m]
        unblocked = {a for a in self.pos
                     if not self.blockers(a)
                     and (a in members or blocked_before[a])}
        couple = self.rules.couple_threshold
        dist = self.rules.space.dist
        member_neighbors = {
            m: {b for b in self.pos
                if b != m and dist(self.pos[m], self.pos[b]) <= couple}
            for m in members}
        neighbors = set().union(*member_neighbors.values()) \
            if member_neighbors else set()
        return unblocked, neighbors, member_neighbors


def _ref_component(ref, rules, aid):
    """Fresh BFS of ``aid``'s coupling component over the dict reference."""
    step = ref.step[aid]
    comp = {aid}
    frontier = [aid]
    while frontier:
        x = frontier.pop()
        for other in ref.pos:
            if (other not in comp and not ref.running[other]
                    and ref.step[other] == step
                    and rules.coupled(ref.pos[x], ref.pos[other])):
                comp.add(other)
                frontier.append(other)
    return sorted(comp)


def _random_cluster(graph, rules, rng, n, exclude=frozenset()):
    """A dispatchable coupled cluster under ``graph``, or None."""
    order = sorted(range(n), key=lambda _: rng.random())
    for seed_aid in order:
        if (seed_aid in exclude or graph.running[seed_aid]
                or graph.is_blocked(seed_aid)):
            continue
        cluster = {seed_aid}
        frontier = [seed_aid]
        while frontier:
            x = frontier.pop()
            for other in range(n):
                if (other not in cluster
                        and not graph.running[other]
                        and graph.step[other] == graph.step[x]
                        and rules.coupled(graph.pos[x], graph.pos[other])):
                    cluster.add(other)
                    frontier.append(other)
        if any(graph.is_blocked(m) for m in cluster):
            continue
        return sorted(cluster)
    return None


def _assert_graph_matches_reference(graph, ref, n):
    """Blocked edges, waiters, min/max step == dict reference."""
    for aid in range(n):
        if not graph.running[aid]:
            assert graph.blocked_by[aid] == ref.blockers(aid), \
                f"agent {aid} blockers diverged"
    # waiters must be the exact inverse of blocked_by
    for b in range(n):
        assert graph.waiters[b] == {
            a for a in range(n) if b in graph.blocked_by[a]}
    assert graph.min_step == min(ref.step.values())
    assert graph.max_step == max(ref.step.values())


def _assert_fastpath_invariants(graph, ref, rules, n):
    """The zero-rescan machinery's conservative bounds hold exactly.

    Pins the slack-bound scan licence, the near sets, the blocked-pair
    wake steps, and the step-bucket slot table against the from-scratch
    reference.
    """
    mv = rules.max_vel
    base_r = rules.radius_p + mv
    dist = rules.space.dist
    for aid in range(n):
        if graph.running[aid]:
            continue
        s = graph.step[aid]
        shrink = 2.0 * mv * (s - graph._scan_step[aid])
        near = graph._near[aid]
        # Scan-skip licence: while the recorded slack outlasts the
        # worst-case shrink, the agent provably has no blockers.
        if near is not None and shrink < graph._scan_slack[aid]:
            assert ref.blockers(aid) == set(), \
                f"agent {aid} skip licence is unsound"
        # Near-set licence: within the horizon, only near members block.
        if near is not None and shrink <= graph._slack_horizon:
            assert ref.blockers(aid) <= set(near), \
                f"agent {aid} has a blocker outside its near set"
    # Wake steps: a pair inside its wake window is provably still
    # blocked (the re-check skip can never miss a release).
    for b in range(n):
        for a, wake in graph._wake[b].items():
            if a in graph.waiters[b] and graph.step[b] <= wake:
                g = graph.step[a] - graph.step[b]
                assert g > 0 and dist(graph.pos[a], graph.pos[b]) <= \
                    base_r + g * mv, f"wake step of pair {b}->{a} unsound"
    if not graph._bucket_fast:
        return
    # Step-bucket migration: the slot table is exactly the partition of
    # agents by (step, cell), and every live slot is correctly keyed.
    cell = graph.index.cell
    expected = {}
    for aid in range(n):
        p = graph.pos[aid]
        key = (graph.step[aid],) + rules.space.bucket(p, cell)
        expected.setdefault(key, set()).add(aid)
    assert graph._slot_snapshot() == expected
    # Banded layout: every live key sits in the band derived from its
    # cell, the parallel columns agree with the key, and the per-band
    # tables are exactly the live keys (no leaked empty slots/bands).
    B = graph._band
    for key, (band, idx) in graph._bslot.items():
        assert graph._bands[(key[1] // B, key[2] // B)] is band
        assert band.keys[idx] == key
        assert (band.steps[idx], band.xs[idx], band.ys[idx]) == key
    live_slots = sum(len(b.steps) for b in graph._bands.values())
    assert live_slots == len(graph._bslot)
    assert all(b.steps for b in graph._bands.values())


def _run_commit_fuzz(rules, positions, move_candidates, rng, n,
                     iters=40, band_size=None):
    """Shared fuzz body: random batched commits vs the dict reference.

    ``move_candidates(pos)`` returns the legal next positions of an
    agent at ``pos`` (must respect ``max_vel`` in the rules' metric).
    ``band_size`` stresses the banded slot table: 1 maximizes the
    band-window walk, a huge value degenerates to one global band
    (the unbanded reference layout) — blocked edges must be bit-equal
    to the dict reference either way.
    """
    graph = SpatioTemporalGraph(rules, positions, band_size=band_size)
    ref = DictReferenceGraph(rules, positions)

    for _ in range(iters):
        # Batched commits: retire 1-3 disjoint dispatchable clusters
        # through a single graph.commit, like the coalesced flush does.
        batch: list[int] = []
        for _attempt in range(rng.integers(1, 4)):
            members = _random_cluster(graph, rules, rng, n,
                                      exclude=set(batch))
            if members is None:
                continue
            graph.mark_running(members)
            for m in members:
                ref.running[m] = True
            batch += members
        if not batch:
            members = _random_cluster(graph, rules, rng, n)
            assert members is not None, "graph deadlocked"
            graph.mark_running(members)
            for m in members:
                ref.running[m] = True
            batch = members
        new_pos = {}
        for m in batch:
            cands = move_candidates(graph.pos[m])
            new_pos[m] = cands[rng.integers(0, len(cands))]
        result = graph.commit(batch, new_pos)
        ref_unblocked, ref_neighbors, ref_member = ref.commit(batch,
                                                              new_pos)

        # 1. identical unblock candidates, split exactly as commit
        #    reports them — per-member neighborhoods included
        assert result.unblocked == ref_unblocked
        assert result.neighbors == ref_neighbors
        assert set(result.member_neighbors) == set(ref_member)
        for m, lst in result.member_neighbors.items():
            assert set(lst) == ref_member[m], \
                f"member {m} neighborhood diverged"
        for aid in ref_unblocked | ref_neighbors:
            assert aid in result  # CommitResult membership back-compat
        # 2. identical blocked edges / waiters / min-max step
        _assert_graph_matches_reference(graph, ref, n)
        # 3. the zero-rescan bounds stay conservative
        _assert_fastpath_invariants(graph, ref, rules, n)
        # 4. graph-native coupling components == fresh reference BFS
        #    after every commit (memoization + in-graph invalidation)
        for aid in range(n):
            if not graph.running[aid]:
                assert graph.component_for(aid, set()) == \
                    _ref_component(ref, rules, aid), \
                    f"agent {aid} component diverged"


class TestGraphMatchesReferenceModel:
    """The ISSUE's fuzz gate: array-backed graph == dict reference."""

    @pytest.mark.parametrize("metric", ["euclidean", "chebyshev",
                                        "manhattan"])
    @pytest.mark.parametrize("band_size", [None, 1, 10**9])
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10**9), n=st.integers(2, 12))
    def test_randomized_commit_order(self, metric, band_size, seed, n):
        rng = FastRng(seed)
        rules = DependencyRules(DependencyConfig(metric=metric))
        positions = grid_positions(rng, n)
        _run_commit_fuzz(rules, positions, grid_moves, rng, n,
                         band_size=band_size)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**9), n=st.integers(2, 10),
           v=st.integers(6, 24))
    def test_randomized_commit_order_graph_metric(self, seed, n, v):
        """Same gate on hop-distance worlds: the landmark-bucketed fast
        path, the vectorized bucket_mat bookkeeping, and graph-native
        components must all match the dict reference exactly."""
        rng = FastRng(seed)
        space, adj = tree_chord_space(rng, v)
        rules = DependencyRules(
            DependencyConfig(radius_p=1.0, max_vel=1.0, metric="graph"),
            space=space)
        positions = {i: (rng.integers(0, v), 0) for i in range(n)}

        def moves(pos):
            return [pos, *adj[pos]]  # stay or one hop (max_vel=1)

        _run_commit_fuzz(rules, positions, moves, rng, n, iters=30)

    def test_distant_laggard_pruned_until_it_blocks(self):
        """Wide step spread: the coarse min-step prune must never hide a
        far laggard whose blocking sphere finally reaches the leader."""
        rules = DependencyRules(DependencyConfig())
        positions = {0: (0.0, 0.0), 1: (150.0, 0.0)}  # distinct coarse cells
        graph = SpatioTemporalGraph(rules, positions)
        ref = DictReferenceGraph(rules, positions)
        for _ in range(160):
            if graph.is_blocked(1):
                break
            graph.mark_running([1])
            ref.running[1] = True
            graph.commit([1], {1: (150.0, 0.0)})
            ref.commit([1], {1: (150.0, 0.0)})
            assert graph.blocked_by[1] == ref.blockers(1)
        # blocked exactly when (gap + 1) * max_vel + radius_p >= 150,
        # i.e. the commit that lands the leader on step 145
        assert graph.is_blocked(1)
        assert graph.step[1] == 145
        assert graph.blockers_of(1) == frozenset({0})

    def test_dense_ids_required(self):
        rules = DependencyRules(DependencyConfig())
        with pytest.raises(SchedulingError):
            SpatioTemporalGraph(rules, {0: (0, 0), 2: (5, 0)})


class TestGraphNativeComponents:
    """Coupling components memoized inside the graph (PR 5 fold)."""

    def _graph(self):
        rules = DependencyRules(DependencyConfig())
        positions = {0: (0, 0), 1: (2, 0), 2: (50, 0), 3: (52, 0),
                     4: (200, 0)}
        return rules, SpatioTemporalGraph(rules, positions)

    def test_component_memoized_between_rounds(self):
        _, graph = self._graph()
        assert graph.component_for(0, set()) == [0, 1]
        assert graph.comp_misses == 1
        assert graph.component_for(1, set()) == [0, 1]
        assert graph.comp_hits == 1  # second seed reuses the memo

    def test_singletons_not_memoized(self):
        _, graph = self._graph()
        assert graph.component_for(4, set()) == [4]
        assert graph.component_for(4, set()) == [4]
        assert graph.comp_hits == 0 and graph.comp_misses == 2

    def test_mark_running_invalidates(self):
        _, graph = self._graph()
        graph.component_for(0, set())
        graph.mark_running([0, 1])
        graph.commit([0, 1], {0: (0, 0), 1: (2, 0)})
        # both moved a step: the memo is gone and the BFS re-runs
        assert graph.component_for(0, set()) == [0, 1]
        assert graph.comp_misses == 2

    def test_commit_invalidates_neighbors(self):
        _, graph = self._graph()
        assert graph.component_for(2, set()) == [2, 3]
        graph.mark_running([4])
        # 4 lands within coupling range of 3: the cached {2, 3}
        # component must merge with it on the next round.
        graph.commit([4], {4: (53, 0)})
        visited: set[int] = set()
        assert graph.component_for(2, visited) == [2, 3]
        # (4 is one step ahead now, so it joins once 2/3 catch up —
        # what matters here is that the stale memo was dropped)
        assert graph.comp_misses == 2

    def test_visited_updated_on_hit(self):
        _, graph = self._graph()
        graph.component_for(0, set())
        visited: set[int] = set()
        graph.component_for(0, visited)
        assert visited == {0, 1}

    def test_exclude_hook_skips_agents(self):
        _, graph = self._graph()
        got = graph.build_component(0, set(), lambda aid: aid == 1)
        assert got == [0]


class TestClusterCacheShim:
    """The deprecated standalone cache: warns, still delegates."""

    def _cache(self):
        with pytest.warns(DeprecationWarning, match="graph-native|"
                          "SpatioTemporalGraph"):
            return ClusterCache()

    def test_store_get_roundtrip(self):
        cache = self._cache()
        cache.store([1, 2, 3])
        assert cache.get(2) == [1, 2, 3]
        assert cache.hits == 1

    def test_miss_counts(self):
        cache = self._cache()
        assert cache.get(7) is None
        assert cache.misses == 1

    def test_invalidate_drops_whole_component(self):
        cache = self._cache()
        cache.store([1, 2, 3])
        cache.store([4, 5])
        cache.invalidate([2])
        assert cache.get(1) is None and cache.get(3) is None
        assert cache.get(4) == [4, 5]
        assert len(cache) == 1

    def test_store_evicts_stale_overlap(self):
        cache = self._cache()
        cache.store([1, 2])
        cache.store([2, 3])
        assert cache.get(1) is None
        assert cache.get(3) == [2, 3]

    def test_clear(self):
        cache = self._cache()
        cache.store([1])
        cache.clear()
        assert cache.get(1) is None


class TestSpatialIndexBuffers:
    def test_query_into_reuses_buffer(self):
        index = SpatialIndex(EuclideanSpace(), cell=5.0)
        for i in range(20):
            index.insert(i, (float(i), 0.0))
        buf = []
        got = index.query_into((0.0, 0.0), 3.0, buf)
        assert got is buf
        assert sorted(buf) == [0, 1, 2, 3]
        index.query_into((10.0, 0.0), 1.0, buf)
        assert sorted(buf) == [9, 10, 11]  # cleared between queries

    def test_wide_query_crossover_matches_stencil(self):
        rng = FastRng(3)
        index = SpatialIndex(EuclideanSpace(), cell=5.0)
        pts = {i: (rng.integers(0, 400), rng.integers(0, 300))
               for i in range(120)}
        for i, p in pts.items():
            index.insert(i, p)
        space = EuclideanSpace()
        for radius in (4.0, 60.0, 500.0):  # stencil, crossover, all
            got = sorted(index.query((200, 150), radius))
            want = sorted(i for i, p in pts.items()
                          if space.dist((200, 150), p) <= radius)
            assert got == want

    def test_move_between_buckets(self):
        index = SpatialIndex(EuclideanSpace(), cell=5.0)
        index.insert(0, (0.0, 0.0))
        index.move(0, (50.0, 0.0))
        assert index.query((0.0, 0.0), 2.0) == []
        assert index.query((50.0, 0.0), 2.0) == [0]
        assert index.position(0) == (50.0, 0.0)


class TestHotpathBench:
    def test_report_shape_and_throughput(self, tmp_path):
        from repro.bench.hotpath import run_hotpath

        out = tmp_path / "hp.json"
        report = run_hotpath(scenarios=["smallville"], agent_counts=(5,),
                             out=out)
        assert out.exists()
        entry = report["entries"][0]
        assert entry["scenario"] == "smallville"
        assert entry["agent_steps"] == entry["n_agents"] * entry["n_steps"]
        assert entry["agent_steps_per_sec"] > 0
        assert entry["controller_time_s"] == pytest.approx(
            entry["time_clustering_s"] + entry["time_graph_s"]
            + entry["time_dispatch_s"])
        assert entry["controller_rounds"] > 0

    def test_baseline_comparison_and_gate(self, tmp_path):
        from repro.bench.hotpath import check_report, run_hotpath

        base = tmp_path / "base.json"
        baseline = run_hotpath(scenarios=["smallville"], agent_counts=(5,),
                               out=base)
        # Halve the recorded baseline so the fresh run must show >= 2x.
        for e in baseline["entries"]:
            e["agent_steps_per_sec"] /= 2.0
        base.write_text(json.dumps(baseline))
        report = run_hotpath(scenarios=["smallville"], agent_counts=(5,),
                             baseline=base)
        entry = report["entries"][0]
        assert entry["speedup_vs_baseline"] > 1.0
        # gate passes at a trivial floor, fails at an absurd one
        assert check_report(report, min_throughput=1.0,
                            min_speedup=0.1) == []
        failures = check_report(report, min_throughput=1e12,
                                min_speedup=1e12)
        assert len(failures) == 2

    def test_retry_perf_cells_rescues_noise(self, tmp_path, monkeypatch):
        """A cell failing the ratio bar is re-measured; best run wins."""
        from repro.bench import hotpath as hp

        base = tmp_path / "base.json"
        baseline = hp.run_hotpath(scenarios=["smallville"],
                                  agent_counts=(5,), out=base)
        # Inflate the baseline so the fresh run fails the 0.9x bar.
        for e in baseline["entries"]:
            e["agent_steps_per_sec"] *= 100.0
        base.write_text(json.dumps(baseline))
        out = tmp_path / "hp.json"
        report = hp.run_hotpath(scenarios=["smallville"], agent_counts=(5,),
                                baseline=base, out=out)
        entry = report["entries"][0]
        assert entry["speedup_vs_baseline"] < 0.9

        fast = dict(entry)
        fast["agent_steps_per_sec"] = \
            baseline["entries"][0]["agent_steps_per_sec"] * 2
        monkeypatch.setattr(hp, "bench_one", lambda *a, **k: dict(fast))
        retried = hp.retry_perf_cells(report, baseline=base,
                                      min_throughput=1.0, min_speedup=0.9,
                                      out=out)
        assert retried == ["smallville@5"]
        assert report["entries"][0]["speedup_vs_baseline"] > 0.9
        assert hp.check_report(report, min_throughput=1.0,
                               min_speedup=0.9) == []
        # The written artifact matches the gate decision.
        rewritten = json.loads(out.read_text())
        assert rewritten["entries"][0]["speedup_vs_baseline"] > 0.9

    def test_retry_perf_cells_keeps_real_regressions(self, tmp_path,
                                                     monkeypatch):
        """A cell that is slow every attempt still fails, best kept."""
        from repro.bench import hotpath as hp

        base = tmp_path / "base.json"
        baseline = hp.run_hotpath(scenarios=["smallville"],
                                  agent_counts=(5,), out=base)
        for e in baseline["entries"]:
            e["agent_steps_per_sec"] *= 100.0
        base.write_text(json.dumps(baseline))
        report = hp.run_hotpath(scenarios=["smallville"], agent_counts=(5,),
                                baseline=base)
        entry = dict(report["entries"][0])

        calls = []
        slower = dict(entry)
        slower["agent_steps_per_sec"] = entry["agent_steps_per_sec"] / 2

        def fake_bench(*a, **k):
            calls.append(a)
            return dict(slower)

        monkeypatch.setattr(hp, "bench_one", fake_bench)
        hp.retry_perf_cells(report, baseline=base, min_throughput=1.0,
                            min_speedup=0.9, retries=2)
        assert len(calls) == 2  # retried, but never masked the failure
        # The slower re-run did not replace the original measurement.
        assert report["entries"][0]["agent_steps_per_sec"] == \
            entry["agent_steps_per_sec"]
        assert hp.check_report(report, min_throughput=1.0,
                               min_speedup=0.9) != []

    def test_cli_check_requires_baseline(self, tmp_path, capsys):
        from repro.bench.cli import main as cli_main

        rc = cli_main(["hotpath", "--scenario", "smallville",
                       "--agents", "5", "--out", str(tmp_path / "hp.json"),
                       "--baseline", str(tmp_path / "missing.json"),
                       "--check"])
        assert rc == 1  # a missing baseline must not pass the gate
        assert "baseline" in capsys.readouterr().err

    def test_cli_check_flags(self, tmp_path, capsys):
        from repro.bench.cli import main as cli_main
        from repro.bench.hotpath import run_hotpath

        base = tmp_path / "base.json"
        run_hotpath(scenarios=["smallville"], agent_counts=(5,), out=base)
        out = tmp_path / "hp.json"
        rc = cli_main(["hotpath", "--scenario", "smallville",
                       "--agents", "5", "--out", str(out),
                       "--baseline", str(base),
                       "--check", "--min-throughput", "1",
                       "--min-speedup", "0.1"])
        assert rc == 0
        assert out.exists()
        assert "hotpath gate: ok" in capsys.readouterr().out

    def test_cli_agents_comma_list(self, tmp_path):
        """``--agents 3,5`` overrides the matrix without code edits."""
        from repro.bench.cli import main as cli_main

        out = tmp_path / "hp.json"
        rc = cli_main(["hotpath", "--scenario", "smallville",
                       "--agents", "3,5", "--out", str(out)])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["agent_counts"] == [3, 5]
        assert [e["n_agents"] for e in report["entries"]] == [3, 5]

    def test_cli_agents_rejects_garbage(self, capsys):
        from repro.bench.cli import main as cli_main

        with pytest.raises(SystemExit):
            cli_main(["hotpath", "--agents", "25,banana"])
        assert "invalid agent count list" in capsys.readouterr().err

    def test_check_requires_matrix_cells(self, tmp_path):
        """--check fails loudly when a required matrix cell is absent."""
        from repro.bench.hotpath import check_report, run_hotpath

        base = tmp_path / "base.json"
        run_hotpath(scenarios=["smallville"], agent_counts=(5,), out=base)
        report = run_hotpath(scenarios=["smallville"], agent_counts=(5,),
                             baseline=base)
        failures = check_report(report, min_throughput=1.0,
                                min_speedup=0.1, required_counts=(5, 2000))
        assert any("2000" in f and "missing" in f for f in failures)
        assert check_report(report, min_throughput=1.0, min_speedup=0.1,
                            required_counts=(5,)) == []

    def test_cli_require_agents_gate(self, tmp_path, capsys):
        """The CLI matrix gate: passing and failing --require-agents."""
        from repro.bench.cli import main as cli_main
        from repro.bench.hotpath import run_hotpath

        base = tmp_path / "base.json"
        run_hotpath(scenarios=["smallville"], agent_counts=(5,), out=base)
        common = ["hotpath", "--scenario", "smallville", "--agents", "5",
                  "--out", str(tmp_path / "hp.json"),
                  "--baseline", str(base), "--check",
                  "--min-throughput", "1", "--min-speedup", "0.1"]
        assert cli_main(common + ["--require-agents", "5"]) == 0
        rc = cli_main(common + ["--require-agents", "5,2000"])
        assert rc == 1
        assert "required matrix cell missing" in capsys.readouterr().err

    def test_driver_reports_cache_counters(self, synthetic_trace):
        from repro.config import SchedulerConfig
        from repro.core import run_replay

        result = run_replay(synthetic_trace,
                            SchedulerConfig(policy="metropolis"))
        stats = result.driver_stats
        assert stats.controller_time > 0
        assert stats.controller_rounds > 0
        # coalescing: rounds never exceed commits + the initial round
        assert stats.controller_rounds <= stats.clusters_dispatched + 1
        assert stats.extra["cluster_cache_hits"] >= 0
        assert stats.extra["cluster_cache_misses"] > 0

    @pytest.mark.parametrize("policy", ["metropolis", "metropolis-spec"])
    def test_kernel_events_per_cluster_amortized_o1(self, synthetic_trace,
                                                    policy):
        """Single-event rounds: the driver schedules strictly fewer
        kernel events than the old dispatch + commit pair per cluster,
        even on a tiny trace with almost no ack coalescing (the hotpath
        CI gate pins the coalesced matrix at <= 1.0)."""
        from repro.config import SchedulerConfig
        from repro.core import run_replay

        result = run_replay(synthetic_trace, SchedulerConfig(policy=policy))
        stats = result.driver_stats
        events = stats.extra["kernel_events"]
        assert events > 0
        assert events / stats.clusters_dispatched < 2.0
        # one launch event per dispatching round + one round event per
        # finish instant bounds the total
        assert events <= 2 * stats.controller_rounds + 1

    def test_report_entry_carries_churn_counters(self, tmp_path):
        from repro.bench.hotpath import check_report, run_hotpath

        base = tmp_path / "base.json"
        run_hotpath(scenarios=["smallville"], agent_counts=(5,), out=base)
        report = run_hotpath(scenarios=["smallville"], agent_counts=(5,),
                             baseline=base, out=tmp_path / "hp.json")
        entry = report["entries"][0]
        assert entry["fallback_scans"] == 0
        assert entry["kernel_events"] > 0
        assert entry["kernel_events_per_cluster"] < 2.0
        # the churn gates: pass at the recorded values, fail when a
        # regression pushes either counter over its cap
        assert check_report(report, min_throughput=1.0, min_speedup=0.0,
                            max_kernel_events_per_cluster=2.0,
                            max_fallback_scans=0) == []
        failures = check_report(report, min_throughput=1.0,
                                min_speedup=0.0,
                                max_kernel_events_per_cluster=1e-9,
                                max_fallback_scans=-1)
        assert any("kernel events per cluster" in f for f in failures)
        assert any("fallback scans" in f for f in failures)


def _observable_state(graph, n):
    """Everything a scheduler can see, deep-copied for comparison."""
    state = {
        "blocked_by": [set(graph.blocked_by[a]) for a in range(n)],
        "waiters": [set(graph.waiters[a]) for a in range(n)],
        "step": [graph.step[a] for a in range(n)],
        "pos": [graph.pos[a] for a in range(n)],
        "running": [graph.running[a] for a in range(n)],
        "min_step": graph.min_step,
        "max_step": graph.max_step,
        "components": [graph.component_for(a, set())
                       for a in range(n) if not graph.running[a]],
    }
    if graph._bucket_fast:
        state["slots"] = graph._slot_snapshot()
    return state


class TestAbortRunning:
    """Crash-consistent rollback: abort is the exact inverse of
    mark_running (PR 8 fault-tolerance contract)."""

    def _graph(self):
        rules = DependencyRules(DependencyConfig())
        positions = {0: (0, 0), 1: (2, 0), 2: (50, 0), 3: (52, 0),
                     4: (200, 0)}
        return rules, SpatioTemporalGraph(rules, positions)

    def test_abort_restores_observable_state(self):
        _, graph = self._graph()
        before = _observable_state(graph, 5)
        graph.mark_running([0, 1])
        graph.abort_running([0, 1])
        assert _observable_state(graph, 5) == before

    def test_aborted_cluster_is_redispatchable(self):
        rules, graph = self._graph()
        graph.mark_running([2, 3])
        graph.abort_running([2, 3])
        # The rolled-back members are immediately eligible again and the
        # redispatched component is identical to the aborted one.
        assert not graph.running[2] and not graph.running[3]
        assert graph.component_for(2, set()) == [2, 3]
        graph.mark_running([2, 3])
        graph.commit([2, 3], {2: (50, 0), 3: (52, 0)})
        assert graph.step[2] == 1 and graph.step[3] == 1

    def test_abort_of_non_running_agent_raises(self):
        _, graph = self._graph()
        with pytest.raises(SchedulingError, match="not running"):
            graph.abort_running([0])
        graph.mark_running([0, 1])
        with pytest.raises(SchedulingError, match="not running"):
            graph.abort_running([0, 4])

    @pytest.mark.parametrize("band_size", [None, 1])
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10**9), n=st.integers(2, 12))
    def test_abort_then_redispatch_fuzz(self, band_size, seed, n):
        """Random interleavings of dispatch/abort/commit must keep the
        array-backed graph bit-equal to the dict reference: blocked
        edges, waiters, slot tables, component memos, and the §3.2
        validity condition all hold through rollbacks."""
        rng = FastRng(seed)
        rules = DependencyRules(DependencyConfig())
        positions = grid_positions(rng, n)
        graph = SpatioTemporalGraph(rules, positions,
                                    band_size=band_size)
        ref = DictReferenceGraph(rules, positions)

        for _ in range(40):
            members = _random_cluster(graph, rules, rng, n)
            assert members is not None, "graph deadlocked"
            graph.mark_running(members)
            for m in members:
                ref.running[m] = True
            if rng.random() < 0.45:  # fault: roll the dispatch back
                graph.abort_running(members)
                for m in members:
                    ref.running[m] = False
            else:  # success: the (possibly re-)dispatch commits
                new_pos = {}
                for m in members:
                    cands = grid_moves(graph.pos[m])
                    new_pos[m] = cands[rng.integers(0, len(cands))]
                result = graph.commit(members, new_pos)
                ref_unblocked, ref_neighbors, _ = ref.commit(members,
                                                             new_pos)
                assert result.unblocked == ref_unblocked
                assert result.neighbors == ref_neighbors
            _assert_graph_matches_reference(graph, ref, n)
            _assert_fastpath_invariants(graph, ref, rules, n)
            for aid in range(n):
                if not graph.running[aid]:
                    assert graph.component_for(aid, set()) == \
                        _ref_component(ref, rules, aid)
            graph.validate()  # rollbacks never break §3.2 validity


class TestCausalityViolation:
    """The runtime validity check fails loudly with a typed error."""

    def test_violating_snapshot_raises_with_details(self):
        rules = DependencyRules(DependencyConfig())
        states = [(0, 5, (0.0, 0.0)), (1, 0, (1.0, 0.0))]
        with pytest.raises(CausalityViolation) as err:
            rules.validate_state(states)
        exc = err.value
        assert {exc.agent_a, exc.agent_b} == {0, 1}
        assert {exc.step_a, exc.step_b} == {5, 0}
        assert exc.distance == pytest.approx(1.0)
        assert exc.distance <= exc.threshold
        assert isinstance(exc, SchedulingError)  # callers can catch broad

    def test_same_step_agents_always_valid(self):
        rules = DependencyRules(DependencyConfig())
        rules.validate_state([(0, 3, (0.0, 0.0)), (1, 3, (0.1, 0.0))])

    def test_far_apart_step_spread_is_valid(self):
        rules = DependencyRules(DependencyConfig())
        rules.validate_state([(0, 5, (0.0, 0.0)), (1, 0, (1000.0, 0.0))])

    def test_graph_validate_delegates(self):
        rules = DependencyRules(DependencyConfig())
        graph = SpatioTemporalGraph(rules, {0: (0, 0), 1: (5, 0)})
        graph.validate()  # fresh graph: all agents at step 0, valid
