"""Tests for the simulated serving engine: profiles, perf model, memory,
replicas (both fidelities), router and metrics."""

import pytest

from repro.config import ServingConfig
from repro.devent import Kernel
from repro.errors import CapacityError, ConfigError
from repro.serving import (GPUS, MODELS, LLMRequest, PerfModel,
                           ServingEngine, get_gpu, get_model)
from repro.serving.memory import KVCacheManager


class TestProfiles:
    def test_registry_contents(self):
        assert {"l4", "a100"} <= set(GPUS)
        assert {"llama3-8b", "llama3-70b", "mixtral-8x7b"} <= set(MODELS)

    def test_unknown_names(self):
        with pytest.raises(ConfigError):
            get_gpu("h100")
        with pytest.raises(ConfigError):
            get_model("gpt-5")

    def test_weight_bytes_fp16(self):
        model = get_model("llama3-8b")
        assert model.weight_bytes == pytest.approx(2 * 8.03e9)

    def test_kv_bytes_per_token(self):
        # 2 (K,V) * layers * kv_heads * head_dim * 2 bytes
        m8 = get_model("llama3-8b")
        assert m8.kv_bytes_per_token == 2 * 32 * 8 * 128 * 2
        m70 = get_model("llama3-70b")
        assert m70.kv_bytes_per_token == 2 * 80 * 8 * 128 * 2

    def test_moe_expert_utilization_monotone(self):
        mix = get_model("mixtral-8x7b")
        utils = [mix.expert_utilization(b) for b in (1, 4, 16, 64)]
        assert utils == sorted(utils)
        assert utils[0] == pytest.approx(0.25)  # top-2 of 8 at batch 1
        assert utils[-1] < 1.0
        assert mix.expert_utilization(1e9) == pytest.approx(1.0)

    def test_dense_effective_weights_constant(self):
        m = get_model("llama3-8b")
        assert m.effective_weight_bytes(1) == m.effective_weight_bytes(64)

    def test_moe_effective_weights_grow(self):
        mix = get_model("mixtral-8x7b")
        assert mix.effective_weight_bytes(1) < mix.effective_weight_bytes(32)
        assert mix.effective_weight_bytes(1e9) == \
            pytest.approx(mix.weight_bytes)


class TestPerfModel:
    def setup_method(self):
        self.pm = PerfModel(get_model("llama3-8b"), get_gpu("l4"))

    def test_decode_memory_bound_at_small_batch(self):
        # Iteration latency should be nearly flat from bs=1 to bs=8.
        t1 = self.pm.decode_iteration_time(1, 0)
        t8 = self.pm.decode_iteration_time(8, 0)
        assert t8 < 1.05 * t1

    def test_decode_compute_bound_at_large_batch(self):
        sat = self.pm.saturation_batch_size()
        t = self.pm.decode_iteration_time(int(sat * 4), 0)
        assert t > 2 * self.pm.decode_iteration_time(1, 0)

    def test_kv_grows_iteration_time(self):
        assert self.pm.decode_iteration_time(4, 100_000) > \
            self.pm.decode_iteration_time(4, 0)

    def test_prefill_linear_in_tokens(self):
        base = self.pm.prefill_time(0)
        t1k = self.pm.prefill_time(1000)
        t2k = self.pm.prefill_time(2000)
        assert t2k - t1k == pytest.approx(t1k - base, rel=1e-9)

    def test_prefill_rejects_negative(self):
        with pytest.raises(ConfigError):
            self.pm.prefill_time(-1)

    def test_decode_rejects_empty_batch(self):
        with pytest.raises(ConfigError):
            self.pm.decode_iteration_time(0, 0)

    def test_tp_speeds_up_decode(self):
        pm70_tp4 = PerfModel(get_model("llama3-70b"), get_gpu("a100"), tp=4)
        pm70_tp8 = PerfModel(get_model("llama3-70b"), get_gpu("a100"), tp=8)
        assert pm70_tp8.decode_iteration_time(1, 0) < \
            pm70_tp4.decode_iteration_time(1, 0)

    def test_model_must_fit(self):
        with pytest.raises(ConfigError):
            PerfModel(get_model("llama3-70b"), get_gpu("l4"), tp=1)

    def test_kv_capacity_positive_and_scaled(self):
        cap1 = self.pm.kv_capacity_tokens
        assert cap1 > 10_000
        pm_less = PerfModel(get_model("llama3-8b"), get_gpu("l4"),
                            kv_memory_fraction=0.45)
        assert pm_less.kv_capacity_tokens < cap1

    def test_request_service_time_composition(self):
        t = self.pm.request_service_time(600, 20)
        assert t > self.pm.prefill_time(600)
        assert t > 20 * self.pm.decode_iteration_time(1, 0)


class TestKVCacheManager:
    def _req(self, rid, prompt=100, out=10):
        return LLMRequest(request_id=rid, prompt_tokens=prompt,
                          output_tokens=out)

    def test_reserve_release(self):
        mgr = KVCacheManager(1000)
        r = self._req(1, 600, 100)
        assert mgr.fits(r)
        mgr.reserve(r)
        assert mgr.reserved_tokens == 700
        mgr.release(r)
        assert mgr.reserved_tokens == 0

    def test_rejects_overflow(self):
        mgr = KVCacheManager(500)
        mgr.reserve(self._req(1, 300, 100))
        with pytest.raises(CapacityError):
            mgr.reserve(self._req(2, 200, 100))

    def test_rejects_double_reserve(self):
        mgr = KVCacheManager(1000)
        r = self._req(1)
        mgr.reserve(r)
        with pytest.raises(CapacityError):
            mgr.reserve(r)

    def test_release_unknown(self):
        with pytest.raises(CapacityError):
            KVCacheManager(100).release(self._req(1))

    def test_check_feasible(self):
        mgr = KVCacheManager(100)
        with pytest.raises(CapacityError):
            mgr.check_feasible(self._req(1, 200, 10))

    def test_zero_capacity_rejected(self):
        with pytest.raises(CapacityError):
            KVCacheManager(0)

    def test_utilization(self):
        mgr = KVCacheManager(1000)
        mgr.reserve(self._req(1, 400, 100))
        assert mgr.utilization == pytest.approx(0.5)


def _run_workload(fidelity, requests, dp=1, priority=True, max_running=256):
    """Submit (prompt, out, priority, at_time) tuples; return engine."""
    k = Kernel()
    engine = ServingEngine(k, ServingConfig(
        model="llama3-8b", gpu="l4", dp=dp, fidelity=fidelity,
        priority_scheduling=priority, max_running_requests=max_running))
    finished = []
    for prompt, out, prio, at in requests:
        def submit(p=prompt, o=out, pr=prio):
            engine.generate(p, o, priority=pr,
                            on_complete=lambda r: finished.append(r))
        k.call_at(at, submit)
    k.run()
    return engine, finished


class TestReplicas:
    WORKLOAD = [(640, 22, 0.0, 0.0), (300, 10, 0.0, 0.0),
                (900, 40, 1.0, 0.5), (100, 5, 1.0, 2.0),
                (640, 22, 2.0, 2.0), (500, 30, 2.0, 4.0)]

    def test_all_complete_both_fidelities(self):
        for fidelity in ("iteration", "fluid"):
            engine, finished = _run_workload(fidelity, self.WORKLOAD)
            assert len(finished) == len(self.WORKLOAD)
            assert engine.idle()

    def test_fluid_matches_iteration_closely(self):
        eng_it, _ = _run_workload("iteration", self.WORKLOAD)
        eng_fl, _ = _run_workload("fluid", self.WORKLOAD)
        t_it = eng_it.metrics.last_finish
        t_fl = eng_fl.metrics.last_finish
        assert t_fl == pytest.approx(t_it, rel=0.02)

    def test_request_lifecycle_timestamps(self):
        _, finished = _run_workload("fluid", [(640, 22, 0.0, 1.0)])
        r = finished[0]
        assert r.submit_time == pytest.approx(1.0)
        assert r.prefill_start >= r.submit_time
        assert r.decode_start > r.prefill_start
        assert r.finish_time > r.decode_start
        assert r.latency > 0

    def test_batching_beats_serial(self):
        # 8 identical requests at t=0 must finish far faster than 8x one
        # request (continuous batching on memory-bound decode).
        single, _ = _run_workload("fluid", [(640, 22, 0.0, 0.0)])
        t_single = single.metrics.last_finish
        batch, _ = _run_workload(
            "fluid", [(640, 22, 0.0, 0.0)] * 8)
        t_batch = batch.metrics.last_finish
        assert t_batch < 0.45 * (8 * t_single)

    def test_priority_order_served_first(self):
        # Serve one request at a time: a head start for the step-9 batch,
        # then a step-9 and a step-1 arrival — step 1 must be served next.
        requests = [(640, 50, 9.0, 0.0),
                    (640, 10, 5.0, 0.1), (640, 10, 1.0, 0.1)]
        _, finished = _run_workload("fluid", requests, max_running=1)
        by_priority = {r.priority: r.finish_time for r in finished}
        assert by_priority[1.0] < by_priority[5.0]

    def test_fcfs_when_priority_disabled(self):
        requests = [(640, 50, 9.0, 0.0),
                    (640, 10, 5.0, 0.1), (640, 10, 1.0, 0.12)]
        _, finished = _run_workload("fluid", requests, priority=False,
                                    max_running=1)
        by_priority = {r.priority: r.finish_time for r in finished}
        assert by_priority[5.0] < by_priority[1.0]  # arrival order wins

    def test_infeasible_request_raises(self):
        k = Kernel()
        engine = ServingEngine(k, ServingConfig(model="llama3-8b", gpu="l4"))
        too_big = engine.kv_capacity_tokens + 1
        with pytest.raises(CapacityError):
            engine.generate(too_big, 1)

    def test_memory_admission_queues(self):
        """Requests beyond KV capacity wait rather than failing."""
        k = Kernel()
        engine = ServingEngine(k, ServingConfig(
            model="llama3-8b", gpu="l4", fidelity="fluid"))
        cap = engine.kv_capacity_tokens
        big_prompt = int(cap * 0.6)
        done = []
        for i in range(3):  # 3 x 0.6 cap: only one fits at a time
            engine.generate(big_prompt, 8,
                            on_complete=lambda r: done.append(r))
        k.run()
        assert len(done) == 3
        # They must have been serialized: no overlap of decode intervals.
        intervals = sorted((r.decode_start, r.finish_time) for r in done)
        for (_, end_a), (start_b, _) in zip(intervals, intervals[1:]):
            assert start_b >= end_a - 1e-6


class TestEngineRouting:
    def test_dp_spreads_load(self):
        engine, finished = _run_workload(
            "fluid", [(640, 22, 0.0, 0.0)] * 8, dp=4)
        replicas_used = {r.replica_id for r in finished}
        assert len(replicas_used) == 4

    def test_dp_speeds_up_parallel_workload(self):
        one, _ = _run_workload("fluid", [(640, 22, 0.0, 0.0)] * 16, dp=1)
        four, _ = _run_workload("fluid", [(640, 22, 0.0, 0.0)] * 16, dp=4)
        assert four.metrics.last_finish < one.metrics.last_finish

    def test_metrics_accounting(self):
        engine, finished = _run_workload(
            "fluid", [(100, 10, 0.0, 0.0), (200, 20, 0.0, 0.0)])
        m = engine.metrics
        assert m.completed == 2
        assert m.total_prompt_tokens == 300
        assert m.total_output_tokens == 30
        assert m.mean_latency() > 0
        assert m.throughput_tokens_per_s() > 0

    def test_achieved_parallelism_bounds(self):
        engine, _ = _run_workload("fluid", [(640, 22, 0.0, 0.0)] * 4)
        par = engine.metrics.achieved_parallelism()
        assert 1.0 <= par <= 4.0

    def test_busy_fraction(self):
        engine, _ = _run_workload("fluid", [(640, 22, 0.0, 0.0)])
        makespan = engine.metrics.last_finish
        assert 0.5 < engine.busy_fraction(makespan) <= 1.0


class TestBatchSubmission:
    def test_generate_batch_matches_sequential_generates(self):
        """One whole-cluster handoff = the same calls one at a time."""
        specs = [(aid, 640, 22, float(aid), None, None)
                 for aid in range(5)]

        def run(batched):
            k = Kernel()
            engine = ServingEngine(k, ServingConfig(fidelity="fluid"))
            if batched:
                engine.generate_batch(specs)
            else:
                for aid, p, o, prio, cb, ctx in specs:
                    engine.generate(p, o, priority=prio, on_complete=cb,
                                    context=ctx, agent_id=aid)
            k.run()
            return k.now, engine.metrics.completed

        assert run(batched=True) == run(batched=False)

    def test_batch_requests_carry_agent_ids(self):
        k = Kernel()
        engine = ServingEngine(k, ServingConfig(fidelity="fluid"))
        reqs = engine.generate_batch(
            [(7, 100, 5, 0.0, None, None), (9, 100, 5, 0.0, None, None)])
        assert [r.agent_id for r in reqs] == [7, 9]
        k.run()


class TestRequestValidation:
    def test_rejects_bad_tokens(self):
        with pytest.raises(ConfigError):
            LLMRequest(request_id=1, prompt_tokens=-1, output_tokens=5)
        with pytest.raises(ConfigError):
            LLMRequest(request_id=1, prompt_tokens=10, output_tokens=0)

    def test_latency_requires_finish(self):
        r = LLMRequest(request_id=1, prompt_tokens=10, output_tokens=5)
        with pytest.raises(ConfigError):
            _ = r.latency
