"""Tests for the live (threaded) engine: workers, transactions, and the
OOO == lock-step equivalence under real concurrency."""

import threading
import time

import pytest

from repro.config import SchedulerConfig
from repro.errors import SchedulingError
from repro.live import (EchoLLMClient, Environment, LiveSimulation,
                        ThrottledLLMClient)
from repro.live.environment import BehaviorProgram
from repro.world import BehaviorModel, build_smallville, make_personas


def _program(n_agents=5, seed=4):
    world, homes = build_smallville()
    personas = make_personas(n_agents, seed=seed, homes=homes)
    return BehaviorProgram(BehaviorModel(world, personas, seed=seed))


class TestClients:
    def test_echo_counts(self):
        c = EchoLLMClient()
        c.complete("hi", 5)
        c.complete("hi", 5)
        assert c.completed_calls() == 2

    def test_throttled_latency_and_slots(self):
        c = ThrottledLLMClient(base_latency=0.001, per_token=0.0, slots=2)
        results = []

        def call():
            results.append(c.complete("p", 4))

        threads = [threading.Thread(target=call) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 4
        assert c.calls == 4


class TestLiveSimulation:
    def test_rejects_bad_target(self):
        sim = LiveSimulation(_program(), EchoLLMClient())
        with pytest.raises(SchedulingError):
            sim.run(0)

    def test_ooo_run_completes(self):
        client = EchoLLMClient()
        sim = LiveSimulation(_program(), client, num_workers=3)
        result = sim.run(target_step=40)
        assert result.clusters_executed >= 40  # at least one per agent-step
        assert result.max_step_spread >= 0
        assert len(result.final_positions) == 5

    def test_store_reflects_final_steps(self):
        sim = LiveSimulation(_program(), EchoLLMClient(), num_workers=2)
        sim.run(target_step=25)
        for aid in range(5):
            assert sim.store.hget(f"agent:{aid}", "step") == 25
        assert sim.store.get("commits") == sim._stats.clusters_executed

    def test_lockstep_mode(self):
        sim = LiveSimulation(
            _program(), EchoLLMClient(),
            scheduler=SchedulerConfig(policy="parallel-sync"),
            num_workers=2)
        result = sim.run(target_step=15)
        assert result.clusters_executed == 15  # one global cluster per step

    def test_worker_exception_surfaces(self):
        class Exploding:
            n_agents = 2

            def position(self, aid):
                return (aid * 50, 0)

            def execute(self, step, ids, client):
                raise RuntimeError("boom")

        sim = LiveSimulation(Exploding(), EchoLLMClient(), num_workers=1)
        with pytest.raises(SchedulingError, match="boom"):
            sim.run(target_step=3)

    def test_positions_read_in_bulk_not_per_commit(self):
        """Position reads are batched: one ``positions()`` bulk call at
        startup plus one per cluster commit (worker-side), and the
        engine never falls back to per-agent ``position()`` reads."""

        class CountingProgram(BehaviorProgram):
            def __init__(self, model):
                super().__init__(model)
                self.position_calls = 0
                self.positions_calls = 0
                self.positions_aids = 0

            def position(self, aid):
                self.position_calls += 1
                return super().position(aid)

            def positions(self, aids):
                aids = list(aids)
                self.positions_calls += 1
                self.positions_aids += len(aids)
                return super().positions(aids)

        world, homes = build_smallville()
        personas = make_personas(5, seed=4, homes=homes)
        program = CountingProgram(BehaviorModel(world, personas, seed=4))
        sim = LiveSimulation(program, EchoLLMClient(), num_workers=2)
        result = sim.run(target_step=25)
        # One startup bulk read + one bulk read per worker commit.
        assert program.positions_calls == 1 + result.clusters_executed
        assert program.positions_aids == \
            program.n_agents + result.cluster_size_sum
        # The engine itself derives no per-agent reads (the bulk hook
        # covers them); any regression to per-commit position() calls
        # fails here.
        assert program.position_calls == 0

    def test_program_without_bulk_hook_still_runs(self):
        """The ``positions`` hook is optional: per-agent fallback."""

        class MinimalProgram:
            def __init__(self, inner):
                self._inner = inner

            @property
            def n_agents(self):
                return self._inner.n_agents

            def position(self, aid):
                return self._inner.position(aid)

            def execute(self, step, agent_ids, client):
                self._inner.execute(step, agent_ids, client)

        sim = LiveSimulation(MinimalProgram(_program()), EchoLLMClient(),
                             num_workers=2)
        result = sim.run(target_step=10)
        assert len(result.final_positions) == 5

    def test_second_run_resets_state(self):
        """A reused LiveSimulation must not leak stats, sequence numbers
        or KV keys from the previous run (regression: counters and the
        ``commits`` key used to accumulate across runs)."""
        target1, target2 = 10, 20
        ooo = _program(n_agents=5, seed=7)
        sim = LiveSimulation(ooo, EchoLLMClient(), num_workers=2)
        r1 = sim.run(target_step=target1)
        assert sim.store.get("commits") == r1.clusters_executed
        # stale *simulation* keys are cleaned; foreign keys survive
        sim.store.hset("agent:99", "step", 123)
        sim.store.set("app-key", "not-ours")
        r2 = sim.run(target_step=target2, start_step=target1)
        # stats and the store are per-run, not accumulated
        assert r2 is not r1
        assert r2.target_step == target2
        assert sim.store.get("commits") == r2.clusters_executed
        assert not sim.store.exists("agent:99")
        assert sim.store.get("app-key") == "not-ours"
        for aid in range(5):
            assert sim.store.hget(f"agent:{aid}", "step") == target2
        # and the world state still matches lock-step execution
        ref = _program(n_agents=5, seed=7)
        for step in range(target2):
            ref.model.step_all(step)
        assert [a.pos for a in ooo.model.agents] == \
            [a.pos for a in ref.model.agents]

    @pytest.mark.parametrize("workers", [1, 4])
    def test_ooo_equals_lockstep_world_state(self, workers):
        """The paper's correctness claim under real threads."""
        target = 60
        # Lock-step reference on a fresh, identically-seeded world.
        ref = _program(n_agents=6, seed=9)
        for step in range(target):
            ref.model.step_all(step)
        ref_state = [(a.pos, a.awake, a.activity, len(a.memory))
                     for a in ref.model.agents]

        ooo = _program(n_agents=6, seed=9)
        sim = LiveSimulation(ooo, EchoLLMClient(), num_workers=workers)
        sim.run(target_step=target)
        ooo_state = [(a.pos, a.awake, a.activity, len(a.memory))
                     for a in ooo.model.agents]
        assert ooo_state == ref_state

    def test_equivalence_with_wallclock_latency(self):
        """Racy timing (ThrottledLLMClient) must not change the outcome."""
        target = 30
        ref = _program(n_agents=4, seed=2)
        for step in range(target):
            ref.model.step_all(step)
        ref_positions = [a.pos for a in ref.model.agents]

        ooo = _program(n_agents=4, seed=2)
        client = ThrottledLLMClient(base_latency=0.0005, per_token=0.0)
        LiveSimulation(ooo, client, num_workers=4).run(target_step=target)
        assert [a.pos for a in ooo.model.agents] == ref_positions


class TestEnvironment:
    def test_gym_like_run(self):
        env = Environment(_program(), EchoLLMClient(), num_workers=2)
        result = env.run(target_step=20)
        assert result.target_step == 20
        assert result.wall_time >= 0.0

    def test_priority_off_still_correct(self):
        env = Environment(
            _program(n_agents=4, seed=6), EchoLLMClient(),
            scheduler=SchedulerConfig(priority=False), num_workers=2)
        result = env.run(target_step=20)
        assert result.clusters_executed > 0


class TestShutdownHygiene:
    """The exception path must tear workers down, not leak them."""

    def test_threads_reaped_after_worker_failure(self):
        class Exploding:
            n_agents = 2

            def position(self, aid):
                return (aid * 50, 0)

            def execute(self, step, ids, client):
                raise RuntimeError("boom")

        baseline = threading.active_count()
        sim = LiveSimulation(Exploding(), EchoLLMClient(), num_workers=4)
        for _ in range(3):  # repeated failed runs must not accumulate
            with pytest.raises(SchedulingError):
                sim.run(target_step=3)
        deadline = time.monotonic() + 5.0
        while (threading.active_count() > baseline
               and time.monotonic() < deadline):
            time.sleep(0.005)
        assert threading.active_count() == baseline

    def test_threads_reaped_after_clean_run(self):
        baseline = threading.active_count()
        sim = LiveSimulation(_program(), EchoLLMClient(), num_workers=4)
        sim.run(target_step=5)
        deadline = time.monotonic() + 5.0
        while (threading.active_count() > baseline
               and time.monotonic() < deadline):
            time.sleep(0.005)
        assert threading.active_count() == baseline
