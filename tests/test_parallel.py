"""Multiprocess controller (PR 10): equivalence fuzz against the
in-process sharded and single-graph paths, crashed-worker redispatch,
cross-mode counter-aggregation parity, shared-memory hygiene, and the
worker-assignment balancer."""

import sys
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import FaultPolicy, SchedulerConfig
from repro.core import run_replay
from repro.core.parallel import (ShardWorkerPool, merge_extra_counters,
                                 run_parallel_replay)
from repro.core.sharding import assign_shards
from repro.errors import SchedulingError
from repro.trace.generator import generate_scale_trace
from repro.trace.schema import SharedPositionStore, concat_traces

from helpers import random_trace

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux") and sys.platform != "darwin",
    reason="multiprocess mode needs POSIX shared memory")


@pytest.fixture(scope="module")
def pool():
    """One persistent two-worker pool shared across the fuzz worlds."""
    with ShardWorkerPool(2) as p:
        yield p


def _per_agent_sequences(timeline, n_agents):
    seqs = {aid: [] for aid in range(n_agents)}
    for e in sorted(timeline.events, key=lambda e: (e.submit_time,
                                                    e.agent, e.step)):
        seqs[e.agent].append((e.step, e.func_id))
    return seqs


def _calls_trace(seed, n_segments=3, n_agents=8, n_steps=12, width=20):
    """Multi-region coordinate world *with* LLM calls: independent
    random-walk segments strided past the worst-case blocking margin
    (radius_p + (n_steps + 1) * max_vel), like the scale generator."""
    segs = [random_trace(seed * 31 + k, n_agents=n_agents,
                         n_steps=n_steps, width=width, height=16)
            for k in range(n_segments)]
    margin = 4 + (n_steps + 1)
    return concat_traces(segs, x_stride=width + 1 + 2 * (margin + 1))


def _stray_segments():
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        return []
    return sorted(p.name for p in shm_dir.glob("repro-pos-*"))


def _assert_modes_match(trace, single, sharded, parallel):
    """Final state and per-agent call sequences — the order-independent
    facts — are identical across the three modes. Timing-entangled
    counters (kernel_events, mid-run scan totals) are *not* pinned on
    traces with calls: each worker owns a serving engine while the
    in-process modes share one, so intra-region commit interleavings
    legitimately differ (confluence covers state, not event counts)."""
    n, steps = trace.meta.n_agents, trace.meta.n_steps
    assert parallel.driver_stats.extra["parallel_workers"] >= 2
    for r in (single, sharded, parallel):
        assert r.n_tasks_completed == n * steps
        assert r.n_calls_completed == trace.n_calls
    ref = _per_agent_sequences(single.timeline, n)
    assert _per_agent_sequences(sharded.timeline, n) == ref
    assert _per_agent_sequences(parallel.timeline, n) == ref


class TestParallelEquivalenceFuzz:
    """Multiprocess == in-process-sharded == single-graph, across
    coordinate worlds with calls and coordinate/graph scale worlds
    (3 cells x 40 seeds = 120 worlds)."""

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_coordinate_worlds_with_calls(self, pool, seed):
        trace = _calls_trace(seed)
        base = SchedulerConfig(shards=4, validate_causality=True)
        single = run_replay(trace, replace(base, shards=0),
                            collect_timeline=True)
        sharded = run_replay(trace, base, collect_timeline=True)
        parallel = run_parallel_replay(
            trace, replace(base, parallel_workers=2),
            collect_timeline=True, pool=pool)
        assert parallel is not None
        _assert_modes_match(trace, single, sharded, parallel)

    @pytest.mark.parametrize("scenario", ["smallville", "social-graph"])
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_scale_worlds(self, pool, scenario, seed):
        trace = generate_scale_trace(total_agents=60, n_steps=10,
                                     scenario=scenario, base_seed=seed)
        base = SchedulerConfig(shards=4, validate_causality=True)
        single = run_replay(trace, replace(base, shards=0),
                            collect_timeline=True)
        sharded = run_replay(trace, base, collect_timeline=True)
        parallel = run_parallel_replay(
            trace, replace(base, parallel_workers=2),
            collect_timeline=True, pool=pool)
        assert parallel is not None
        _assert_modes_match(trace, single, sharded, parallel)
        # Scale windows are call-free, so every worker's virtual clock
        # runs the same overhead model the shared kernel would: the
        # merged completion (max over workers) is exact, and so are the
        # structural counters.
        assert parallel.completion_time == sharded.completion_time
        assert parallel.driver_stats.blocked_events == \
            sharded.driver_stats.blocked_events
        assert parallel.driver_stats.unblock_events == \
            sharded.driver_stats.unblock_events

    def test_speculative_policy_matches(self, pool):
        trace = generate_scale_trace(total_agents=60, n_steps=10,
                                     base_seed=5)
        base = SchedulerConfig(policy="metropolis-spec", shards=4,
                               validate_causality=True)
        sharded = run_replay(trace, base, collect_timeline=True)
        parallel = run_parallel_replay(
            trace, replace(base, parallel_workers=2),
            collect_timeline=True, pool=pool)
        assert parallel is not None
        n = trace.meta.n_agents
        assert parallel.n_tasks_completed == sharded.n_tasks_completed
        assert _per_agent_sequences(parallel.timeline, n) == \
            _per_agent_sequences(sharded.timeline, n)


class TestCrashRedispatch:
    def test_crashed_worker_is_redispatched(self):
        trace = _calls_trace(11)
        sched = SchedulerConfig(shards=4, parallel_workers=2)
        clean = run_parallel_replay(trace, sched, collect_timeline=True)
        crashed = run_parallel_replay(trace, sched, collect_timeline=True,
                                      _crash_plan={0: 1})
        assert clean is not None and crashed is not None
        assert clean.driver_stats.extra["worker_redispatches"] == 0
        assert crashed.driver_stats.extra["worker_redispatches"] == 1
        # Redispatch is idempotent (workers never write the shared
        # store): the recovered run is state-identical to the clean one.
        n = trace.meta.n_agents
        assert crashed.n_tasks_completed == clean.n_tasks_completed
        assert _per_agent_sequences(crashed.timeline, n) == \
            _per_agent_sequences(clean.timeline, n)

    def test_crash_budget_exhaustion_raises(self):
        trace = _calls_trace(12)
        sched = SchedulerConfig(
            shards=4, parallel_workers=2,
            faults=FaultPolicy(max_redispatches=1, worker_join_grace=1.0))
        with pytest.raises(SchedulingError, match="crash budget"):
            run_parallel_replay(trace, sched, _crash_plan={0: 5})
        assert _stray_segments() == []


class TestCounterAggregation:
    """Satellite: per-shard counters must aggregate identically in the
    in-process and multiprocess paths — plain sums, no double counting,
    no dropped shards."""

    def test_merged_extra_is_the_sum_of_worker_ledgers(self):
        """Run each worker's exact task in-process and check the
        multiprocess run's merged counters equal the plain sum of the
        ledgers — the same identity ``ShardedGraph`` satisfies across
        its in-process shards."""
        from repro.config import ServingConfig
        from repro.core import parallel as par
        from repro.core.rules import rules_for
        from repro.core.sharding import plan_regions

        trace = _calls_trace(9)
        sched = SchedulerConfig(shards=4, parallel_workers=2)
        plan = plan_regions(trace, rules_for(sched, trace.meta), 4)
        groups = assign_shards([len(m) for m in plan], 2)
        store = trace.share_positions()
        try:
            tasks = par._build_tasks(trace, sched, ServingConfig(), plan,
                                     groups, store, False, None)
            ledgers = [par._run_worker_task(tasks[wid])
                       for wid in sorted(tasks)]
        finally:
            store.unlink()
            store.close()
        result = run_parallel_replay(trace, sched)
        assert result is not None
        expected = merge_extra_counters([led["extra"] for led in ledgers])
        for key, value in expected.items():
            assert result.driver_stats.extra[key] == value, key
        for field in ("tasks_completed", "clusters_dispatched",
                      "cluster_size_sum", "blocked_events",
                      "unblock_events", "controller_rounds"):
            assert getattr(result.driver_stats, field) == \
                sum(led[field] for led in ledgers), field
        assert result.completion_time == \
            max(led["completion_time"] for led in ledgers)
        # Counters the in-process facade sums over shards must be
        # summed here too — present, numeric, and region-complete.
        assert result.driver_stats.extra["shards"] == len(plan)
        for key in ("graph_scanned_slots", "graph_fallback_scans",
                    "graph_scans", "kernel_events"):
            assert key in result.driver_stats.extra, key

    def test_merge_extra_counters(self):
        merged = merge_extra_counters([
            {"scanned_slots": 3, "kernel_events": 2, "spec_depth": 8,
             "flag": True, "latencies": [1, 2]},
            {"scanned_slots": 4, "kernel_events": 5, "spec_depth": 2,
             "fallback_scans": 1},
        ])
        assert merged == {"scanned_slots": 7, "kernel_events": 7,
                          "fallback_scans": 1, "spec_depth": 2}


class TestSharedMemoryHygiene:
    """Satellite: no stray segments after a drain or a worker crash."""

    def test_store_round_trip(self):
        arr = np.arange(2 * 3 * 2, dtype=np.int32).reshape(2, 3, 2)
        store = SharedPositionStore.create(arr)
        attached = SharedPositionStore.open(store.name, store.shape,
                                            store.dtype)
        np.testing.assert_array_equal(attached.array, arr)
        # Writes land in the same pages both sides mapped.
        store.array[0, 0, 0] = 99
        assert attached.array[0, 0, 0] == 99
        name = store.name
        attached.close()
        store.unlink()
        store.close()
        from multiprocessing import shared_memory
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_no_segments_leak_after_drain(self):
        before = _stray_segments()
        trace = generate_scale_trace(total_agents=60, n_steps=10,
                                     base_seed=13)
        result = run_parallel_replay(
            trace, SchedulerConfig(shards=4, parallel_workers=2))
        assert result is not None
        assert _stray_segments() == before

    def test_no_segments_leak_after_crash(self):
        before = _stray_segments()
        trace = generate_scale_trace(total_agents=60, n_steps=10,
                                     base_seed=14)
        result = run_parallel_replay(
            trace, SchedulerConfig(shards=4, parallel_workers=2),
            _crash_plan={1: 1})
        assert result is not None
        assert result.driver_stats.extra["worker_redispatches"] == 1
        assert _stray_segments() == before


class TestFallbacks:
    def test_single_region_returns_none(self):
        # 24 agents fit one scenario segment -> one region -> fall back.
        trace = generate_scale_trace(total_agents=24, n_steps=10,
                                     base_seed=2)
        assert run_parallel_replay(
            trace, SchedulerConfig(shards=4, parallel_workers=2)) is None
        # The run_replay route falls through to the in-process driver.
        result = run_replay(
            trace, SchedulerConfig(shards=4, parallel_workers=2))
        assert result.n_tasks_completed == 24 * 10
        assert "parallel_workers" not in result.driver_stats.extra

    def test_workers_below_two_returns_none(self):
        trace = _calls_trace(15)
        assert run_parallel_replay(
            trace, SchedulerConfig(shards=4, parallel_workers=1)) is None

    def test_non_metropolis_policy_returns_none(self):
        trace = _calls_trace(16)
        assert run_parallel_replay(
            trace, SchedulerConfig(policy="parallel-sync",
                                   parallel_workers=2)) is None

    def test_run_replay_route_engages_parallel(self):
        trace = _calls_trace(17)
        result = run_replay(
            trace, SchedulerConfig(shards=4, parallel_workers=2))
        assert result.driver_stats.extra["parallel_workers"] == 2


class TestAssignShards:
    def test_lpt_balances_and_covers(self):
        groups = assign_shards([10, 1, 7, 3, 5, 2], 3)
        assert sorted(i for g in groups for i in g) == [0, 1, 2, 3, 4, 5]
        loads = [sum([10, 1, 7, 3, 5, 2][i] for i in g) for g in groups]
        assert max(loads) <= 11  # LPT: 10|7+2|5+3+1 or better
        # Deterministic: same input, same grouping.
        assert groups == assign_shards([10, 1, 7, 3, 5, 2], 3)

    def test_more_workers_than_shards(self):
        groups = assign_shards([4, 4], 8)
        assert len(groups) == 2
        assert sorted(i for g in groups for i in g) == [0, 1]
