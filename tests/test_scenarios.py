"""Scenario subsystem tests: registry semantics, world invariants, and
the paper's core OOO-equivalence property over *every* registered world.

The equivalence test here is the per-scenario CI gate: the live engine
and the rule-driven adversarial executor must both evolve each world
bit-identically to lock-step execution, and metropolis must actually
beat parallel-sync on a trace of each world (otherwise the scenario adds
no OOO headroom and its benchmarks are vacuous).
"""

import numpy as np
import pytest

from repro._util import FastRng
from repro.bench.runner import serving_for
from repro.bench.smoke import scenario_window_trace
from repro.config import DependencyConfig, SchedulerConfig
from repro.core import DependencyRules, run_replay
from repro.core.dependency_graph import SpatioTemporalGraph
from repro.errors import ScenarioError
from repro.live import EchoLLMClient, LiveSimulation
from repro.live.environment import BehaviorProgram, program_for_scenario
from repro.scenarios import (REGISTRY, Scenario, ScenarioRegistry,
                             get_scenario, scenario_names)
from repro.trace import generate_trace

ALL_SCENARIOS = scenario_names()


class _Toy(Scenario):
    name = "toy"
    description = "registry-test scenario"

    def build_world(self):  # pragma: no cover - never constructed
        raise NotImplementedError

    def make_personas(self, n_agents, seed, homes):  # pragma: no cover
        raise NotImplementedError


class TestRegistry:
    def test_builtins_registered(self):
        assert {"smallville", "metro-grid", "market-town",
                "social-graph"} <= set(REGISTRY.names())

    def test_names_sorted(self):
        assert REGISTRY.names() == sorted(REGISTRY.names())

    def test_unknown_scenario(self):
        with pytest.raises(ScenarioError, match="unknown scenario"):
            get_scenario("atlantis")

    def test_duplicate_registration_rejected(self):
        registry = ScenarioRegistry()
        registry.register(_Toy)
        with pytest.raises(ScenarioError, match="already registered"):
            registry.register(_Toy)

    def test_empty_name_rejected(self):
        class Nameless(_Toy):
            name = ""

        with pytest.raises(ScenarioError, match="empty scenario name"):
            ScenarioRegistry().register(Nameless)

    def test_get_passes_instances_through(self):
        scn = get_scenario("smallville")
        assert get_scenario(scn) is scn

    def test_contains_and_unregister(self):
        registry = ScenarioRegistry()
        registry.register(_Toy)
        assert "toy" in registry
        registry.unregister("toy")
        assert "toy" not in registry

    def test_discover_is_safe_without_install(self):
        # The package is not pip-installed in CI's unit-test job; entry
        # point discovery must be a harmless no-op, not an error.
        registry = ScenarioRegistry()
        loaded = registry.discover()
        assert isinstance(loaded, list)


class TestWorldInvariants:
    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_validate(self, name):
        get_scenario(name).validate()

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_personas_deterministic_and_well_formed(self, name):
        scn = get_scenario(name)
        _, homes = scn.world()
        a = scn.make_personas(8, seed=3, homes=homes)
        b = scn.make_personas(8, seed=3, homes=homes)
        assert a == b
        for p in a:
            assert 0 < p.wake_step < p.sleep_step
            starts = [e.start_step for e in p.schedule]
            assert starts == sorted(starts)
            assert p.schedule[0].activity == "sleeping"

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_movement_speed_limit(self, name):
        """Traces from every world must satisfy the §3.2 max_vel bound,
        measured in the scenario's own metric (tiles or hops)."""
        scn = get_scenario(name)
        trace = generate_trace(6, 400, seed=1, scenario=name)
        if trace.meta.metric == "graph":
            space = scn.space()
            max_vel = trace.meta.max_vel
            for aid in range(trace.meta.n_agents):
                for step in range(trace.meta.n_steps):
                    d = space.dist(trace.pos(aid, step),
                                   trace.pos(aid, step + 1))
                    assert d <= max_vel
        else:
            deltas = np.abs(np.diff(trace.positions.astype(np.int32),
                                    axis=1)).sum(axis=2)
            assert deltas.max() <= 1


def _run_lockstep(model, start, steps):
    for step in range(start + steps):
        model.step_all(step)
    return [(a.pos, a.awake, a.activity, a.conversation, a.dwell_until,
             len(a.memory)) for a in model.agents]


def _run_adversarial_ooo(model, start, steps, order_seed, rules=None):
    """Execute with the §3.2 rules, choosing dispatch order adversarially
    (prefer agents *ahead* in time — the hardest order for the rules)."""
    n = len(model.agents)
    for step in range(start):
        model.step_all(step)
    if rules is None:
        rules = DependencyRules(DependencyConfig())
    graph = SpatioTemporalGraph(
        rules, {a.agent_id: a.pos for a in model.agents}, start_step=start)
    rng = FastRng(order_seed)
    target = start + steps
    done = set()
    while len(done) < n:
        candidates = [a for a in range(n)
                      if a not in done and not graph.running[a]
                      and not graph.is_blocked(a)]
        assert candidates, "OOO execution deadlocked"
        candidates.sort(key=lambda a: (-graph.step[a], rng.random()))
        members = None
        for seed_aid in candidates:
            step = graph.step[seed_aid]
            cluster = {seed_aid}
            frontier = [seed_aid]
            while frontier:
                x = frontier.pop()
                for other in range(n):
                    if (other not in cluster and other not in done
                            and not graph.running[other]
                            and graph.step[other] == step
                            and rules.coupled(graph.pos[x],
                                              graph.pos[other])):
                        cluster.add(other)
                        frontier.append(other)
            if not any(graph.is_blocked(m) for m in cluster):
                members = sorted(cluster)
                break
        assert members is not None
        graph.mark_running(members)
        model.step_agents(step, members)
        graph.commit(members,
                     {aid: model.agents[aid].pos for aid in members})
        graph.validate()
        for aid in members:
            if graph.step[aid] >= target:
                done.add(aid)
    return [(a.pos, a.awake, a.activity, a.conversation, a.dwell_until,
             len(a.memory)) for a in model.agents]


class TestOOOEquivalenceAllScenarios:
    """The per-scenario CI gate: OOO == lock-step on every world."""

    N_AGENTS = 6
    SEED = 12

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    @pytest.mark.parametrize("order_seed", [1, 5])
    def test_adversarial_order_state_identical(self, name, order_seed):
        scn = get_scenario(name)
        start, end = scn.active_window
        steps = min(end - start, 100)
        ref = _run_lockstep(scn.model(self.N_AGENTS, self.SEED),
                            start, steps)
        ooo = _run_adversarial_ooo(scn.model(self.N_AGENTS, self.SEED),
                                   start, steps, order_seed,
                                   rules=scn.rules())
        assert ooo == ref

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_live_engine_state_identical(self, name):
        """The threaded engine (real workers) vs parallel-sync."""
        scn = get_scenario(name)
        start, _ = scn.active_window
        target = start + 60
        ref_model = scn.model(self.N_AGENTS, self.SEED)
        for step in range(target):
            ref_model.step_all(step)
        ref = [(a.pos, a.awake, a.activity, len(a.memory))
               for a in ref_model.agents]

        program = program_for_scenario(name, self.N_AGENTS, self.SEED)
        for step in range(start):
            program.model.step_all(step)
        sim = LiveSimulation(program, EchoLLMClient(),
                             scheduler=SchedulerConfig(scenario=name),
                             num_workers=4)
        sim.run(target_step=target, start_step=start)
        ooo = [(a.pos, a.awake, a.activity, len(a.memory))
               for a in program.model.agents]
        assert ooo == ref

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_live_lockstep_policy_matches_too(self, name):
        """parallel-sync through the live engine is also the reference."""
        scn = get_scenario(name)
        start, _ = scn.active_window
        target = start + 40
        ref_model = scn.model(4, 2)
        for step in range(target):
            ref_model.step_all(step)

        program = BehaviorProgram(scn.model(4, 2))
        for step in range(start):
            program.model.step_all(step)
        sim = LiveSimulation(
            program, EchoLLMClient(),
            scheduler=SchedulerConfig(policy="parallel-sync",
                                      scenario=name),
            num_workers=2)
        sim.run(target_step=target, start_step=start)
        assert ([a.pos for a in program.model.agents]
                == [a.pos for a in ref_model.agents])


class TestMetropolisWins:
    """Each scenario must give the OOO scheduler real headroom."""

    @pytest.fixture(scope="class", params=ALL_SCENARIOS)
    def scenario_trace(self, request):
        scn = get_scenario(request.param)
        return scn, scenario_window_trace(scn)

    def test_metropolis_beats_parallel_sync(self, scenario_trace):
        scn, trace = scenario_trace
        serving = serving_for("l4-8b", 1)
        times = {}
        for policy in ("parallel-sync", "metropolis"):
            times[policy] = run_replay(
                trace, SchedulerConfig(policy=policy, scenario=scn.name),
                serving).completion_time
        assert times["metropolis"] < times["parallel-sync"], scn.name

    def test_trace_meta_records_scenario(self, scenario_trace):
        scn, trace = scenario_trace
        assert trace.meta.scenario == scn.name
